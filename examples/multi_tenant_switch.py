#!/usr/bin/env python3
"""Extensions tour: multi-tenant switches, wire compression, packet capture.

Three capabilities beyond the paper's evaluation, built on the same
substrate:

1. **Multi-job switches** — two training jobs share one iSwitch, each with
   its own aggregation engine, membership, and threshold H.
2. **Wire compression** — fp16/int8 codecs shrink the gradient's wire
   footprint; the accelerator still sums exactly, the workers just see the
   quantization loss they shipped.
3. **Packet capture** — a pcap-style tap shows the traffic mix on the
   switch while all of this happens.

Run:  python examples/multi_tenant_switch.py
"""

import numpy as np

from repro.core import (
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    AggregationClient,
    SegmentPlan,
    get_codec,
    iswitch_factory,
)
from repro.experiments.reporting import format_bytes, render_table
from repro.netsim import PacketCapture, Simulator, build_star


def main() -> None:
    sim = Simulator()
    net = build_star(sim, n_workers=4, switch_factory=iswitch_factory)
    switch = net.switches[0]
    capture = PacketCapture(switch)

    # --- Job 1: workers 0-1, raw fp32, 8000-float vectors ---------------
    fp32 = get_codec("fp32")
    plan1 = SegmentPlan(8000, bytes_per_element=fp32.bytes_per_element)
    for index in (0, 1):
        switch.add_member(net.workers[index].name, job=1)

    # --- Job 2: workers 2-3, int8-compressed, same vector length --------
    int8 = get_codec("int8")
    plan2 = SegmentPlan(8000, bytes_per_element=int8.bytes_per_element)
    for index in (2, 3):
        switch.add_member(net.workers[index].name, job=2)

    results = {}

    def make_client(index, job, plan, codec):
        worker = net.workers[index]
        return AggregationClient(
            worker,
            switch.name,
            plan,
            job=job,
            codec=codec,
            on_round_complete=lambda rnd, vec, n=worker.name: results.__setitem__(
                n, vec
            ),
        )

    clients = [
        make_client(0, 1, plan1, fp32),
        make_client(1, 1, plan1, fp32),
        make_client(2, 2, plan2, int8),
        make_client(3, 2, plan2, int8),
    ]

    rng = np.random.default_rng(0)
    vectors = [rng.standard_normal(8000).astype(np.float32) for _ in clients]
    finish = {}
    for client, vector in zip(clients, vectors):
        client.send_gradient(vector, round_index=0)
    sim.run()

    exact_job1 = vectors[0] + vectors[1]
    exact_job2 = vectors[2] + vectors[3]
    rows = [
        (
            "job 1 (fp32)",
            format_bytes(plan1.wire_bytes),
            f"{np.abs(results['worker0'] - exact_job1).max():.2e}",
        ),
        (
            "job 2 (int8)",
            format_bytes(plan2.wire_bytes),
            f"{np.abs(results['worker2'] - exact_job2).max():.2e}",
        ),
    ]
    print(
        render_table(
            ("tenant", "wire bytes/vector", "max aggregation error"),
            rows,
            title="Two jobs, one switch — independent engines, per-job codecs",
        )
    )
    # Cross-tenant isolation: job 1's workers never saw job 2's sums.
    assert np.allclose(results["worker0"], results["worker1"])
    assert not np.allclose(results["worker0"][:10], results["worker2"][:10])

    print()
    tos_names = {TOS_DATA_UP: "data up", TOS_DATA_DOWN: "data down", 0: "plain"}
    tos_names[TOS_CONTROL] = "control"
    print(
        render_table(
            ("traffic class", "wire bytes"),
            [
                (tos_names.get(tos, hex(tos)), format_bytes(nbytes))
                for tos, nbytes in sorted(capture.by_tos().items())
            ],
            title=f"Switch traffic mix ({len(capture)} packets captured)",
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Asynchronous training: staleness, update rate, and convergence.

Reproduces the Figure 14 / Table 5 story in miniature on real DQN
training: Async PS gradients go stale waiting in the server's queue, while
Async iSwitch's two-hop aggregation keeps them fresh — so iSwitch both
updates faster and learns more per update.

Also demonstrates Algorithm 1's staleness bound S: with S=0 workers
discard every gradient that overlaps a weight update; with a generous S
they commit everything.

Run:  python examples/async_staleness_study.py
"""

from repro.distributed import run_async
from repro.experiments.reporting import render_series, render_table


def compare_strategies() -> None:
    print("=== Async PS vs Async iSwitch (DQN, 4 workers, S = 3) ===\n")
    rows = []
    curves = {}
    for strategy in ("ps", "isw"):
        result = run_async("ps" if strategy == "ps" else "isw", "dqn",
                           n_workers=4, n_updates=800, seed=1)
        curves[strategy] = result.workers[0].reward_curve
        rows.append(
            (
                "Async " + strategy.upper(),
                f"{result.per_iteration_time * 1e3:.2f}",
                f"{result.extras['mean_staleness']:.2f}",
                f"{result.extras['max_staleness']:.0f}",
                f"{result.elapsed:.2f}",
                f"{result.final_average_reward:.2f}",
            )
        )
    print(
        render_table(
            (
                "approach",
                "update interval ms",
                "mean staleness",
                "max staleness",
                "elapsed s (sim)",
                "final reward",
            ),
            rows,
        )
    )
    print()
    for strategy, curve in curves.items():
        print(
            render_series(
                f"reward vs simulated time — Async {strategy.upper()}",
                curve.times,
                curve.values,
                max_points=10,
                time_unit="s",
            )
        )
        print()


def staleness_bound_sweep() -> None:
    print("=== The staleness bound S (Algorithm 1) ===\n")
    rows = []
    for bound in (0, 1, 3):
        result = run_async(
            "isw", "dqn", n_workers=4, n_updates=200, seed=1, staleness_bound=bound
        )
        rows.append(
            (
                bound,
                f"{result.extras['mean_staleness']:.2f}",
                result.extras["commits"],
                result.extras["skipped_commits"],
            )
        )
    print(
        render_table(
            ("S", "mean staleness", "committed", "discarded"),
            rows,
        )
    )


if __name__ == "__main__":
    compare_strategies()
    staleness_bound_sweep()

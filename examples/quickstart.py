#!/usr/bin/env python3
"""Quickstart: aggregate gradients in the switch, then train through it.

This walks the two layers of the library:

1. the *protocol layer* — build a simulated rack, attach
   :class:`AggregationClient` endpoints, and push raw gradient vectors
   through the in-switch accelerator;
2. the *training layer* — run a few iterations of real distributed RL
   training (PPO on the Hopper1D stand-in) where every gradient crosses
   the same simulated data plane.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import AggregationClient, SegmentPlan, configure_aggregation, iswitch_factory
from repro.distributed import run_sync
from repro.netsim import Simulator, build_star


def aggregate_one_round():
    print("=== 1. Raw in-switch aggregation ===")
    sim = Simulator()
    net = build_star(sim, n_workers=4, switch_factory=iswitch_factory)
    configure_aggregation(net)  # workers join, H = 4

    plan = SegmentPlan(n_elements=10_000)  # a 40 KB gradient vector
    print(
        f"gradient vector: {plan.n_elements} floats, "
        f"{plan.n_frames} Ethernet frames, H = {net.switches[0].engine.threshold}"
    )

    results = {}
    clients = [
        AggregationClient(
            worker,
            "tor0",
            plan,
            on_round_complete=lambda rnd, vec, name=worker.name: results.__setitem__(
                name, vec
            ),
        )
        for worker in net.workers
    ]

    rng = np.random.default_rng(0)
    vectors = [rng.standard_normal(plan.n_elements).astype(np.float32) for _ in clients]
    for client, vector in zip(clients, vectors):
        client.send_gradient(vector, round_index=0)

    sim.run()
    expected = np.sum(vectors, axis=0)
    for name, got in sorted(results.items()):
        error = np.abs(got - expected).max()
        print(f"  {name}: received summed vector, max |error| = {error:.2e}")
    print(f"  aggregation completed at t = {sim.now * 1e6:.1f} us simulated\n")


def train_through_the_switch():
    print("=== 2. Distributed RL training through the switch ===")
    result = run_sync("isw", "ppo", n_workers=4, n_iterations=40, seed=0)
    print(f"  strategy:            {result.strategy}")
    print(f"  iterations:          {result.iterations}")
    print(f"  per-iteration time:  {result.per_iteration_time * 1e3:.2f} ms (simulated)")
    print(
        f"  aggregation share:   {result.breakdown.aggregation_share * 100:.1f}% "
        "of each iteration"
    )
    print(f"  episodes completed:  {len(result.workers[0].algorithm.episode_rewards)}")
    print(f"  avg episode reward:  {result.final_average_reward:.2f}")


if __name__ == "__main__":
    aggregate_one_round()
    train_through_the_switch()

#!/usr/bin/env python3
"""Compare the three synchronous strategies on one workload.

Reproduces the Table 4 / Figure 12 methodology on a workload of your
choice: measures simulated per-iteration time under PS, Ring-AllReduce and
iSwitch, verifies the weight trajectories are numerically identical, and
projects end-to-end training time at the paper's convergence iteration
counts.

Run:  python examples/sync_training_comparison.py [dqn|a2c|ppo|ddpg]
"""

import sys

import numpy as np

from repro.distributed import run_sync
from repro.experiments.reporting import render_table
from repro.workloads import get_profile


def main(workload: str = "dqn") -> None:
    profile = get_profile(workload)
    print(
        f"workload: {workload.upper()} ({profile.environment}), "
        f"wire vector {profile.model_bytes / 1024:.1f} KB, "
        f"{profile.paper_iterations:,} iterations to convergence\n"
    )

    results = {}
    for strategy in ("ps", "ar", "isw"):
        results[strategy] = run_sync(
            strategy, workload, n_workers=4, n_iterations=12, seed=1
        )

    # The three strategies apply identical updates: verify it.
    reference = results["ps"].workers[0].algorithm.get_weights()
    for strategy in ("ar", "isw"):
        weights = results[strategy].workers[0].algorithm.get_weights()
        assert np.allclose(reference, weights, atol=1e-4), strategy
    print("weight trajectories: identical across PS / AR / iSW (verified)\n")

    rows = []
    baseline = results["ps"].per_iteration_time
    for strategy, result in results.items():
        hours = result.projected_hours(profile.paper_iterations)
        rows.append(
            (
                strategy.upper(),
                f"{result.per_iteration_time * 1e3:.2f}",
                f"{profile.paper_sync_iter_ms[strategy]:.2f}",
                f"{result.breakdown.aggregation_share * 100:.1f}%",
                f"{hours:.2f}",
                f"{baseline / result.per_iteration_time:.2f}x",
            )
        )
    print(
        render_table(
            (
                "approach",
                "iter ms (sim)",
                "iter ms (paper)",
                "agg share",
                "end-to-end h",
                "speedup",
            ),
            rows,
            title=f"Synchronous training comparison — {workload.upper()}, 4 workers",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dqn")

#!/usr/bin/env python3
"""Rack-scale scaling with hierarchical in-switch aggregation.

Builds the Figure 10 topology (three workers per ToR under a root switch)
at growing cluster sizes and compares how each strategy's per-iteration
time and end-to-end speedup scale — the Figure 15 experiment.

Run:  python examples/rack_scale_scaling.py
"""

from repro.distributed import run_async, run_sync
from repro.experiments.reporting import render_table


def main() -> None:
    workload = "ppo"
    sizes = (4, 6, 9, 12)

    print(f"=== Synchronous scaling ({workload.upper()}) ===\n")
    rows = []
    base_cost = {}
    for strategy in ("ps", "ar", "isw"):
        cells = [strategy.upper()]
        for size in sizes:
            result = run_sync(
                strategy, workload, n_workers=size, n_iterations=8, seed=1
            )
            # End-to-end cost scales as per-iteration time x iterations,
            # with convergence iterations ~ 1/N (perfect data parallelism).
            cost = result.per_iteration_time / size
            base_cost.setdefault(strategy, cost)
            speedup = base_cost[strategy] / cost
            cells.append(
                f"{result.per_iteration_time * 1e3:.1f}ms ({speedup:.2f}x)"
            )
        rows.append(cells)
    rows.append(
        ["Ideal"] + [f"        ({size / sizes[0]:.2f}x)" for size in sizes]
    )
    print(
        render_table(
            ["approach"] + [f"{n} workers" for n in sizes],
            rows,
            title="per-iteration time (end-to-end speedup vs 4 workers)",
        )
    )

    print(f"\n=== Asynchronous scaling ({workload.upper()}) ===\n")
    rows = []
    for strategy in ("ps", "isw"):
        cells = ["Async " + strategy.upper()]
        for size in sizes:
            result = run_async(
                strategy, workload, n_workers=size, n_updates=40, seed=1
            )
            cells.append(
                f"{result.per_iteration_time * 1e3:.2f}ms "
                f"(s={result.extras['mean_staleness']:.1f})"
            )
        rows.append(cells)
    print(
        render_table(
            ["approach"] + [f"{n} workers" for n in sizes],
            rows,
            title="update interval (mean gradient staleness)",
        )
    )
    print(
        "\nAsync PS staleness grows with the cluster; async iSwitch stays "
        "fresh at every size — the Figure 15b/15d effect."
    )


if __name__ == "__main__":
    main()

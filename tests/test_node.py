"""Unit tests for hosts and protocol dispatch."""

import pytest

from repro.netsim.events import Simulator
from repro.netsim.link import Link
from repro.netsim.node import Host
from repro.netsim.packets import Packet


def linked_hosts():
    sim = Simulator()
    a = Host(sim, "a")
    b = Host(sim, "b")
    Link(sim).attach(a, b)
    return sim, a, b


class TestDispatch:
    def test_bound_port_receives(self):
        sim, a, b = linked_hosts()
        got = []
        b.bind(42, got.append)
        a.send(Packet(src="a", dst="b", payload_size=10, dst_port=42))
        sim.run()
        assert len(got) == 1

    def test_unbound_port_drops_silently(self):
        sim, a, b = linked_hosts()
        a.send(Packet(src="a", dst="b", payload_size=10, dst_port=99))
        sim.run()
        assert b.rx_packets == 1  # received, counted, no handler

    def test_default_handler_catches_unbound(self):
        sim, a, b = linked_hosts()
        got = []
        b.bind(42, lambda p: got.append(("bound", p.dst_port)))
        b.bind_default(lambda p: got.append(("default", p.dst_port)))
        a.send(Packet(src="a", dst="b", payload_size=10, dst_port=7))
        a.send(Packet(src="a", dst="b", payload_size=10, dst_port=42))
        sim.run()
        assert ("default", 7) in got
        assert ("bound", 42) in got

    def test_double_bind_rejected(self):
        _, _, b = linked_hosts()
        b.bind(1, lambda p: None)
        with pytest.raises(ValueError, match="already bound"):
            b.bind(1, lambda p: None)

    def test_unbind_then_rebind(self):
        _, _, b = linked_hosts()
        b.bind(1, lambda p: None)
        b.unbind(1)
        b.bind(1, lambda p: None)  # no error


class TestWiring:
    def test_host_is_single_homed(self):
        sim = Simulator()
        a = Host(sim, "a")
        b = Host(sim, "b")
        c = Host(sim, "c")
        Link(sim).attach(a, b)
        with pytest.raises(RuntimeError, match="single-homed"):
            Link(sim).attach(a, c)

    def test_send_without_link_fails(self):
        host = Host(Simulator(), "lonely")
        with pytest.raises(RuntimeError, match="no link"):
            host.send(Packet(src="lonely", dst="x", payload_size=1))

    def test_uplink_is_first_port(self):
        sim, a, _ = linked_hosts()
        assert a.uplink is a.ports[0]

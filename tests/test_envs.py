"""Unit tests for the simulated RL environments."""

import numpy as np
import pytest

from repro.rl.envs import Cheetah1D, GridPong, GridQbert, Hopper1D
from repro.rl.spaces import Box, Discrete

ALL_ENVS = [GridPong, GridQbert, Hopper1D, Cheetah1D]


@pytest.mark.parametrize("env_cls", ALL_ENVS)
class TestEnvironmentContract:
    def test_reset_returns_observation_of_declared_size(self, env_cls):
        env = env_cls(seed=0)
        obs = env.reset()
        assert obs.shape == (env.observation_size,)

    def test_step_returns_quadruple(self, env_cls):
        env = env_cls(seed=0)
        env.reset()
        action = env.action_space.sample(np.random.default_rng(0))
        obs, reward, done, info = env.step(action)
        assert obs.shape == (env.observation_size,)
        assert isinstance(reward, float)
        assert isinstance(done, bool)
        assert isinstance(info, dict)

    def test_step_before_reset_raises(self, env_cls):
        env = env_cls(seed=0)
        action = env.action_space.sample(np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="reset"):
            env.step(action)

    def test_step_after_done_raises(self, env_cls):
        env = env_cls(seed=0, max_steps=3)
        env.reset()
        rng = np.random.default_rng(0)
        done = False
        while not done:
            _, _, done, _ = env.step(env.action_space.sample(rng))
        with pytest.raises(RuntimeError):
            env.step(env.action_space.sample(rng))

    def test_deterministic_given_seed(self, env_cls):
        def rollout():
            env = env_cls(seed=42)
            rng = np.random.default_rng(7)
            obs = [env.reset()]
            rewards = []
            for _ in range(30):
                o, r, done, _ = env.step(env.action_space.sample(rng))
                obs.append(o)
                rewards.append(r)
                if done:
                    env.reset()
            return np.concatenate(obs), np.array(rewards)

        obs_a, rew_a = rollout()
        obs_b, rew_b = rollout()
        np.testing.assert_array_equal(obs_a, obs_b)
        np.testing.assert_array_equal(rew_a, rew_b)

    def test_max_steps_terminates(self, env_cls):
        env = env_cls(seed=0, max_steps=5)
        env.reset()
        rng = np.random.default_rng(0)
        # Pick the most conservative action to avoid early termination.
        for step in range(5):
            _, _, done, _ = env.step(self._safe_action(env_cls))
            if done:
                break
        assert done

    @staticmethod
    def _safe_action(env_cls):
        if env_cls is GridPong:
            return 1  # stay
        if env_cls is GridQbert:
            return 2  # down-left stays on pyramid from most positions
        if env_cls is Hopper1D:
            return np.array([0.5])
        return np.array([0.1, -0.1])

    def test_invalid_max_steps(self, env_cls):
        with pytest.raises(ValueError):
            env_cls(max_steps=0)


class TestGridPong:
    def test_action_space(self):
        assert GridPong.action_space == Discrete(3)

    def test_invalid_action_rejected(self):
        env = GridPong(seed=0)
        env.reset()
        with pytest.raises(ValueError):
            env.step(5)

    def test_miss_ends_episode_with_penalty(self):
        env = GridPong(seed=0)
        env.reset()
        # Pin the paddle far left while the ball starts near the middle.
        reward, done = 0.0, False
        for _ in range(200):
            _, reward, done, info = env.step(0)
            if done:
                break
        assert done
        assert reward == -1.0 or env._steps >= env.max_steps

    def test_good_tracking_earns_hits(self):
        env = GridPong(seed=3)
        obs = env.reset()
        hits = 0
        done = False
        while not done:
            ball_x, paddle_x = obs[0], obs[4]
            action = 0 if paddle_x > ball_x else 2
            obs, reward, done, info = env.step(action)
            if info.get("hit"):
                hits += 1
        assert hits >= 1

    def test_observation_bounds(self):
        env = GridPong(seed=1)
        obs = env.reset()
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert np.all(np.abs(obs) <= 1.5)
            obs, _, done, _ = env.step(env.action_space.sample(rng))
            if done:
                obs = env.reset()


class TestGridQbert:
    def test_observation_size_scales_with_rows(self):
        assert GridQbert(rows=5).observation_size == 2 + 15
        assert GridQbert(rows=3).observation_size == 2 + 6

    def test_start_cube_painted(self):
        env = GridQbert(seed=0)
        obs = env.reset()
        assert obs[2] == 1.0  # cube (0,0)

    def test_painting_rewards_once(self):
        env = GridQbert(seed=0)
        env.reset()
        _, first, _, info = env.step(2)  # hop down-left to (1,0)
        assert first == 1.0 and info.get("painted")
        env.step(1)  # back up to (0,0) — already painted
        _, second, _, info = env.step(2)  # revisit (1,0)
        assert second == 0.0

    def test_falling_off_ends_episode(self):
        env = GridQbert(seed=0)
        env.reset()
        _, reward, done, info = env.step(0)  # up-left from the apex
        assert done and reward == -1.0 and info["fell"]

    def test_clearing_pyramid_bonus(self):
        env = GridQbert(seed=0, rows=2)  # 3 cubes
        env.reset()
        total = 0.0
        _, r, done, _ = env.step(2)  # hop to (1,0), painting it
        total += r
        assert not done
        _, r, done, _ = env.step(1)  # back up to the apex (already painted)
        total += r
        assert not done
        _, r, done, info = env.step(3)  # (1,1) — pyramid complete
        total += r
        assert done and info.get("cleared")
        assert total == pytest.approx(1.0 + 0.0 + 1.0 + 5.0)

    def test_rows_validation(self):
        with pytest.raises(ValueError):
            GridQbert(rows=1)


class TestHopper1D:
    def test_action_space(self):
        assert Hopper1D.action_space == Box(dim=1)

    def test_thrust_when_grounded_launches(self):
        env = Hopper1D(seed=0)
        env.reset()
        env._height = 0.0
        env._v_vertical = 0.0
        obs, _, _, _ = env.step(np.array([1.0]))
        assert env._v_vertical > 0 or env._height > 0

    def test_idle_hopper_falls(self):
        env = Hopper1D(seed=0)
        env.reset()
        done = False
        steps = 0
        while not done and steps < 50:
            _, _, done, info = env.step(np.array([0.0]))
            steps += 1
        assert done and info["fallen"]

    def test_forward_speed_rewarded(self):
        env = Hopper1D(seed=0)
        env.reset()
        env._height = 0.0
        env._v_forward = 0.0
        _, low, _, _ = env.step(np.array([0.0]))
        env2 = Hopper1D(seed=0)
        env2.reset()
        env2._height = 0.0
        env2._v_forward = 2.0
        _, high, _, _ = env2.step(np.array([0.0]))
        assert high > low


class TestCheetah1D:
    def test_action_space(self):
        assert Cheetah1D.action_space == Box(dim=2)

    def test_antisymmetric_action_drives(self):
        env = Cheetah1D(seed=0)
        env.reset()
        env._velocity = 0.0
        env._pitch = 0.0
        env.step(np.array([1.0, -1.0]))
        assert env._velocity > 0

    def test_symmetric_action_pitches_not_drives(self):
        env = Cheetah1D(seed=0)
        env.reset()
        env._velocity = 0.0
        env._pitch = 0.0
        env.step(np.array([1.0, 1.0]))
        assert env._velocity == pytest.approx(0.0)
        assert env._pitch_rate != 0.0

    def test_fixed_episode_length(self):
        env = Cheetah1D(seed=0, max_steps=10)
        env.reset()
        for step in range(10):
            _, _, done, _ = env.step(np.array([0.0, 0.0]))
        assert done

    def test_control_cost_penalizes(self):
        env_idle = Cheetah1D(seed=0)
        env_idle.reset()
        env_idle._velocity = 1.0
        env_idle._pitch = 0.0
        _, idle, _, _ = env_idle.step(np.array([0.0, 0.0]))
        env_burn = Cheetah1D(seed=0)
        env_burn.reset()
        env_burn._velocity = 1.0
        env_burn._pitch = 0.0
        _, burn, _, _ = env_burn.step(np.array([1.0, 1.0]))
        assert idle > burn

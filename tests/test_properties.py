"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import AggregationEngine
from repro.core.protocol import FLOATS_PER_SEGMENT, DataSegment, SegmentPlan
from repro.netsim.events import Simulator
from repro.netsim.trace import LatencyStats
from repro.rl.a2c import discounted_returns
from repro.rl.ppo import gae_advantages
from repro.nn.tensor import Tensor, _unbroadcast


class TestSegmentPlanProperties:
    @given(
        n_elements=st.integers(1, 20_000),
        frames_per_chunk=st.integers(1, 8),
        round_index=st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_assemble_roundtrip(self, n_elements, frames_per_chunk, round_index):
        plan = SegmentPlan(n_elements, frames_per_chunk=frames_per_chunk)
        vector = np.random.default_rng(0).standard_normal(n_elements).astype(
            np.float32
        )
        segments = plan.split(vector, round_index)
        assert len(segments) == plan.n_chunks
        np.testing.assert_array_equal(plan.assemble(segments), vector)

    @given(n_elements=st.integers(1, 50_000), frames_per_chunk=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_chunks_partition_vector(self, n_elements, frames_per_chunk):
        plan = SegmentPlan(n_elements, frames_per_chunk=frames_per_chunk)
        boundaries = [plan.chunk_bounds(c) for c in range(plan.n_chunks)]
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == n_elements
        for (_, stop), (start, _) in zip(boundaries, boundaries[1:]):
            assert stop == start

    @given(seg=st.integers(0, 10**9), n_elements=st.integers(1, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_round_chunk_decomposition(self, seg, n_elements):
        plan = SegmentPlan(n_elements)
        round_index = plan.round_of_seg(seg)
        chunk = plan.chunk_of_seg(seg)
        assert round_index * plan.n_chunks + chunk == seg
        assert 0 <= chunk < plan.n_chunks


class TestEngineProperties:
    @given(
        n_workers=st.integers(1, 8),
        length=st.integers(1, 64),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_numpy_regardless_of_order(self, n_workers, length, seed):
        rng = np.random.default_rng(seed)
        vectors = [
            rng.standard_normal(length).astype(np.float32)
            for _ in range(n_workers)
        ]
        engine = AggregationEngine(threshold=n_workers)
        # Snapshot first: the engine adopts a first writable contribution
        # as its accumulation buffer, so senders' arrays may be summed into.
        expected = np.sum(vectors, axis=0)
        order = rng.permutation(n_workers)
        result = None
        for index in order:
            result = engine.contribute(
                DataSegment(seg=0, data=vectors[index], sender=f"w{index}")
            )
        assert result is not None
        np.testing.assert_allclose(result.data, expected, rtol=1e-5, atol=1e-5)

    @given(
        contributions=st.integers(1, 40),
        threshold=st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_completions_count(self, contributions, threshold):
        engine = AggregationEngine(threshold=threshold)
        completed = 0
        for i in range(contributions):
            if engine.contribute(
                DataSegment(seg=0, data=np.ones(4, dtype=np.float32))
            ):
                completed += 1
        assert completed == contributions // threshold
        assert engine.pending_count(0) == contributions % threshold

    @given(
        threshold=st.integers(1, 6),
        n_chunks=st.integers(1, 6),
        commits=st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_arrival_renumbering_conserves_data(self, threshold, n_chunks, commits):
        """Under renumbering, every completed round sums exactly H
        contributions — no gradient is double-counted or lost until the
        buffers are (intentionally) evicted."""
        engine = AggregationEngine(threshold=threshold)
        engine.arrival_renumber = n_chunks
        total_in = 0.0
        total_out = 0.0
        for commit in range(commits):
            for chunk in range(n_chunks):
                value = float(commit + 1)
                total_in += value
                result = engine.contribute(
                    DataSegment(
                        seg=commit * n_chunks + chunk,
                        data=np.array([value], dtype=np.float32),
                    )
                )
                if result is not None:
                    total_out += float(result.data[0])
        leftover = sum(
            float(buffer[0]) for buffer in engine._buffers.values()
        )
        assert total_out + leftover == pytest.approx(total_in, rel=1e-6)


class TestLatencyStatsProperties:
    @given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, values):
        stats = LatencyStats()
        for v in values:
            stats.record(v)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert stats.min == min(values)
        assert stats.max == max(values)

    @given(
        a=st.lists(st.floats(0.0, 1e3), min_size=1, max_size=50),
        b=st.lists(st.floats(0.0, 1e3), min_size=1, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_combined(self, a, b):
        left = LatencyStats()
        combined = LatencyStats()
        for v in a:
            left.record(v)
            combined.record(v)
        right = LatencyStats()
        for v in b:
            right.record(v)
            combined.record(v)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)


class TestSimulatorProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestRLMathProperties:
    @given(
        rewards=st.lists(st.floats(-10, 10), min_size=1, max_size=30),
        gamma=st.floats(0.5, 0.999),
    )
    @settings(max_examples=40, deadline=None)
    def test_returns_satisfy_bellman_recursion(self, rewards, gamma):
        rewards_arr = np.asarray(rewards)
        dones = np.zeros(len(rewards))
        returns = discounted_returns(rewards_arr, dones, 0.0, gamma)
        for t in range(len(rewards) - 1):
            assert returns[t] == pytest.approx(
                rewards_arr[t] + gamma * returns[t + 1], rel=1e-9, abs=1e-9
            )

    @given(
        length=st.integers(1, 30),
        gamma=st.floats(0.5, 0.999),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_gae_with_lambda_one_is_full_return_advantage(self, length, gamma, seed):
        rng = np.random.default_rng(seed)
        rewards = rng.standard_normal(length)
        values = rng.standard_normal(length)
        dones = np.zeros(length)
        bootstrap = float(rng.standard_normal())
        adv = gae_advantages(rewards, values, dones, bootstrap, gamma, lam=1.0)
        returns = discounted_returns(rewards, dones, bootstrap, gamma)
        np.testing.assert_allclose(adv, returns - values, rtol=1e-8, atol=1e-8)


class TestUnbroadcastProperty:
    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_inverts_broadcast_sum(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        grad = rng.standard_normal((rows, cols))
        # Broadcasting a (1, cols) array up to (rows, cols): the gradient
        # must sum over the broadcast axis.
        reduced = _unbroadcast(grad, (1, cols))
        np.testing.assert_allclose(reduced, grad.sum(axis=0, keepdims=True))
        # Scalar case.
        scalar = _unbroadcast(grad, ())
        assert scalar == pytest.approx(grad.sum())

    @given(
        batch=st.integers(1, 4),
        features=st.integers(1, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_linear_gradient_matches_finite_difference(self, batch, features, seed):
        rng = np.random.default_rng(seed)
        weights = Tensor(rng.standard_normal(features), requires_grad=True)
        x = rng.standard_normal((batch, features))
        (Tensor(x) * weights).sum().backward()
        np.testing.assert_allclose(weights.grad, x.sum(axis=0), rtol=1e-10)

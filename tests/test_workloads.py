"""Tests for workload profiles and the cost model."""

import pytest

from repro.workloads import (
    DEFAULT_COST_MODEL,
    PROFILES,
    CostModel,
    get_profile,
)


class TestProfiles:
    def test_all_four_paper_workloads_present(self):
        assert {"dqn", "a2c", "ppo", "ddpg"} <= set(PROFILES)
        # Plus the simulator-benchmark stand-in (not a paper workload).
        assert set(PROFILES) == {"dqn", "a2c", "ppo", "ddpg", "synth"}

    def test_paper_model_sizes(self):
        assert PROFILES["dqn"].model_bytes == int(6.41 * 1024 * 1024)
        assert PROFILES["a2c"].model_bytes == int(3.31 * 1024 * 1024)
        assert PROFILES["ppo"].model_bytes == int(40.02 * 1024)
        assert PROFILES["ddpg"].model_bytes == int(157.52 * 1024)

    def test_paper_iteration_counts(self):
        assert PROFILES["dqn"].paper_iterations == 1_400_000
        assert PROFILES["ppo"].paper_iterations == 80_000

    def test_get_profile_case_insensitive(self):
        assert get_profile("DQN") is PROFILES["dqn"]

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_profile("impala")

    def test_ddpg_dual_model(self):
        assert PROFILES["ddpg"].message_count == 2
        assert PROFILES["ddpg"].update_cost_factor > 1.0

    def test_n_elements(self):
        for profile in PROFILES.values():
            assert profile.n_elements == profile.model_bytes // 4

    def test_paper_reference_tables_complete(self):
        for name, profile in PROFILES.items():
            if name == "synth":  # no paper reference exists for it
                continue
            assert set(profile.paper_sync_iter_ms) == {"ps", "ar", "isw"}
            assert set(profile.paper_async_iter_ms) == {"ps", "isw"}
            assert set(profile.paper_async_iterations) == {"ps", "isw"}


class TestCostModel:
    def test_server_ingest_scales_with_messages(self):
        cost = DEFAULT_COST_MODEL
        assert cost.server_ingest(1000, messages=2) > cost.server_ingest(
            1000, messages=1
        )

    def test_server_update_factor(self):
        cost = DEFAULT_COST_MODEL
        assert cost.server_update(1000, factor=3.0) == pytest.approx(
            3.0 * cost.server_update(1000)
        )

    def test_per_byte_terms_monotone(self):
        cost = DEFAULT_COST_MODEL
        for fn in (
            cost.server_ingest,
            cost.server_update,
            cost.pull_serve,
            cost.worker_ingest,
            cost.allreduce_step,
        ):
            assert fn(2_000_000) > fn(1_000)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_COST_MODEL.message_overhead = 1.0

    def test_custom_model(self):
        custom = CostModel(ps_vector_overhead=1.0)
        assert custom.server_ingest(0) == pytest.approx(1.0)

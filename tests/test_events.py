"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.netsim.events import SimError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimError):
            sim.run()

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(sim.now)
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_does_not_affect_others(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(1.0, lambda: seen.append("b"))
        event.cancel()
        sim.run()
        assert seen == ["b"]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        event.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=3.0)
        assert seen == [1]
        assert sim.now == 3.0

    def test_run_until_is_resumable(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=3.0)
        sim.run()
        assert seen == [1, 5]

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_executes_one_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(2.0, lambda: seen.append(2))
        assert sim.step() is True
        assert seen == [1]

    def test_processed_counter(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_reset(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_events == 0
        assert sim.processed_events == 0

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

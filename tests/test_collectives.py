"""Tests for the collectives layer and the strategies composed from it.

Covers three things:

* unit behaviour of the primitives (handles, barriers, schedules,
  gather/scatter on a tiny star network);
* the golden regression pinning every refactored strategy's final
  weights *and* total simulated time to pre-refactor values — the
  collectives layer is required to be a pure factoring, bit for bit;
* the two strategies that exist only because the layer made them cheap
  to add: ``ar-hd`` (recursive halving/doubling) and ``ps-shard``
  (parameter server sharded across worker hosts).
"""

import hashlib

import numpy as np
import pytest

from repro.distributed import run_sync, run_async
from repro.distributed.collectives import (
    CollectiveHandle,
    RoundBarrier,
    hd_all_gather,
    hd_reduce_scatter,
    ring_all_gather,
    ring_reduce_scatter,
)
from repro.distributed.collectives.base import HandleLedger, MAX_LIVE_HANDLES
from repro.distributed.collectives.ps import PsGather, PsScatter
from repro.distributed.config import ExperimentConfig
from repro.distributed.metrics import BusyQueue
from repro.distributed.registry import strategy_specs
from repro.distributed.runner import build_cluster, run
from repro.distributed.sharded import ShardedParameterServer
from repro.distributed.sync import HalvingDoublingAllReduce, RingAllReduce
from repro.netsim import Simulator
from repro.netsim.topology import build_star
from repro.workloads import get_profile


def weight_hash(result) -> str:
    weights = result.workers[0].algorithm.get_weights()
    return hashlib.sha256(
        np.ascontiguousarray(weights, dtype=np.float64).tobytes()
    ).hexdigest()[:16]


# ----------------------------------------------------------------------
# Golden regression: the refactor must be a pure factoring
# ----------------------------------------------------------------------
#: (final-weight hash of worker 0, total simulated seconds) captured on
#: the pre-collectives implementation for ppo / 4 workers / seed 7 with
#: 5 sync iterations or 30 async updates; ``ar-hd``/``ps-shard`` were
#: pinned on the pre-payload-refactor implementation so the zero-copy
#: datapath covers all seven strategies.  Any drift here means a change
#: to either the math or the event schedule — fix the regression, do not
#: re-pin these values.
GOLDEN = {
    ("sync", "ps"): ("8597b1f7ddb892fb", 0.09213318678487417),
    ("sync", "ar"): ("8597b1f7ddb892fb", 0.09544441303242046),
    ("sync", "ar-hd"): ("8597b1f7ddb892fb", 0.07844703138005157),
    ("sync", "ps-shard"): ("8597b1f7ddb892fb", 0.05470335664735608),
    ("sync", "isw"): ("94346f131ed9bc3c", 0.04437665757874773),
    ("async", "ps"): ("09fc5c06e2e6462d", 0.11654701069085062),
    ("async", "isw"): ("9c075db685abf719", 0.25010475115351194),
}


class TestGoldenRegression:
    @pytest.mark.parametrize("mode,strategy", sorted(GOLDEN))
    def test_weights_and_simulated_time_pinned(self, mode, strategy):
        if mode == "sync":
            result = run_sync(strategy, "ppo", n_workers=4, n_iterations=5, seed=7)
        else:
            result = run_async(strategy, "ppo", n_workers=4, n_updates=30, seed=7)
        expected_hash, expected_elapsed = GOLDEN[(mode, strategy)]
        assert weight_hash(result) == expected_hash
        assert result.elapsed == expected_elapsed


# ----------------------------------------------------------------------
# Primitive unit tests
# ----------------------------------------------------------------------
class TestHandlesAndBarriers:
    def test_handle_records_times_and_done(self):
        sim = Simulator()
        handle = CollectiveHandle("x", tag=0, sim=sim, expected=2)
        handle.mark_started("a")
        sim.schedule(1.5, lambda: handle.mark_completed("a"))
        sim.schedule(2.5, lambda: handle.mark_completed("b"))
        sim.run()
        assert handle.done
        assert handle.elapsed("a") == pytest.approx(1.5)
        assert handle.elapsed("b") is None  # never marked started
        assert handle.completed_at == pytest.approx(2.5)

    def test_ledger_completes_and_forgets(self):
        sim = Simulator()
        ledger = HandleLedger("x", sim)
        handle = ledger.get(0, expected=1)
        handle.mark_started("a")
        ledger.complete(0, "a")
        assert ledger.peek(0) is None
        # Completing an unknown tag is a no-op, not an error.
        ledger.complete(42, "a")

    def test_ledger_evicts_oldest(self):
        sim = Simulator()
        ledger = HandleLedger("x", sim)
        for tag in range(MAX_LIVE_HANDLES + 1):
            ledger.get(tag, expected=99)
        assert len(ledger) <= MAX_LIVE_HANDLES
        assert ledger.peek(0) is None  # oldest evicted
        assert ledger.peek(MAX_LIVE_HANDLES) is not None

    def test_barrier_fires_once_at_threshold(self):
        fired = []
        barrier = RoundBarrier(3, fired.append)
        assert not barrier.arrive("r")
        assert not barrier.arrive("r")
        assert barrier.pending("r") == 2
        assert barrier.arrive("r")
        assert fired == ["r"]
        assert barrier.pending("r") == 0  # tag reset, can be reused

    def test_barrier_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            RoundBarrier(0)


class _FakeWorker:
    def __init__(self, index, host):
        self.index = index
        self.host = host
        self.name = host.name


def star(n):
    """n worker hosts plus a server host as gather/scatter hub, all on
    one basic switch (hosts are single-homed)."""
    sim = Simulator()
    net = build_star(sim, n, with_server=True)
    workers = [_FakeWorker(i, host) for i, host in enumerate(net.workers)]
    return sim, net.server, workers


class TestPsPrimitives:
    def test_gather_round_barrier_and_vectors(self):
        sim, hub, workers = star(3)
        cpu = BusyQueue(sim, name="hub")
        seen, rounds = [], []
        gather = PsGather(
            hub,
            cpu,
            ingest_cost=1e-6,
            on_vector=lambda src, tag, vec, meta: seen.append((src, vec[0])),
            threshold=3,
            on_round=rounds.append,
        )
        for worker in workers:
            gather.submit(
                worker,
                tag=0,
                vector=np.full(4, float(worker.index), dtype=np.float32),
                wire_bytes=1000,
            )
        sim.run()
        assert rounds == [0]
        assert sorted(v for _, v in seen) == [0.0, 1.0, 2.0]

    def test_gather_submit_local_skips_wire_but_pays_cpu(self):
        sim, hub, workers = star(2)
        cpu = BusyQueue(sim, name="hub")
        done = []
        gather = PsGather(
            hub, cpu, ingest_cost=0.5, on_vector=lambda *a: done.append(sim.now)
        )
        gather.submit_local(workers[0], tag=0, vector=None)
        sim.run()
        assert done == [pytest.approx(0.5)]  # CPU cost only, no wire time

    def test_scatter_broadcast_reaches_all(self):
        sim, hub, workers = star(3)
        got = []
        scatter = PsScatter(
            hub, workers, on_deliver=lambda w, tag, vec, meta: got.append(w.index)
        )
        scatter.broadcast(tag=0, vector=None, wire_bytes=1000)
        sim.run()
        assert sorted(got) == [0, 1, 2]

    def test_callable_ingest_cost(self):
        sim, hub, workers = star(1)
        cpu = BusyQueue(sim, name="hub")
        done = []
        gather = PsGather(
            hub,
            cpu,
            ingest_cost=lambda src, tag, vec, meta: 0.25,
            on_vector=lambda *a: done.append(sim.now),
        )
        gather.submit_local(workers[0], tag=0, vector=None)
        sim.run()
        assert done == [pytest.approx(0.25)]


class TestSchedules:
    def test_ring_schedules_step_counts(self):
        rs = ring_reduce_scatter(4, chunk_bytes=100, message_count=3)
        ag = ring_all_gather(4, chunk_bytes=100, message_count=3)
        assert rs.n_steps == 9 and ag.n_steps == 9
        assert rs.peer_of(3, 0) == 0  # ring wraps
        assert rs.bytes_of(5) == 100

    def test_hd_schedules_step_counts_and_halving(self):
        rs = hd_reduce_scatter(8, wire_bytes=8000, message_count=1)
        ag = hd_all_gather(8, wire_bytes=8000, message_count=1)
        assert rs.n_steps == 3 and ag.n_steps == 3
        # Payload halves each reduce step: 4000, 2000, 1000.
        assert [rs.bytes_of(s) for s in range(3)] == [4000, 2000, 1000]
        # ...and doubles back symmetrically in the gather phase.
        assert [ag.bytes_of(s) for s in range(3)] == [1000, 2000, 4000]
        # Peers are symmetric partners (i XOR 2^k).
        for step in range(3):
            for i in range(8):
                peer = rs.peer_of(i, step)
                assert rs.peer_of(peer, step) == i

    def test_hd_requires_power_of_two(self):
        for n in (3, 6, 12):
            with pytest.raises(ValueError, match="power-of-two"):
                hd_reduce_scatter(n, wire_bytes=1000)


# ----------------------------------------------------------------------
# New strategies: ar-hd and ps-shard
# ----------------------------------------------------------------------
class TestNewStrategies:
    @pytest.fixture(scope="class")
    def trio(self):
        """ar, ar-hd, ps-shard on the same seed at N=8."""
        return {
            s: run_sync(s, "ppo", n_workers=8, n_iterations=3, seed=7)
            for s in ("ar", "ar-hd", "ps-shard")
        }

    def test_identical_weight_trajectories(self, trio):
        reference = weight_hash(trio["ar"])
        assert weight_hash(trio["ar-hd"]) == reference
        assert weight_hash(trio["ps-shard"]) == reference

    def test_hd_has_logarithmic_steps(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            8, profile, with_server=False, use_iswitch=False, workload="ppo"
        )
        hd = HalvingDoublingAllReduce(net, workers, profile)
        net2, workers2 = build_cluster(
            8, profile, with_server=False, use_iswitch=False, workload="ppo"
        )
        ring = RingAllReduce(net2, workers2, profile)
        # 2·log2(8)·messages vs 2·(8−1)·messages.
        assert hd.total_steps * 7 == ring.total_steps * 3
        assert hd.total_steps < ring.total_steps

    def test_hd_aggregates_faster_than_ring_at_8(self, trio):
        hd, ring = trio["ar-hd"], trio["ar"]
        assert hd.aggregation_latency.mean < ring.aggregation_latency.mean
        assert hd.elapsed < ring.elapsed

    def test_hd_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            run_sync("ar-hd", "ppo", n_workers=6, n_iterations=1)

    def test_ps_shard_clamps_shards_to_workers(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            2, profile, with_server=False, use_iswitch=False, workload="ppo"
        )
        strategy = ShardedParameterServer(net, workers, profile, n_shards=16)
        assert strategy.n_shards == 2
        assert sum(strategy.shard_bytes) >= strategy.wire_bytes

    def test_ps_shard_needs_two_workers(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            1, profile, with_server=False, use_iswitch=False, workload="ppo"
        )
        with pytest.raises(ValueError, match="at least 2"):
            ShardedParameterServer(net, workers, profile)

    def test_ps_shard_runs_via_config_with_shard_count(self):
        result = run(
            ExperimentConfig(
                strategy="ps-shard",
                workload="ppo",
                n_workers=4,
                iterations=2,
                seed=7,
                ps_shards=2,
                telemetry=False,
            )
        )
        assert result.strategy == "sync-ps-shard"
        assert all(w.iterations_done == 2 for w in result.workers)

    def test_new_strategies_through_cli(self, capsys):
        from repro.cli import main

        for strategy in ("ar-hd", "ps-shard"):
            code = main(
                [
                    "train",
                    "--strategy",
                    strategy,
                    "--workload",
                    "ppo",
                    "--workers",
                    "4",
                    "--iterations",
                    "2",
                ]
            )
            assert code == 0
            assert f"sync-{strategy}" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Registry introspection
# ----------------------------------------------------------------------
class TestRegistryIntrospection:
    def test_strategy_specs_cover_both_modes(self):
        names = {(s.mode, s.name) for s in strategy_specs()}
        assert {("sync", "ps"), ("sync", "ar-hd"), ("sync", "ps-shard"),
                ("async", "isw")} <= names

    def test_strategy_specs_mode_filter(self):
        from repro.distributed.registry import strategy_names

        sync_only = strategy_specs("sync")
        assert sync_only and all(s.mode == "sync" for s in sync_only)
        assert tuple(s.name for s in sync_only) == strategy_names("sync")

    def test_list_strategies_flag(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--list-strategies"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in ("ps", "ar", "ar-hd", "isw", "ps-shard"):
            assert name in out

    def test_unregister_removes_and_tolerates_missing(self):
        from repro.distributed.registry import (
            get_strategy,
            register_strategy,
            unregister_strategy,
        )
        from repro.distributed.sync import SyncParameterServer

        register_strategy("sync", "tmp-test")(SyncParameterServer)
        assert get_strategy("sync", "tmp-test").cls is SyncParameterServer
        unregister_strategy("sync", "tmp-test")
        with pytest.raises(KeyError, match="unknown sync strategy"):
            get_strategy("sync", "tmp-test")
        # Unregistering again is a no-op.
        unregister_strategy("sync", "tmp-test")


# ----------------------------------------------------------------------
# Compute fast path vs legacy (PR 10): the distributed layer must not
# notice which compute path the workers run on
# ----------------------------------------------------------------------
class TestComputePathParity:
    """Every strategy, fast vs legacy compute, identical results.

    The goldens above already pin the (default-on) fast path to the
    pre-refactor values; these runs re-execute each strategy on the
    retained legacy implementations and require the same final weights
    *and* the same simulated clock — the compute path must be invisible
    to the event schedule.
    """

    @pytest.mark.parametrize("mode,strategy", sorted(GOLDEN))
    def test_legacy_compute_reproduces_golden(self, mode, strategy):
        from repro.nn import use_legacy_compute

        with use_legacy_compute():
            if mode == "sync":
                result = run_sync(
                    strategy, "ppo", n_workers=4, n_iterations=5, seed=7
                )
            else:
                result = run_async(
                    strategy, "ppo", n_workers=4, n_updates=30, seed=7
                )
        expected_hash, expected_elapsed = GOLDEN[(mode, strategy)]
        assert weight_hash(result) == expected_hash
        assert result.elapsed == expected_elapsed

    def test_chaos_run_fast_vs_legacy(self):
        """Fault injection (crash + switch reset + loss burst) is
        compute-path-invariant too: same weights, same clock, same
        fault verdict."""
        from repro.nn import use_fast_compute, use_legacy_compute

        def chaos(ctx):
            with ctx:
                return run(
                    ExperimentConfig(
                        strategy="isw",
                        workload="dqn",
                        n_workers=4,
                        iterations=6,
                        seed=7,
                        fault_plan="examples/chaos_demo.json",
                        telemetry=False,
                    )
                )

        fast = chaos(use_fast_compute())
        legacy = chaos(use_legacy_compute())
        assert weight_hash(fast) == weight_hash(legacy)
        assert fast.elapsed == legacy.elapsed
        assert fast.fault_report is not None
        assert fast.fault_report.ok == legacy.fault_report.ok


# ----------------------------------------------------------------------
# Collective telemetry
# ----------------------------------------------------------------------
class TestCollectiveTelemetry:
    def test_spans_emitted_per_round(self):
        result = run(
            ExperimentConfig(
                strategy="ar", workload="ppo", n_workers=4, iterations=2, seed=1
            )
        )
        spans = result.telemetry.spans_named("collective.ring")
        # One completion span per worker per iteration.
        assert len(spans) == 4 * 2
        assert all(s.duration >= 0 for s in spans)

    def test_client_round_spans_for_iswitch(self):
        result = run(
            ExperimentConfig(
                strategy="isw", workload="ppo", n_workers=4, iterations=2, seed=1
            )
        )
        spans = result.telemetry.spans_named("client.round")
        assert len(spans) == 4 * 2
        assert all(s.duration > 0 for s in spans)

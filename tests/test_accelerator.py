"""Unit tests for the in-switch aggregation engine."""

import numpy as np
import pytest

from repro.core.accelerator import (
    AcceleratorTiming,
    AggregationEngine,
    VectorGranularityEngine,
)
from repro.core.protocol import DataSegment


def seg(index, values, sender="w", commit=0):
    return DataSegment(
        seg=index,
        data=np.asarray(values, dtype=np.float32),
        sender=sender,
        commit_id=commit,
    )


class TestThresholdCompletion:
    def test_completes_at_threshold(self):
        engine = AggregationEngine(threshold=3)
        assert engine.contribute(seg(0, [1.0], "a")) is None
        assert engine.contribute(seg(0, [2.0], "b")) is None
        result = engine.contribute(seg(0, [3.0], "c"))
        assert result is not None
        assert result.data[0] == pytest.approx(6.0)

    def test_counter_resets_after_completion(self):
        engine = AggregationEngine(threshold=2)
        engine.contribute(seg(0, [1.0], "a"))
        engine.contribute(seg(0, [1.0], "b"))
        # A second round over the same Seg number starts fresh.
        assert engine.contribute(seg(0, [5.0], "a")) is None
        result = engine.contribute(seg(0, [5.0], "b"))
        assert result.data[0] == pytest.approx(10.0)

    def test_independent_segments(self):
        engine = AggregationEngine(threshold=2)
        engine.contribute(seg(0, [1.0], "a"))
        engine.contribute(seg(1, [10.0], "a"))
        result0 = engine.contribute(seg(0, [2.0], "b"))
        result1 = engine.contribute(seg(1, [20.0], "b"))
        assert result0.data[0] == pytest.approx(3.0)
        assert result1.data[0] == pytest.approx(30.0)

    def test_threshold_one_passthrough(self):
        engine = AggregationEngine(threshold=1)
        result = engine.contribute(seg(5, [7.0]))
        assert result.data[0] == pytest.approx(7.0)

    def test_shape_mismatch_rejected(self):
        engine = AggregationEngine(threshold=2)
        engine.contribute(seg(0, [1.0, 2.0], "a"))
        with pytest.raises(ValueError, match="shape"):
            engine.contribute(seg(0, [1.0], "b"))

    def test_vector_sum_matches_numpy(self):
        rng = np.random.default_rng(3)
        engine = AggregationEngine(threshold=4)
        vectors = [rng.standard_normal(128).astype(np.float32) for _ in range(4)]
        # Snapshot the expected sum first: the engine adopts the first
        # writable float32 contribution as its accumulation buffer.
        expected = np.sum(vectors, axis=0)
        result = None
        for i, v in enumerate(vectors):
            result = engine.contribute(seg(0, v, sender=f"w{i}"))
        np.testing.assert_allclose(result.data, expected, rtol=1e-6)


class TestZeroCopyAdoption:
    """The engine must not copy the first writable float32 contribution."""

    def test_first_writable_float32_contribution_is_adopted(self):
        engine = AggregationEngine(threshold=2)
        first = np.arange(8, dtype=np.float32)
        result_holder = engine.contribute(seg(0, first, "a"))
        assert result_holder is None
        assert np.shares_memory(engine._buffers[0], first)
        result = engine.contribute(seg(0, np.ones(8, dtype=np.float32), "b"))
        # The completed sum lives in the adopted array: zero copies end to end.
        assert np.shares_memory(result.data, first)
        np.testing.assert_array_equal(
            result.data, np.arange(8, dtype=np.float32) + 1.0
        )

    def test_read_only_contribution_forces_a_copy(self):
        engine = AggregationEngine(threshold=2)
        first = np.arange(8, dtype=np.float32)
        frozen = first.view()
        frozen.flags.writeable = False
        engine.contribute(
            DataSegment(seg=0, data=frozen, sender="a", commit_id=0)
        )
        assert not np.shares_memory(engine._buffers[0], first)
        result = engine.contribute(seg(0, np.ones(8, dtype=np.float32), "b"))
        np.testing.assert_array_equal(first, np.arange(8, dtype=np.float32))
        np.testing.assert_array_equal(
            result.data, np.arange(8, dtype=np.float32) + 1.0
        )

    def test_non_float32_data_is_rejected_at_construction(self):
        # The wire codec would silently reinterpret other dtypes'
        # bytes, so DataSegment refuses them outright.
        with pytest.raises(ValueError):
            DataSegment(seg=0, data=np.arange(4, dtype=np.float64), sender="a")
        with pytest.raises(ValueError):
            DataSegment(seg=0, data=np.zeros((2, 2), dtype=np.float32))
        with pytest.raises(ValueError):
            DataSegment(seg=0, data=np.zeros(8, dtype=np.float32)[::2])
        with pytest.raises(TypeError):
            DataSegment(seg=0, data=[1.0, 2.0])


class TestControlOperations:
    def test_set_threshold(self):
        engine = AggregationEngine(threshold=4)
        engine.set_threshold(2)
        engine.contribute(seg(0, [1.0], "a"))
        assert engine.contribute(seg(0, [1.0], "b")) is not None

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AggregationEngine(threshold=0)
        with pytest.raises(ValueError):
            AggregationEngine().set_threshold(0)

    def test_reset_clears_state(self):
        engine = AggregationEngine(threshold=2)
        engine.contribute(seg(0, [1.0], "a"))
        engine.reset()
        assert engine.pending_count(0) == 0
        assert engine.live_segments == 0
        engine.contribute(seg(0, [5.0], "a"))
        result = engine.contribute(seg(0, [5.0], "b"))
        assert result.data[0] == pytest.approx(10.0)

    def test_force_broadcast_partial(self):
        engine = AggregationEngine(threshold=4)
        engine.contribute(seg(0, [1.0], "a"))
        engine.contribute(seg(0, [2.0], "b"))
        result = engine.force_broadcast(0)
        assert result.data[0] == pytest.approx(3.0)
        assert engine.stats.forced_broadcasts == 1

    def test_force_broadcast_unknown_seg(self):
        engine = AggregationEngine(threshold=2)
        assert engine.force_broadcast(42) is None

    def test_result_cache_for_help(self):
        engine = AggregationEngine(threshold=1)
        engine.contribute(seg(9, [4.0]))
        cached = engine.cached_result(9)
        assert cached is not None
        assert cached.data[0] == pytest.approx(4.0)
        assert engine.cached_result(10) is None

    def test_cache_eviction(self):
        engine = AggregationEngine(threshold=1, cache_size=10)
        for i in range(25):
            engine.contribute(seg(i, [1.0]))
        assert engine.cached_result(24) is not None
        assert engine.cached_result(0) is None


class TestDedup:
    def test_duplicates_dropped_in_dedup_mode(self):
        engine = AggregationEngine(threshold=2, dedup=True)
        engine.contribute(seg(0, [1.0], "a", commit=1))
        assert engine.contribute(seg(0, [1.0], "a", commit=1)) is None
        assert engine.stats.duplicates_dropped == 1
        result = engine.contribute(seg(0, [2.0], "b", commit=1))
        assert result.data[0] == pytest.approx(3.0)

    def test_counter_mode_counts_duplicates(self):
        engine = AggregationEngine(threshold=2, dedup=False)
        engine.contribute(seg(0, [1.0], "a", commit=1))
        result = engine.contribute(seg(0, [1.0], "a", commit=1))
        assert result is not None  # pure counter semantics (the hardware)
        assert result.data[0] == pytest.approx(2.0)


class TestBufferLimit:
    def test_oldest_evicted_beyond_limit(self):
        engine = AggregationEngine(threshold=2, buffer_limit=3)
        for i in range(6):
            engine.contribute(seg(i, [1.0], "a"))
        assert engine.live_segments <= 3
        assert engine.stats.evictions == 3
        # The newest segments survive.
        assert engine.pending_count(5) == 1
        assert engine.pending_count(0) == 0

    def test_invalid_buffer_limit(self):
        with pytest.raises(ValueError):
            AggregationEngine(buffer_limit=0)


class TestArrivalRenumbering:
    def test_any_h_contributions_complete_a_round(self):
        engine = AggregationEngine(threshold=2)
        engine.arrival_renumber = 1  # single-chunk vectors
        # Two commits from the SAME worker complete round 0.
        engine.contribute(seg(0, [1.0], "fast", commit=1))
        result = engine.contribute(seg(7, [2.0], "fast", commit=2))
        assert result is not None
        assert result.seg == 0  # renumbered to round 0
        assert result.data[0] == pytest.approx(3.0)

    def test_rounds_advance_with_arrivals(self):
        engine = AggregationEngine(threshold=2)
        engine.arrival_renumber = 1
        engine.contribute(seg(0, [1.0]))
        first = engine.contribute(seg(0, [1.0]))
        engine.contribute(seg(0, [1.0]))
        second = engine.contribute(seg(0, [1.0]))
        assert first.seg == 0
        assert second.seg == 1

    def test_chunk_offsets_preserved(self):
        engine = AggregationEngine(threshold=1)
        engine.arrival_renumber = 4
        result = engine.contribute(seg(4 * 9 + 2, [1.0]))
        assert result.seg % 4 == 2


class TestTiming:
    def test_latency_proportional_to_bursts(self):
        timing = AcceleratorTiming()
        small = timing.processing_latency(32)
        large = timing.processing_latency(320)
        assert large > small
        # 10 bursts + 8 pipeline cycles at 200 MHz.
        assert large == pytest.approx((10 + 8) / 200e6)

    def test_paper_segment_under_microsecond(self):
        # A full 1464-byte segment: the accelerator is a bump in the wire.
        latency = AcceleratorTiming().processing_latency(1464)
        assert latency < 1e-6

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorTiming().processing_latency(-1)

    def test_busy_time_accumulates(self):
        engine = AggregationEngine()
        engine.processing_latency(1000)
        engine.processing_latency(1000)
        assert engine.stats.busy_time == pytest.approx(
            2 * AcceleratorTiming().processing_latency(1000)
        )


class TestVectorGranularity:
    def test_holds_until_whole_round_complete(self):
        engine = VectorGranularityEngine(n_chunks=2, threshold=2)
        assert engine.contribute(seg(0, [1.0], "a")) is None
        assert engine.contribute(seg(0, [2.0], "b")) is None  # chunk 0 done, held
        assert engine.contribute(seg(1, [3.0], "a")) is None
        results = engine.contribute(seg(1, [4.0], "b"))
        assert isinstance(results, list)
        assert [r.seg for r in results] == [0, 1]
        assert results[0].data[0] == pytest.approx(3.0)
        assert results[1].data[0] == pytest.approx(7.0)

    def test_rounds_are_independent(self):
        engine = VectorGranularityEngine(n_chunks=2, threshold=1)
        first = engine.contribute(seg(0, [1.0]))
        assert first is None
        batch = engine.contribute(seg(1, [1.0]))
        assert len(batch) == 2
        # Next round (segs 2, 3).
        assert engine.contribute(seg(2, [1.0])) is None
        assert len(engine.contribute(seg(3, [1.0]))) == 2

    def test_reset_clears_held(self):
        engine = VectorGranularityEngine(n_chunks=2, threshold=1)
        engine.contribute(seg(0, [1.0]))
        engine.reset()
        assert engine.contribute(seg(0, [1.0])) is None  # held again, not stale

    def test_invalid_n_chunks(self):
        with pytest.raises(ValueError):
            VectorGranularityEngine(n_chunks=0)

"""docs/PROTOCOL.md stays byte-accurate against core/protocol.py.

Parses the markdown tables in the spec and cross-checks every constant,
action code and Value size against the implementation, then round-trips
the worked examples.  If either side changes without the other, these
tests fail.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core import protocol
from repro.core.protocol import (
    Action,
    ControlMessage,
    SegmentPlan,
    make_control_packet,
    make_data_packet,
)
from repro.netsim import packets

DOC = Path(__file__).resolve().parent.parent / "docs" / "PROTOCOL.md"


@pytest.fixture(scope="module")
def doc_text():
    return DOC.read_text(encoding="utf-8")


def table_rows(text, *required_headers):
    """Yield cell lists for every markdown table row whose table header
    contains all of ``required_headers``."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if all(h in cells for h in required_headers):
            # Skip the separator row, then consume data rows.
            for row_line in lines[i + 2:]:
                if not row_line.lstrip().startswith("|"):
                    break
                row = [c.strip() for c in row_line.strip().strip("|").split("|")]
                yield dict(zip(cells, row))
            return
    raise AssertionError(
        f"no table with headers {required_headers} in PROTOCOL.md"
    )


class TestClassificationConstants:
    def test_tos_values_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["ToS value"], 16)
            for r in table_rows(doc_text, "Constant", "ToS value")
        }
        assert rows == {
            "TOS_CONTROL": protocol.TOS_CONTROL,
            "TOS_DATA_UP": protocol.TOS_DATA_UP,
            "TOS_DATA_DOWN": protocol.TOS_DATA_DOWN,
        }

    def test_udp_port_documented(self, doc_text):
        assert f"`ISWITCH_UDP_PORT = {protocol.ISWITCH_UDP_PORT}`" in doc_text

    def test_framing_constants_match(self, doc_text):
        rows = {
            r["Component"]: int(r["Bytes"])
            for r in table_rows(doc_text, "Component", "Bytes")
        }
        assert rows["Ethernet header + FCS"] == packets.ETHERNET_OVERHEAD
        assert rows["802.1Q VLAN tag"] == packets.VLAN_TAG
        assert rows["IP header"] == packets.IP_HEADER
        assert rows["UDP header"] == packets.UDP_HEADER

    def test_derived_limits_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["Value"])
            for r in table_rows(doc_text, "Constant", "Value", "Meaning")
        }
        assert rows["MAX_FRAME"] == packets.MAX_FRAME
        assert rows["MTU"] == packets.MTU
        assert rows["MAX_UDP_PAYLOAD"] == packets.MAX_UDP_PAYLOAD


class TestControlTable:
    def test_action_codes_match(self, doc_text):
        rows = {
            r["Action"].strip("`"): int(r["Code"])
            for r in table_rows(doc_text, "Action", "Code", "Value bytes")
        }
        assert rows == {a.name: a.value for a in Action}

    def test_value_sizes_match_payload_model(self, doc_text):
        for row in table_rows(doc_text, "Action", "Code", "Value bytes"):
            action = Action[row["Action"].strip("`")]
            value_bytes = int(row["Value bytes"])
            message = ControlMessage(action, value=0)
            assert message.payload_size == 1 + value_bytes, action
            # And no value -> Action byte only.
            assert ControlMessage(action).payload_size == 1


class TestDataSegmentTable:
    def test_size_constants_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["Value"])
            for r in table_rows(doc_text, "Constant", "Value", "Derivation")
        }
        assert rows["SEG_HEADER_BYTES"] == protocol.SEG_HEADER_BYTES
        assert rows["FLOAT_BYTES"] == protocol.FLOAT_BYTES
        assert rows["SEG_PAYLOAD_BYTES"] == protocol.SEG_PAYLOAD_BYTES
        assert rows["FLOATS_PER_SEGMENT"] == protocol.FLOATS_PER_SEGMENT
        assert (
            protocol.SEG_PAYLOAD_BYTES
            == packets.MAX_UDP_PAYLOAD - protocol.SEG_HEADER_BYTES
        )


class TestWorkedExamples:
    def test_seth_example(self):
        msg = ControlMessage(Action.SETH, value=3)
        assert msg.payload_size == 5
        pkt = make_control_packet("worker0", "tor0", msg)
        assert pkt.tos == protocol.TOS_CONTROL == 0x04
        assert pkt.dst_port == 9999
        assert pkt.wire_size == 5 + 8 + 20 + 4 + 18

    def test_thousand_element_plan_example(self):
        plan = SegmentPlan(1000)
        assert plan.elements_per_frame == 366
        assert plan.n_frames == 3
        assert plan.n_chunks == 3
        assert plan.wire_bytes == 3 * 8 + 1000 * 4 == 4024
        segments = plan.split(
            np.zeros(1000, dtype=np.float32), round_index=5
        )
        assert [s.seg for s in segments] == [15, 16, 17]
        last = make_data_packet("w", "s", segments[2], plan)
        assert last.payload_size == 8 + 268 * 4 == 1080

    def test_seg_numbering_round_trips(self):
        plan = SegmentPlan(1000)
        for seg in (0, 7, 15, 17):
            rnd, chunk = plan.round_of_seg(seg), plan.chunk_of_seg(seg)
            assert seg == rnd * plan.n_chunks + chunk

    def test_split_assemble_round_trip(self):
        plan = SegmentPlan(1000)
        rng = np.random.default_rng(0)
        vector = rng.normal(size=1000).astype(np.float32)
        segments = plan.split(vector, round_index=2)
        # Arbitrary arrival order.
        np.testing.assert_array_equal(
            plan.assemble(list(reversed(segments))), vector
        )

    def test_data_packet_tos_by_direction(self):
        plan = SegmentPlan(366)
        seg = plan.split(np.zeros(366, dtype=np.float32), 0)[0]
        up = make_data_packet("w", "s", seg, plan)
        down = make_data_packet("s", "w", seg, plan, downstream=True)
        assert up.tos == protocol.TOS_DATA_UP == 0x08
        assert down.tos == protocol.TOS_DATA_DOWN == 0x0C

    def test_doc_mentions_every_action(self, doc_text):
        for action in Action:
            assert re.search(rf"`{action.name}`", doc_text), action

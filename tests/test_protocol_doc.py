"""docs/PROTOCOL.md stays byte-accurate against core/protocol.py.

Parses the markdown tables in the spec and cross-checks every constant,
action code, Value size and byte offset against the implementation —
for the codec sections (§7) against the *actual encoder output*, not
just the model's size arithmetic — then round-trips the worked
examples.  If either side changes without the other, these tests fail.
"""

import re
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.core import protocol
from repro.core.protocol import (
    Action,
    ControlMessage,
    DataSegment,
    JoinInfo,
    SegmentPlan,
    decode_frame,
    encode_control,
    encode_data,
    make_control_packet,
    make_data_packet,
)
from repro.netsim import packets

DOC = Path(__file__).resolve().parent.parent / "docs" / "PROTOCOL.md"


@pytest.fixture(scope="module")
def doc_text():
    return DOC.read_text(encoding="utf-8")


def table_rows(text, *required_headers):
    """Yield cell lists for every markdown table row whose table header
    contains all of ``required_headers``."""
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.lstrip().startswith("|"):
            continue
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if all(h in cells for h in required_headers):
            # Skip the separator row, then consume data rows.
            for row_line in lines[i + 2:]:
                if not row_line.lstrip().startswith("|"):
                    break
                row = [c.strip() for c in row_line.strip().strip("|").split("|")]
                yield dict(zip(cells, row))
            return
    raise AssertionError(
        f"no table with headers {required_headers} in PROTOCOL.md"
    )


def sample_value(action):
    """A legal, non-trivial Value for each action."""
    if action == Action.JOIN:
        return JoinInfo(
            member_type="worker", rank=3, n_elements=1000, n_chunks=3
        )
    if action == Action.SETH:
        return 3
    if action == Action.ACK:
        return 1
    return 17


class TestClassificationConstants:
    def test_tos_values_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["ToS value"], 16)
            for r in table_rows(doc_text, "Constant", "ToS value")
        }
        assert rows == {
            "TOS_CONTROL": protocol.TOS_CONTROL,
            "TOS_DATA_UP": protocol.TOS_DATA_UP,
            "TOS_DATA_DOWN": protocol.TOS_DATA_DOWN,
        }

    def test_udp_port_documented(self, doc_text):
        assert f"`ISWITCH_UDP_PORT = {protocol.ISWITCH_UDP_PORT}`" in doc_text

    def test_framing_constants_match(self, doc_text):
        rows = {
            r["Component"]: int(r["Bytes"])
            for r in table_rows(doc_text, "Component", "Bytes")
        }
        assert rows["Ethernet header + FCS"] == packets.ETHERNET_OVERHEAD
        assert rows["802.1Q VLAN tag"] == packets.VLAN_TAG
        assert rows["IP header"] == packets.IP_HEADER
        assert rows["UDP header"] == packets.UDP_HEADER

    def test_derived_limits_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["Value"])
            for r in table_rows(doc_text, "Constant", "Value", "Meaning")
        }
        assert rows["MAX_FRAME"] == packets.MAX_FRAME
        assert rows["MTU"] == packets.MTU
        assert rows["MAX_UDP_PAYLOAD"] == packets.MAX_UDP_PAYLOAD


class TestControlTable:
    def test_action_codes_match(self, doc_text):
        rows = {
            r["Action"].strip("`"): int(r["Code"])
            for r in table_rows(doc_text, "Action", "Code", "Value bytes")
        }
        assert rows == {a.name: a.value for a in Action}

    def test_value_sizes_match_payload_model(self, doc_text):
        for row in table_rows(doc_text, "Action", "Code", "Value bytes"):
            action = Action[row["Action"].strip("`")]
            value_bytes = int(row["Value bytes"])
            message = ControlMessage(action, value=0)
            assert message.payload_size == 1 + value_bytes, action
            # And no value -> Action byte only.
            assert ControlMessage(action).payload_size == 1

    def test_value_sizes_match_encoder_output(self, doc_text):
        """§3.2's sizes hold for the real wire frames, not just the model."""
        for row in table_rows(doc_text, "Action", "Code", "Value bytes"):
            action = Action[row["Action"].strip("`")]
            value_bytes = int(row["Value bytes"])
            message = ControlMessage(action, value=sample_value(action))
            frame = encode_control(message)
            # ToS preamble + Action byte + Value.
            assert len(frame) == 2 + value_bytes, action
            assert len(frame) == 1 + message.payload_size, action


class TestDataSegmentTable:
    def test_size_constants_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["Value"])
            for r in table_rows(doc_text, "Constant", "Value", "Derivation")
        }
        assert rows["SEG_HEADER_BYTES"] == protocol.SEG_HEADER_BYTES
        assert rows["FLOAT_BYTES"] == protocol.FLOAT_BYTES
        assert rows["SEG_PAYLOAD_BYTES"] == protocol.SEG_PAYLOAD_BYTES
        assert rows["FLOATS_PER_SEGMENT"] == protocol.FLOATS_PER_SEGMENT
        assert (
            protocol.SEG_PAYLOAD_BYTES
            == packets.MAX_UDP_PAYLOAD - protocol.SEG_HEADER_BYTES
        )


class TestByteCodecStructTable:
    """§7.2: each action's documented struct layout matches the encoder."""

    def _rows(self, doc_text):
        return list(table_rows(doc_text, "Action", "Struct", "Value bytes"))

    def test_every_action_appears_exactly_once(self, doc_text):
        documented = []
        for row in self._rows(doc_text):
            documented.extend(
                Action[name] for name in re.findall(r"`(\w+)`", row["Action"])
            )
        assert sorted(documented) == sorted(Action)

    def test_struct_sizes_match_value_bytes(self, doc_text):
        for row in self._rows(doc_text):
            fmt = row["Struct"].strip("`")
            assert struct.calcsize(fmt) == int(row["Value bytes"]), row

    def test_encoder_emits_documented_layout(self, doc_text):
        for row in self._rows(doc_text):
            fmt = row["Struct"].strip("`")
            for name in re.findall(r"`(\w+)`", row["Action"]):
                action = Action[name]
                message = ControlMessage(action, value=sample_value(action))
                frame = encode_control(message)
                assert frame[0] == protocol.TOS_CONTROL
                assert frame[1] == action.value
                # The Value region is exactly one documented struct.
                fields = struct.unpack(fmt, frame[2:])
                if action == Action.JOIN:
                    info = message.value
                    assert fields == (
                        1, info.rank, 0, info.n_elements, info.n_chunks, 0
                    )
                elif action == Action.SETH:
                    assert fields == (message.value,)  # job 0
                elif action == Action.ACK:
                    assert fields == (message.value,)
                else:
                    assert fields == (message.value,)

    def test_job_bit_packing_matches_doc(self, doc_text):
        """The `(job << k) | value` formulas in §7.2 are the real encoding."""
        job = 5
        seth = encode_control(ControlMessage(Action.SETH, value=3, job=job))
        assert struct.unpack("<I", seth[2:])[0] == (job << 24) | 3
        ack = encode_control(ControlMessage(Action.ACK, value=1, job=job))
        assert struct.unpack("<B", ack[2:])[0] == (job << 1) | 1
        help_ = encode_control(ControlMessage(Action.HELP, value=17, job=job))
        assert struct.unpack("<Q", help_[2:])[0] == (job << 56) | 17
        join = encode_control(
            ControlMessage(Action.JOIN, value=JoinInfo(rank=1), job=job)
        )
        assert struct.unpack("<BBHIII", join[2:])[2] == job

    def test_valueless_control_is_two_bytes(self):
        frame = encode_control(ControlMessage(Action.LEAVE))
        assert frame == bytes((protocol.TOS_CONTROL, Action.LEAVE))


class TestJoinOffsetsTable:
    def test_join_offsets_match_struct(self, doc_text):
        rows = list(table_rows(doc_text, "Join offset", "Size", "Join field"))
        # Rebuild the layout from the documented rows and compare with
        # the encoder's own struct.
        offset = 0
        total = 0
        for row in rows:
            assert int(row["Join offset"]) == offset, row["Join field"]
            offset += int(row["Size"])
            total += int(row["Size"])
        assert total == struct.calcsize("<BBHIII") == 16
        names = [r["Join field"] for r in rows]
        assert names == [
            "member", "rank", "job", "n_elements", "n_chunks", "reserved"
        ]

    def test_join_fields_land_at_documented_offsets(self, doc_text):
        info = JoinInfo(
            member_type="switch", rank=9, n_elements=0x11223344, n_chunks=7
        )
        frame = encode_control(ControlMessage(Action.JOIN, value=info, job=6))
        value = frame[2:]
        offsets = {
            r["Join field"]: (int(r["Join offset"]), int(r["Size"]))
            for r in table_rows(doc_text, "Join offset", "Size", "Join field")
        }

        def field(name):
            start, size = offsets[name]
            return int.from_bytes(value[start:start + size], "little")

        assert field("member") == 2  # switch
        assert field("rank") == 9
        assert field("job") == 6
        assert field("n_elements") == 0x11223344
        assert field("n_chunks") == 7
        assert field("reserved") == 0


class TestDataFrameTable:
    def test_offsets_match_encoder(self, doc_text):
        rows = {
            r["Data field"]: (int(r["Data offset"]), r["Size"])
            for r in table_rows(doc_text, "Data offset", "Size", "Data field")
        }
        assert rows["ToS"][0] == 0
        assert rows["JobSeg"] == (1, "8")
        assert rows["Data"][0] == 1 + protocol.SEG_HEADER_BYTES

        data = np.array([1.5, -2.25, float("nan")], dtype=np.float32)
        segment = DataSegment(seg=17, data=data, job=3)
        for downstream, tos in (
            (False, protocol.TOS_DATA_UP),
            (True, protocol.TOS_DATA_DOWN),
        ):
            frame = encode_data(segment, downstream=downstream)
            assert len(frame) == 1 + 8 + 4 * data.size
            assert frame[0] == tos
            word = struct.unpack_from("<Q", frame, 1)[0]
            assert word == (3 << 56) | 17
            wire_floats = np.frombuffer(frame, dtype="<f4", offset=9)
            np.testing.assert_array_equal(
                wire_floats.astype(np.float32), data
            )


class TestRangeLimitsTable:
    def test_limits_match(self, doc_text):
        rows = {
            r["Constant"].strip("`"): int(r["Limit"])
            for r in table_rows(doc_text, "Constant", "Limit")
        }
        assert rows["MAX_JOB_ID"] == protocol.MAX_JOB_ID == 127
        assert rows["MAX_SEG_INDEX"] == protocol.MAX_SEG_INDEX == (1 << 56) - 1


class TestWorkedExamples:
    def test_seth_example(self):
        msg = ControlMessage(Action.SETH, value=3)
        assert msg.payload_size == 5
        pkt = make_control_packet("worker0", "tor0", msg)
        assert pkt.tos == protocol.TOS_CONTROL == 0x04
        assert pkt.dst_port == 9999
        assert pkt.wire_size == 5 + 8 + 20 + 4 + 18

    def test_codec_worked_examples(self):
        """§7.5's hex strings, byte for byte."""
        assert encode_control(
            ControlMessage(Action.SETH, value=3)
        ) == bytes.fromhex("040403000000")
        assert encode_control(
            ControlMessage(Action.HELP, value=17, job=2)
        ) == bytes.fromhex("04061100000000000002")
        assert encode_control(
            ControlMessage(Action.LEAVE)
        ) == bytes.fromhex("0402")
        assert encode_data(
            DataSegment(seg=17, data=np.ones(1, dtype=np.float32))
        ) == bytes.fromhex("0811000000000000000000803f")

    def test_codec_worked_examples_round_trip(self):
        for frame_hex in (
            "040403000000",
            "04061100000000000002",
            "0402",
            "0811000000000000000000803f",
        ):
            frame = bytes.fromhex(frame_hex)
            tos, message = decode_frame(frame)
            assert tos == frame[0]
            if isinstance(message, ControlMessage):
                assert encode_control(message) == frame
            else:
                assert encode_data(message) == frame

    def test_thousand_element_plan_example(self):
        plan = SegmentPlan(1000)
        assert plan.elements_per_frame == 366
        assert plan.n_frames == 3
        assert plan.n_chunks == 3
        assert plan.wire_bytes == 3 * 8 + 1000 * 4 == 4024
        segments = plan.split(
            np.zeros(1000, dtype=np.float32), round_index=5
        )
        assert [s.seg for s in segments] == [15, 16, 17]
        last = make_data_packet("w", "s", segments[2], plan)
        assert last.payload_size == 8 + 268 * 4 == 1080

    def test_wire_bytes_match_encoded_frames(self):
        """SegmentPlan's wire accounting equals real encoded byte counts."""
        plan = SegmentPlan(1000)
        rng = np.random.default_rng(1)
        vector = rng.normal(size=1000).astype(np.float32)
        segments = plan.split(vector, round_index=5)
        encoded = [encode_data(s) for s in segments]
        # Each frame is the ToS preamble plus the modelled payload bytes.
        assert sum(len(f) - 1 for f in encoded) == plan.wire_bytes

    def test_seg_numbering_round_trips(self):
        plan = SegmentPlan(1000)
        for seg in (0, 7, 15, 17):
            rnd, chunk = plan.round_of_seg(seg), plan.chunk_of_seg(seg)
            assert seg == rnd * plan.n_chunks + chunk

    def test_split_assemble_round_trip(self):
        plan = SegmentPlan(1000)
        rng = np.random.default_rng(0)
        vector = rng.normal(size=1000).astype(np.float32)
        segments = plan.split(vector, round_index=2)
        # Arbitrary arrival order.
        np.testing.assert_array_equal(
            plan.assemble(list(reversed(segments))), vector
        )

    def test_data_packet_tos_by_direction(self):
        plan = SegmentPlan(366)
        seg = plan.split(np.zeros(366, dtype=np.float32), 0)[0]
        up = make_data_packet("w", "s", seg, plan)
        down = make_data_packet("s", "w", seg, plan, downstream=True)
        assert up.tos == protocol.TOS_DATA_UP == 0x08
        assert down.tos == protocol.TOS_DATA_DOWN == 0x0C

    def test_doc_mentions_every_action(self, doc_text):
        for action in Action:
            assert re.search(rf"`{action.name}`", doc_text), action


class TestCompressedFrameTables:
    """§8: the compressed-frame spec matches the codec implementations."""

    def _codec(self, name):
        from repro.core.compression import get_codec

        return get_codec(name)

    def test_numerics_tag_table(self, doc_text):
        from repro.core.compression import WIRE_CODECS

        rows = list(table_rows(doc_text, "Tag", "Codec", "Up ToS"))
        documented = {}
        for row in rows:
            tag = int(row["Tag"])
            documented[tag] = row["Codec"].strip("`")
            assert int(row["Up ToS"], 16) == protocol.TOS_DATA_UP | tag
            assert int(row["Down ToS"], 16) == protocol.TOS_DATA_DOWN | tag
        # Every wire codec is documented under its real tag, and no more.
        assert documented == {
            tag: codec.name for tag, codec in WIRE_CODECS.items()
        }
        assert max(documented) <= protocol.TOS_NUMERICS_MASK

    def test_capacity_table(self, doc_text):
        for row in table_rows(
            doc_text, "Codec capacity", "frame_overhead", "B/elt"
        ):
            codec = self._codec(row["Codec capacity"].strip("`"))
            assert int(row["frame_overhead"]) == codec.frame_overhead
            assert int(row["B/elt"]) == codec.bytes_per_element
            assert int(row["Elements/frame"]) == codec.elements_per_frame
            # And the doc's derivation formula actually holds.
            assert codec.elements_per_frame == (
                (protocol.SEG_PAYLOAD_BYTES - codec.frame_overhead)
                // codec.bytes_per_element
            )

    def _frame_pair(self, name, data):
        codec = self._codec(name)
        segment = DataSegment(seg=17, data=data, job=3)
        return (
            encode_data(segment, codec=codec),
            encode_data(segment, downstream=True, codec=codec),
        )

    def test_fp16_offsets(self, doc_text):
        rows = {
            r["fp16 field"]: int(r["fp16 offset"])
            for r in table_rows(doc_text, "fp16 offset", "fp16 field")
        }
        assert rows == {"ToS": 0, "JobSeg": 1, "Data": 9}
        data = np.array([1.5, -2.25, 0.125], dtype=np.float32)
        up, down = self._frame_pair("fp16", data)
        for frame, tos in ((up, 0x09), (down, 0x0D)):
            assert frame[rows["ToS"]] == tos
            assert struct.unpack_from("<Q", frame, rows["JobSeg"])[0] == (
                (3 << 56) | 17
            )
            wire = np.frombuffer(frame, dtype="<f2", offset=rows["Data"])
            np.testing.assert_array_equal(wire.astype(np.float32), data)

    def test_int32bs_offsets(self, doc_text):
        rows = {
            r["int32-bs field"]: int(r["int32-bs offset"])
            for r in table_rows(doc_text, "int32-bs offset", "int32-bs field")
        }
        assert rows == {"ToS": 0, "JobSeg": 1, "Scale": 9, "Mantissas": 13}
        codec = self._codec("int32-bs")
        data = np.array([1.0, -0.5, 0.25], dtype=np.float32)
        up, down = self._frame_pair("int32-bs", data)
        for frame, tos, exponent in (
            (up, 0x0A, codec.exponent),
            (down, 0x0E, codec.exponent - codec.sum_shift),
        ):
            assert frame[rows["ToS"]] == tos
            assert struct.unpack_from("<i", frame, rows["Scale"])[0] == exponent
            mantissa = np.frombuffer(
                frame, dtype="<i2", offset=rows["Mantissas"]
            )
            np.testing.assert_array_equal(
                mantissa, np.rint(data.astype(np.float64) * 2.0 ** exponent)
            )

    def test_topk_offsets_sparse_and_dense(self, doc_text):
        rows = {
            r["topk field"]: r["topk offset"]
            for r in table_rows(doc_text, "topk offset", "topk field")
        }
        assert [int(rows[f]) for f in ("ToS", "JobSeg", "dense_n", "k")] == [
            0, 1, 9, 11
        ]
        assert rows["Indices"] == "13"
        data = np.array([4.0, -0.1, 0.2, -9.0], dtype=np.float32)
        up, down = self._frame_pair("topk", data)
        # Upstream is sparse: n=4 keeps k=1 (the -9.0 at index 3).
        assert up[0] == 0x0B
        assert struct.unpack_from("<HH", up, 9) == (4, 1)
        assert struct.unpack_from("<H", up, 13)[0] == 3
        assert struct.unpack_from("<f", up, 13 + 2)[0] == np.float32(-9.0)
        # Downstream is dense: k == dense_n, index array omitted,
        # values start straight at offset 13.
        assert down[0] == 0x0F
        assert struct.unpack_from("<HH", down, 9) == (4, 4)
        wire = np.frombuffer(down, dtype="<f4", offset=13)
        np.testing.assert_array_equal(wire.astype(np.float32), data)

    def test_compressed_worked_examples(self, doc_text):
        """§8.5's hex strings, byte for byte (job 0 this time)."""
        data = np.array([1.0, -0.5, 0.25], dtype=np.float32)
        segment = DataSegment(seg=17, data=data)
        expected = {
            ("fp16", False): "091100000000000000003c00b80034",
            ("fp16", True): "0d1100000000000000003c00b80034",
            ("int32-bs", False): "0a11000000000000000c000000001000f80004",
            ("int32-bs", True): "0e110000000000000008000000000180ff4000",
            ("topk", False): "0b11000000000000000300010000000000803f",
            ("topk", True): (
                "0f1100000000000000030003000000803f000000bf0000803e"
            ),
        }
        for (name, downstream), frame_hex in expected.items():
            frame = encode_data(
                segment, downstream=downstream, codec=self._codec(name)
            )
            assert frame.hex() == frame_hex, (name, downstream)
        # The doc body carries each full frame (spaces removed).
        stripped = re.sub(r"[\s|]", "", doc_text)
        for frame_hex in expected.values():
            assert frame_hex in stripped

    def test_compressed_frames_decode_to_codec_grid(self):
        """decode_frame handles tagged frames; values land on the grid."""
        data = np.array([1.0, -0.5, 0.25], dtype=np.float32)
        for name in ("fp16", "int32-bs", "topk"):
            codec = self._codec(name)
            segment = DataSegment(seg=17, data=data, job=3)
            frame = encode_data(segment, codec=codec)
            tos, message = decode_frame(frame)
            assert tos & protocol.TOS_NUMERICS_MASK == codec.wire_tag
            assert (message.seg, message.job) == (17, 3)
            np.testing.assert_array_equal(
                message.data, codec.roundtrip(data)
            )

"""Unit tests for the iSwitch wire protocol: packets, plans, segmentation."""

import numpy as np
import pytest

from repro.core.protocol import (
    FLOAT_BYTES,
    FLOATS_PER_SEGMENT,
    ISWITCH_TOS_VALUES,
    ISWITCH_UDP_PORT,
    SEG_HEADER_BYTES,
    SEG_PAYLOAD_BYTES,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    Action,
    ControlMessage,
    DataSegment,
    SegmentPlan,
    make_control_packet,
    make_data_packet,
)


class TestConstants:
    def test_three_reserved_tos_values(self):
        assert len(ISWITCH_TOS_VALUES) == 3
        assert {TOS_CONTROL, TOS_DATA_UP, TOS_DATA_DOWN} == set(ISWITCH_TOS_VALUES)

    def test_seg_field_is_eight_bytes(self):
        assert SEG_HEADER_BYTES == 8  # Figure 5b

    def test_segment_capacity(self):
        assert SEG_PAYLOAD_BYTES == 1472 - 8
        assert FLOATS_PER_SEGMENT == SEG_PAYLOAD_BYTES // FLOAT_BYTES == 366

    def test_table2_actions_complete(self):
        names = {a.name for a in Action}
        assert names == {
            "JOIN",
            "LEAVE",
            "RESET",
            "SETH",
            "FBCAST",
            "HELP",
            "HALT",
            "ACK",
        }


class TestControlMessages:
    def test_bare_action_is_one_byte(self):
        assert ControlMessage(Action.RESET).payload_size == 1

    def test_seth_carries_four_byte_value(self):
        assert ControlMessage(Action.SETH, 4).payload_size == 5

    def test_help_carries_seg_index(self):
        assert ControlMessage(Action.HELP, 17).payload_size == 1 + 8

    def test_control_packet_tagged(self):
        packet = make_control_packet("w0", "sw", ControlMessage(Action.JOIN, "worker"))
        assert packet.tos == TOS_CONTROL
        assert packet.dst_port == ISWITCH_UDP_PORT
        assert isinstance(packet.payload, ControlMessage)


class TestSegmentPlan:
    def test_frame_count(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT * 3)
        assert plan.n_frames == 3
        assert plan.n_chunks == 3

    def test_partial_last_frame(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT + 1)
        assert plan.n_frames == 2

    def test_chunking_groups_frames(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT * 10, frames_per_chunk=4)
        assert plan.n_chunks == 3  # 4 + 4 + 2 frames
        assert plan.chunk_frames(0) == 4
        assert plan.chunk_frames(2) == 2

    def test_chunk_bounds_cover_vector_exactly(self):
        plan = SegmentPlan(1000, frames_per_chunk=2)
        covered = 0
        for c in range(plan.n_chunks):
            start, stop = plan.chunk_bounds(c)
            assert start == covered
            covered = stop
        assert covered == 1000

    def test_chunk_bounds_out_of_range(self):
        plan = SegmentPlan(100)
        with pytest.raises(IndexError):
            plan.chunk_bounds(5)

    def test_split_assigns_global_seg_numbers(self):
        plan = SegmentPlan(1000)
        segments = plan.split(np.zeros(1000, dtype=np.float32), round_index=7)
        base = 7 * plan.n_chunks
        assert [s.seg for s in segments] == list(range(base, base + plan.n_chunks))

    def test_split_rejects_wrong_shape(self):
        plan = SegmentPlan(1000)
        with pytest.raises(ValueError, match="shape"):
            plan.split(np.zeros(999, dtype=np.float32), 0)

    def test_split_rejects_negative_round(self):
        plan = SegmentPlan(100)
        with pytest.raises(ValueError, match="round_index"):
            plan.split(np.zeros(100, dtype=np.float32), -1)

    def test_split_assemble_roundtrip(self):
        plan = SegmentPlan(5000, frames_per_chunk=3)
        vector = np.random.default_rng(0).standard_normal(5000).astype(np.float32)
        segments = plan.split(vector, round_index=3)
        out = plan.assemble(segments)
        np.testing.assert_array_equal(out, vector)

    def test_assemble_any_order(self):
        plan = SegmentPlan(3000)
        vector = np.arange(3000, dtype=np.float32)
        segments = plan.split(vector, 0)[::-1]
        np.testing.assert_array_equal(plan.assemble(segments), vector)

    def test_assemble_detects_duplicates(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT * 2)
        segments = plan.split(
            np.zeros(FLOATS_PER_SEGMENT * 2, dtype=np.float32), 0
        )
        with pytest.raises(ValueError, match="duplicate"):
            plan.assemble([segments[0], segments[0]])

    def test_assemble_detects_missing(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT * 2)
        segments = plan.split(
            np.zeros(FLOATS_PER_SEGMENT * 2, dtype=np.float32), 0
        )
        with pytest.raises(ValueError, match="expected"):
            plan.assemble(segments[:1])

    def test_round_and_chunk_of_seg(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT * 5)
        seg = 3 * plan.n_chunks + 2
        assert plan.round_of_seg(seg) == 3
        assert plan.chunk_of_seg(seg) == 2

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            SegmentPlan(0)
        with pytest.raises(ValueError):
            SegmentPlan(10, frames_per_chunk=0)
        with pytest.raises(ValueError):
            SegmentPlan(10, wire_multiplier=0)


class TestDataPackets:
    def test_data_packet_tagged_and_sized(self):
        plan = SegmentPlan(FLOATS_PER_SEGMENT * 2)
        segment = plan.split(
            np.zeros(FLOATS_PER_SEGMENT * 2, dtype=np.float32), 0
        )[0]
        packet = make_data_packet("w0", "sw", segment, plan)
        assert packet.tos == TOS_DATA_UP
        assert packet.payload_size == SEG_HEADER_BYTES + FLOATS_PER_SEGMENT * 4
        assert packet.frame_count == 1

    def test_downstream_flag(self):
        plan = SegmentPlan(10)
        segment = plan.split(np.zeros(10, dtype=np.float32), 0)[0]
        packet = make_data_packet("sw", "w0", segment, plan, downstream=True)
        assert packet.tos == TOS_DATA_DOWN

    def test_wire_multiplier_scales_footprint(self):
        plan = SegmentPlan(100, wire_multiplier=5)
        segment = plan.split(np.zeros(100, dtype=np.float32), 0)[0]
        packet = make_data_packet("w0", "sw", segment, plan)
        assert packet.frame_count == 5
        assert packet.payload_size == 5 * (SEG_HEADER_BYTES + 100 * 4)

    def test_wire_shape_stamped_on_segment(self):
        plan = SegmentPlan(100, wire_multiplier=3)
        segment = plan.split(np.zeros(100, dtype=np.float32), 0)[0]
        make_data_packet("w0", "sw", segment, plan)
        assert segment.wire_payload == 3 * (SEG_HEADER_BYTES + 400)
        assert segment.wire_frames == 3

    def test_negative_seg_rejected(self):
        with pytest.raises(ValueError, match="Seg index"):
            DataSegment(seg=-1, data=np.zeros(1, dtype=np.float32))

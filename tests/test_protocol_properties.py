"""Seeded-random property tests for the iSwitch wire protocol.

Unlike ``test_properties.py`` (hypothesis-driven invariants on isolated
data structures), these fuzz the *packet-level* protocol path with plain
``random``/``numpy`` generators so failures replay from a literal seed:

* every control Action round-trips through ``make_control_packet`` with
  the modelled payload size and ToS tag intact;
* random gradient vectors survive split -> chunked data packets ->
  assemble bit-identically, for random plan geometries;
* truncated, misordered, duplicated and mis-shaped frame sets are
  rejected by ``assemble`` rather than silently producing garbage;
* the byte codec (``encode_control``/``encode_data``/``decode_frame``)
  round-trips random messages losslessly — including NaN/Inf payloads —
  and raises ``ProtocolError`` (never anything else) on truncated or
  garbage buffers.
"""

import random

import numpy as np
import pytest

from repro.core.protocol import (
    FLOATS_PER_SEGMENT,
    ISWITCH_UDP_PORT,
    MAX_JOB_ID,
    MAX_SEG_INDEX,
    SEG_HEADER_BYTES,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    Action,
    ControlMessage,
    DataSegment,
    JoinInfo,
    ProtocolError,
    SegmentPlan,
    TOS_NUMERICS_MASK,
    decode_frame,
    encode_control,
    encode_data,
    make_control_packet,
    make_data_packet,
)

SEED = 0xC0FFEE
N_TRIALS = 50


def _random_plan(rng: random.Random) -> SegmentPlan:
    return SegmentPlan(
        n_elements=rng.randint(1, 8 * FLOATS_PER_SEGMENT + 17),
        frames_per_chunk=rng.randint(1, 4),
        wire_multiplier=rng.choice((1, 1, 1, 7)),
    )


def _random_vector(np_rng: np.random.Generator, n: int) -> np.ndarray:
    return np_rng.standard_normal(n).astype(np.float32)


#: Value payloads a fuzzer may legally attach to each Action.
_ACTION_VALUES = {
    Action.JOIN: lambda rng: {"model_bytes": rng.randint(4, 1 << 24)},
    Action.LEAVE: lambda rng: None,
    Action.RESET: lambda rng: None,
    Action.SETH: lambda rng: rng.randint(1, 64),
    Action.FBCAST: lambda rng: rng.randint(0, 1 << 32),
    Action.HELP: lambda rng: rng.randint(0, 1 << 32),
    Action.HALT: lambda rng: None,
    Action.ACK: lambda rng: rng.choice((True, False)),
}


class TestControlPacketRoundTrip:
    def test_fuzzer_covers_every_action(self):
        assert set(_ACTION_VALUES) == set(Action)
        assert len(Action) == 8

    def test_all_actions_round_trip(self):
        rng = random.Random(SEED)
        for trial in range(N_TRIALS):
            action = rng.choice(list(Action))
            message = ControlMessage(
                action=action,
                value=_ACTION_VALUES[action](rng),
                job=rng.randint(0, 15),
            )
            packet = make_control_packet("w0", "switch", message)
            # The receiver sees exactly what was sent: tag, ports, object.
            assert packet.tos == TOS_CONTROL, f"trial {trial}"
            assert packet.dst_port == ISWITCH_UDP_PORT
            assert packet.payload is message
            assert packet.payload.action == action
            assert packet.payload.job == message.job
            assert packet.payload_size == message.payload_size
            assert 1 <= packet.payload_size <= 1 + 16

    def test_value_always_grows_the_payload(self):
        rng = random.Random(SEED + 1)
        for action in Action:
            bare = ControlMessage(action=action).payload_size
            value = _ACTION_VALUES[action](rng)
            if value is None:
                continue
            assert ControlMessage(action=action, value=value).payload_size > bare


class TestDataPathRoundTrip:
    def test_split_packetize_assemble_round_trips(self):
        rng = random.Random(SEED + 2)
        np_rng = np.random.default_rng(SEED + 2)
        for trial in range(N_TRIALS):
            plan = _random_plan(rng)
            vector = _random_vector(np_rng, plan.n_elements)
            round_index = rng.randint(0, 999)
            segments = plan.split(
                vector, round_index, sender=f"w{trial}", commit_id=trial
            )
            packets = [
                make_data_packet(
                    f"w{trial}",
                    "switch",
                    segment,
                    plan,
                    downstream=rng.random() < 0.5,
                )
                for segment in segments
            ]
            for packet in packets:
                assert packet.tos in (TOS_DATA_UP, TOS_DATA_DOWN)
                assert packet.payload.wire_payload == packet.payload_size
                assert packet.payload.wire_frames == packet.frame_count
            # Wire accounting: payload bytes across the round cover the
            # whole vector plus one Seg header per real frame.
            assert sum(p.payload_size for p in packets) == (
                plan.wire_multiplier * plan.wire_bytes
            )
            received = [p.payload for p in packets]
            rng.shuffle(received)
            out = plan.assemble(received)
            np.testing.assert_array_equal(out, vector)

    def test_seg_numbers_are_globally_unique_across_rounds(self):
        rng = random.Random(SEED + 3)
        for _ in range(N_TRIALS):
            plan = _random_plan(rng)
            rounds = rng.sample(range(1000), 3)
            seen = set()
            for round_index in rounds:
                vector = np.zeros(plan.n_elements, dtype=np.float32)
                for segment in plan.split(vector, round_index):
                    assert segment.seg not in seen
                    seen.add(segment.seg)
                    assert plan.round_of_seg(segment.seg) == round_index


class TestMalformedFrameRejection:
    def _round(self, rng, np_rng):
        plan = SegmentPlan(
            n_elements=rng.randint(2 * FLOATS_PER_SEGMENT, 6 * FLOATS_PER_SEGMENT),
            frames_per_chunk=1,
        )
        vector = _random_vector(np_rng, plan.n_elements)
        return plan, plan.split(vector, rng.randint(0, 99))

    def test_truncated_round_rejected(self):
        rng = random.Random(SEED + 4)
        np_rng = np.random.default_rng(SEED + 4)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            del segments[rng.randrange(len(segments))]
            with pytest.raises(ValueError, match="expected"):
                plan.assemble(segments)

    def test_foreign_round_segment_rejected(self):
        rng = random.Random(SEED + 5)
        np_rng = np.random.default_rng(SEED + 5)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            victim = rng.randrange(len(segments))
            # Replace one frame with a same-shaped frame from a round far
            # beyond this one's Seg range.
            foreign = DataSegment(
                seg=segments[victim].seg + 100 * plan.n_chunks,
                data=segments[victim].data,
            )
            segments[victim] = foreign
            with pytest.raises(ValueError, match="not part of round"):
                plan.assemble(segments)

    def test_duplicated_frame_rejected(self):
        rng = random.Random(SEED + 6)
        np_rng = np.random.default_rng(SEED + 6)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            victim, source = rng.sample(range(len(segments)), 2)
            segments[victim] = segments[source]
            with pytest.raises(ValueError, match="duplicate|expected|part of"):
                plan.assemble(segments)

    def test_short_frame_payload_rejected(self):
        rng = random.Random(SEED + 7)
        np_rng = np.random.default_rng(SEED + 7)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            victim = rng.randrange(len(segments) - 1)  # not the short tail
            truncated = segments[victim]
            segments[victim] = DataSegment(
                seg=truncated.seg, data=truncated.data[:-1]
            )
            with pytest.raises(ValueError, match="elements"):
                plan.assemble(segments)

    def test_negative_seg_rejected_at_construction(self):
        with pytest.raises(ValueError, match=">= 0"):
            DataSegment(seg=-1, data=np.zeros(1, dtype=np.float32))

    def test_oversized_frame_payload_rejected(self):
        plan = SegmentPlan(n_elements=3 * FLOATS_PER_SEGMENT)
        vector = np.zeros(plan.n_elements, dtype=np.float32)
        segments = plan.split(vector, 0)
        segments[0] = DataSegment(
            seg=segments[0].seg,
            data=np.zeros(FLOATS_PER_SEGMENT + 1, dtype=np.float32),
        )
        with pytest.raises(ValueError, match="elements"):
            plan.assemble(segments)

    def test_seg_header_matches_figure5(self):
        assert SEG_HEADER_BYTES == 8


# ---------------------------------------------------------------------------
# Byte codec (live mode, PROTOCOL.md §7)
# ---------------------------------------------------------------------------

#: Wire-legal Value payloads for each Action (the codec's contract is
#: stricter than the in-simulator model: JOIN carries a JoinInfo, ACK a
#: 1-bit flag, SETH a 24-bit H).
_WIRE_VALUES = {
    Action.JOIN: lambda rng: JoinInfo(
        member_type=rng.choice(("worker", "switch")),
        rank=rng.randint(0, 255),
        n_elements=rng.choice((0, 1, 366, 1000, 0xFFFFFFFF)),
        n_chunks=rng.randint(0, 0xFFFFFFFF),
    ),
    Action.LEAVE: lambda rng: rng.randint(0, MAX_SEG_INDEX),
    Action.RESET: lambda rng: rng.randint(0, MAX_SEG_INDEX),
    Action.SETH: lambda rng: rng.randint(0, (1 << 24) - 1),
    Action.FBCAST: lambda rng: rng.randint(0, MAX_SEG_INDEX),
    Action.HELP: lambda rng: rng.randint(0, MAX_SEG_INDEX),
    Action.HALT: lambda rng: rng.randint(0, MAX_SEG_INDEX),
    Action.ACK: lambda rng: rng.randint(0, 1),
}


def _random_payload(rng: random.Random, np_rng: np.random.Generator):
    """A float32 payload with deliberately nasty values mixed in."""
    n = rng.choice((0, 1, 2, rng.randint(3, FLOATS_PER_SEGMENT)))
    data = np_rng.standard_normal(n).astype(np.float32)
    for special in (np.nan, np.inf, -np.inf, 0.0, -0.0):
        if n and rng.random() < 0.3:
            data[rng.randrange(n)] = special
    return data


class TestCodecControlRoundTrip:
    def test_wire_fuzzer_covers_every_action(self):
        assert set(_WIRE_VALUES) == set(Action)

    def test_random_control_messages_round_trip(self):
        rng = random.Random(SEED + 8)
        for trial in range(4 * N_TRIALS):
            action = rng.choice(list(Action))
            message = ControlMessage(
                action=action,
                value=_WIRE_VALUES[action](rng),
                job=rng.randint(0, MAX_JOB_ID),
            )
            frame = encode_control(message)
            assert len(frame) == 1 + message.payload_size, f"trial {trial}"
            tos, decoded = decode_frame(frame)
            assert tos == TOS_CONTROL
            assert decoded == message, f"trial {trial}"
            # Byte-level identity the other way around too.
            assert encode_control(decoded) == frame

    def test_valueless_messages_round_trip(self):
        for action in Action:
            frame = encode_control(ControlMessage(action))
            assert len(frame) == 2
            _, decoded = decode_frame(frame)
            assert decoded == ControlMessage(action)

    def test_out_of_range_values_rejected_at_encode(self):
        cases = [
            ControlMessage(Action.SETH, value=1 << 24),
            ControlMessage(Action.ACK, value=2),
            ControlMessage(Action.HELP, value=-1),
            ControlMessage(Action.HELP, value=MAX_SEG_INDEX + 1),
            ControlMessage(Action.HELP, value=0, job=MAX_JOB_ID + 1),
            ControlMessage(Action.LEAVE, value=None, job=1),
            ControlMessage(Action.JOIN, value=JoinInfo(member_type="router")),
            ControlMessage(Action.JOIN, value=JoinInfo(rank=256)),
            ControlMessage(Action.JOIN, value={"model_bytes": 4}),
            ControlMessage(Action.HELP, value="17"),
            ControlMessage(9, value=0),
        ]
        for message in cases:
            with pytest.raises(ProtocolError):
                encode_control(message)


class TestCodecDataRoundTrip:
    def test_random_segments_round_trip(self):
        rng = random.Random(SEED + 9)
        np_rng = np.random.default_rng(SEED + 9)
        for trial in range(4 * N_TRIALS):
            segment = DataSegment(
                seg=rng.choice((0, 1, rng.randint(0, MAX_SEG_INDEX))),
                data=_random_payload(rng, np_rng),
                job=rng.randint(0, MAX_JOB_ID),
            )
            downstream = rng.random() < 0.5
            frame = encode_data(segment, downstream=downstream)
            tos, decoded = decode_frame(frame)
            assert tos == (TOS_DATA_DOWN if downstream else TOS_DATA_UP)
            assert decoded.seg == segment.seg
            assert decoded.job == segment.job
            # Bit-exact: NaN payloads compare equal as raw bytes.
            assert decoded.data.tobytes() == segment.data.tobytes()
            assert encode_data(decoded, downstream=downstream) == frame

    def test_decoded_data_is_a_writable_copy(self):
        frame = encode_data(
            DataSegment(seg=0, data=np.ones(4, dtype=np.float32))
        )
        _, decoded = decode_frame(frame)
        decoded.data[0] = 7.0  # must not raise (frombuffer is read-only)
        assert decoded.data.dtype == np.float32

    def test_oversized_segment_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="capacity"):
            encode_data(
                DataSegment(
                    seg=0,
                    data=np.zeros(FLOATS_PER_SEGMENT + 1, dtype=np.float32),
                )
            )


class TestCodecMalformedFrames:
    """decode_frame must raise ProtocolError — never crash — on bad input."""

    def test_specific_malformations_rejected(self):
        good_help = encode_control(ControlMessage(Action.HELP, value=17))
        good_join = encode_control(
            ControlMessage(Action.JOIN, value=JoinInfo(rank=1))
        )
        good_data = encode_data(
            DataSegment(seg=3, data=np.ones(5, dtype=np.float32))
        )
        bad_frames = [
            b"",  # empty
            b"\x00",  # unknown ToS
            b"\xff" + good_help[1:],  # unknown ToS, valid tail
            b"\x04",  # control frame without an Action byte
            b"\x04\x00",  # action code 0
            b"\x04\x63",  # unknown action code
            good_help[:-1],  # truncated mid-Value
            good_help + b"\x00",  # Value too long
            good_join[:-3],  # truncated JOIN
            good_join[:-1] + b"\x01",  # JOIN reserved bits set
            b"\x04\x01" + b"\x03" + good_join[3:],  # unknown member code
            b"\x04\x04\x00\x00",  # SETH Value of 2 bytes
            good_data[:8],  # data frame shorter than its Seg header
            good_data[:-2],  # payload not whole float32s
            b"\x08" + b"\x00" * 8 + b"\x00" * 1468,  # payload > 1464 B
            # job bits above MAX_JOB_ID in the 8-byte Seg/Value word:
            b"\x04\x06" + (0xFF << 56 | 17).to_bytes(8, "little"),
            b"\x08" + (0xFF << 56 | 17).to_bytes(8, "little") + b"\x00" * 4,
        ]
        for frame in bad_frames:
            with pytest.raises(ProtocolError):
                decode_frame(frame)

    def test_random_garbage_never_crashes(self):
        rng = random.Random(SEED + 10)
        for _ in range(8 * N_TRIALS):
            frame = rng.randbytes(rng.randint(0, 64))
            try:
                decode_frame(frame)
            except ProtocolError:
                continue  # rejected cleanly: fine

    def test_mutated_valid_frames_decode_or_reject_cleanly(self):
        """Bit-flipped real frames either decode to a re-encodable message
        or raise ProtocolError — truncation at float32 granularity is
        indistinguishable from a shorter valid frame, so both outcomes
        are legal; crashing is not."""
        from repro.core.compression import codec_for_tag

        rng = random.Random(SEED + 11)
        np_rng = np.random.default_rng(SEED + 11)
        originals = [
            encode_control(ControlMessage(Action.SETH, value=4)),
            encode_control(
                ControlMessage(
                    Action.JOIN,
                    value=JoinInfo(rank=2, n_elements=100, n_chunks=1),
                )
            ),
            encode_control(ControlMessage(Action.HELP, value=99, job=1)),
            encode_data(
                DataSegment(
                    seg=12, data=np_rng.standard_normal(20).astype(np.float32)
                )
            ),
        ]
        for _ in range(4 * N_TRIALS):
            frame = bytearray(rng.choice(originals))
            mutation = rng.random()
            if mutation < 0.4 and len(frame) > 1:
                frame = frame[: rng.randrange(1, len(frame))]  # truncate
            elif mutation < 0.8:
                frame[rng.randrange(len(frame))] ^= 1 << rng.randrange(8)
            else:
                frame += rng.randbytes(rng.randint(1, 8))
            try:
                tos, message = decode_frame(bytes(frame))
            except ProtocolError:
                continue
            # Whatever decoded must re-encode (it is a valid message).
            downstream = (tos & ~TOS_NUMERICS_MASK) == TOS_DATA_DOWN
            tag = tos & TOS_NUMERICS_MASK
            if isinstance(message, ControlMessage):
                assert encode_control(message) == bytes(frame)
            elif tag == 0:
                assert encode_data(message, downstream=downstream) == bytes(frame)
            else:
                # A flipped ToS bit can turn an fp32 frame into a tagged
                # one.  Compressed encodes project onto the codec's grid,
                # so byte identity only holds after one projection:
                # encode(decode(encode(x))) == encode(x).
                codec = codec_for_tag(tag)
                projected = encode_data(
                    message, downstream=downstream, codec=codec
                )
                _, reread = decode_frame(projected)
                assert (
                    encode_data(reread, downstream=downstream, codec=codec)
                    == projected
                )


# ---------------------------------------------------------------------------
# Compressed data frames (PROTOCOL.md §8)
# ---------------------------------------------------------------------------


def _wire_codecs():
    from repro.core.compression import WIRE_CODECS

    return [codec for codec in WIRE_CODECS.values() if codec.wire_tag]


def _nasty_vector(rng, np_rng, n):
    """A float32 payload seeded with every special-value class."""
    data = np_rng.standard_normal(n).astype(np.float32)
    specials = (
        np.nan, np.inf, -np.inf, 0.0, -0.0,
        np.float32(1e-42),   # subnormal
        np.float32(65504.0),  # fp16 max
        np.float32(1e38),     # overflows fp16 and the int32-bs grid
    )
    for special in specials:
        if n and rng.random() < 0.5:
            data[rng.randrange(n)] = special
    return data


class TestCompressedFrameProperties:
    """Per-codec invariants: idempotence, wire==loss-model, edge values."""

    def test_roundtrip_idempotent_on_nasty_inputs(self):
        rng = random.Random(SEED + 12)
        np_rng = np.random.default_rng(SEED + 12)
        for codec in _wire_codecs():
            for _ in range(N_TRIALS):
                data = _nasty_vector(rng, np_rng, rng.randint(1, 365))
                once = codec.roundtrip(data)
                twice = codec.roundtrip(once)
                # Bit-exact fixed point (NaN-safe via raw byte compare).
                assert once.tobytes() == twice.tobytes(), codec.name

    def test_wire_format_matches_loss_model(self):
        """decode(encode(x)) is exactly roundtrip(x) — the simulator's
        loss model and the live wire bytes share one grid."""
        rng = random.Random(SEED + 13)
        np_rng = np.random.default_rng(SEED + 13)
        for codec in _wire_codecs():
            for _ in range(N_TRIALS):
                n = rng.randint(1, min(365, codec.elements_per_frame))
                data = _nasty_vector(rng, np_rng, n)
                if codec.name == "int32-bs":
                    # The switch ALU's grid has no NaN/Inf; roundtrip
                    # defines their mapping (0 / saturation), which the
                    # wire must reproduce — keep them in.
                    pass
                decoded = codec.decode_payload(codec.encode_payload(data))
                expected = codec.roundtrip(data)
                assert decoded.tobytes() == expected.tobytes(), codec.name

    def test_encoded_frames_reencode_stably(self):
        """encode_data(decode_frame(f)) == f once values are on-grid."""
        rng = random.Random(SEED + 14)
        np_rng = np.random.default_rng(SEED + 14)
        for codec in _wire_codecs():
            for trial in range(N_TRIALS):
                n = rng.randint(1, min(365, codec.elements_per_frame))
                segment = DataSegment(
                    seg=rng.randint(0, 10_000),
                    data=codec.roundtrip(_nasty_vector(rng, np_rng, n)),
                    job=rng.randint(0, MAX_JOB_ID),
                )
                downstream = rng.random() < 0.5
                frame = encode_data(
                    segment, downstream=downstream, codec=codec
                )
                tos, decoded = decode_frame(frame)
                assert tos & TOS_NUMERICS_MASK == codec.wire_tag
                assert (decoded.seg, decoded.job) == (segment.seg, segment.job)
                assert (
                    encode_data(decoded, downstream=downstream, codec=codec)
                    == frame
                ), (codec.name, trial)

    def test_truncated_compressed_frames_rejected(self):
        rng = random.Random(SEED + 15)
        np_rng = np.random.default_rng(SEED + 15)
        for codec in _wire_codecs():
            frame = encode_data(
                DataSegment(
                    seg=1,
                    data=codec.roundtrip(
                        np_rng.standard_normal(40).astype(np.float32)
                    ),
                ),
                codec=codec,
            )
            for _ in range(N_TRIALS):
                cut = rng.randrange(10, len(frame))
                try:
                    _, message = decode_frame(frame[:cut])
                except ProtocolError:
                    continue
                # Truncation at element granularity can still parse; it
                # must then be a valid shorter payload, never garbage.
                assert message.data.size <= 40

    def test_int32bs_sum_is_order_independent(self):
        from repro.core.compression import get_codec

        codec = get_codec("int32-bs")
        rng = random.Random(SEED + 16)
        np_rng = np.random.default_rng(SEED + 16)
        for _ in range(N_TRIALS // 2):
            parts = [
                codec.engine_ingest(
                    np_rng.standard_normal(64).astype(np.float32)
                )
                for _ in range(rng.randint(2, 9))
            ]
            forward = np.sum(np.stack(parts), axis=0)
            rng.shuffle(parts)
            shuffled = parts[0].copy()
            for part in parts[1:]:
                shuffled += part
            np.testing.assert_array_equal(forward, shuffled)
            # And the emitted downstream result is on the downstream grid.
            emitted = codec.engine_emit(shuffled)
            assert emitted.tobytes() == codec.engine_emit(forward).tobytes()

    def test_zero_and_denormal_survive_every_codec(self):
        data = np.array(
            [0.0, -0.0, 1e-42, -1e-42], dtype=np.float32
        )
        for codec in _wire_codecs():
            out = codec.roundtrip(data)
            # Denormals are below every codec's resolution: they may
            # flush to zero but must never explode or change sign class.
            assert np.all(np.abs(out) <= np.abs(data) + 1e-30), codec.name


class TestJobIdCodecInteraction:
    """Multi-tenant job ids x compressed numerics: the two header fields
    live in the same frame (job in the Seg word's high byte, the codec
    tag in the ToS low bits) and must not corrupt each other."""

    def test_job_tagged_codec_frames_round_trip_byte_identically(self):
        import struct

        rng = random.Random(SEED + 15)
        np_rng = np.random.default_rng(SEED + 15)
        for codec in _wire_codecs():
            for trial in range(N_TRIALS):
                segment = DataSegment(
                    seg=rng.choice((0, 1, rng.randint(0, MAX_SEG_INDEX))),
                    data=_nasty_vector(
                        rng,
                        np_rng,
                        rng.randint(1, min(365, codec.elements_per_frame)),
                    ),
                    job=rng.randint(1, MAX_JOB_ID),
                )
                downstream = rng.random() < 0.5
                frame = encode_data(segment, downstream=downstream, codec=codec)
                # The Seg word carries the job untouched by the codec tag.
                word = struct.unpack_from("<Q", frame, 1)[0]
                assert word >> 56 == segment.job, f"{codec.name} trial {trial}"
                assert word & MAX_SEG_INDEX == segment.seg
                tos, decoded = decode_frame(frame)
                # ToS classifies on both axes at once.
                expected_dir = TOS_DATA_DOWN if downstream else TOS_DATA_UP
                assert tos & ~TOS_NUMERICS_MASK == expected_dir
                assert tos & TOS_NUMERICS_MASK == codec.wire_tag
                assert decoded.job == segment.job
                assert decoded.seg == segment.seg
                # Decoded values are exactly what the payload codec says
                # for this direction (up/down grids differ for int32-bs);
                # re-encoding them with the same job reproduces the bytes.
                expected_data = codec.decode_payload(
                    codec.encode_payload(segment.data, downstream=downstream),
                    downstream=downstream,
                )
                assert (
                    decoded.data.tobytes() == expected_data.tobytes()
                ), f"{codec.name} trial {trial}"
                assert (
                    encode_data(decoded, downstream=downstream, codec=codec)
                    == frame
                )

    def test_job_zero_codec_frames_unchanged_by_job_field(self):
        """job=0 (the single-tenant default) and an explicit job share
        the same payload bytes — only the header word differs."""
        rng = random.Random(SEED + 16)
        np_rng = np.random.default_rng(SEED + 16)
        for codec in _wire_codecs():
            data = _nasty_vector(rng, np_rng, 32)
            plain = encode_data(DataSegment(seg=5, data=data), codec=codec)
            tagged = encode_data(
                DataSegment(seg=5, data=data, job=99), codec=codec
            )
            assert plain[0] == tagged[0]  # same ToS (direction + codec)
            assert plain[9:] == tagged[9:]  # same payload
            assert plain[1:9] != tagged[1:9]  # only the Seg word moved

    def test_overrange_job_rejected_at_encode_even_with_codec(self):
        for codec in _wire_codecs():
            with pytest.raises(ProtocolError, match="job id"):
                encode_data(
                    DataSegment(
                        seg=0,
                        data=np.zeros(4, dtype=np.float32),
                        job=MAX_JOB_ID + 1,
                    ),
                    codec=codec,
                )

    def test_overrange_job_bits_rejected_at_decode_even_with_codec(self):
        """Wire frames whose Seg-word high byte exceeds 127 — including
        the reserved top bit 63 — are rejected no matter which numerics
        tag rides in the ToS."""
        import struct

        rng = random.Random(SEED + 17)
        np_rng = np.random.default_rng(SEED + 17)
        for codec in _wire_codecs():
            payload = codec.encode_payload(
                _nasty_vector(rng, np_rng, 8), downstream=False
            )
            for bad_job in (MAX_JOB_ID + 1, 0x80, 0xFF):
                frame = (
                    struct.pack(
                        "<BQ",
                        TOS_DATA_UP | codec.wire_tag,
                        (bad_job << 56) | 17,
                    )
                    + payload
                )
                with pytest.raises(ProtocolError, match="job id"):
                    decode_frame(frame)

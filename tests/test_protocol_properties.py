"""Seeded-random property tests for the iSwitch wire protocol.

Unlike ``test_properties.py`` (hypothesis-driven invariants on isolated
data structures), these fuzz the *packet-level* protocol path with plain
``random``/``numpy`` generators so failures replay from a literal seed:

* every control Action round-trips through ``make_control_packet`` with
  the modelled payload size and ToS tag intact;
* random gradient vectors survive split -> chunked data packets ->
  assemble bit-identically, for random plan geometries;
* truncated, misordered, duplicated and mis-shaped frame sets are
  rejected by ``assemble`` rather than silently producing garbage.
"""

import random

import numpy as np
import pytest

from repro.core.protocol import (
    FLOATS_PER_SEGMENT,
    ISWITCH_UDP_PORT,
    SEG_HEADER_BYTES,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    Action,
    ControlMessage,
    DataSegment,
    SegmentPlan,
    make_control_packet,
    make_data_packet,
)

SEED = 0xC0FFEE
N_TRIALS = 50


def _random_plan(rng: random.Random) -> SegmentPlan:
    return SegmentPlan(
        n_elements=rng.randint(1, 8 * FLOATS_PER_SEGMENT + 17),
        frames_per_chunk=rng.randint(1, 4),
        wire_multiplier=rng.choice((1, 1, 1, 7)),
    )


def _random_vector(np_rng: np.random.Generator, n: int) -> np.ndarray:
    return np_rng.standard_normal(n).astype(np.float32)


#: Value payloads a fuzzer may legally attach to each Action.
_ACTION_VALUES = {
    Action.JOIN: lambda rng: {"model_bytes": rng.randint(4, 1 << 24)},
    Action.LEAVE: lambda rng: None,
    Action.RESET: lambda rng: None,
    Action.SETH: lambda rng: rng.randint(1, 64),
    Action.FBCAST: lambda rng: rng.randint(0, 1 << 32),
    Action.HELP: lambda rng: rng.randint(0, 1 << 32),
    Action.HALT: lambda rng: None,
    Action.ACK: lambda rng: rng.choice((True, False)),
}


class TestControlPacketRoundTrip:
    def test_fuzzer_covers_every_action(self):
        assert set(_ACTION_VALUES) == set(Action)
        assert len(Action) == 8

    def test_all_actions_round_trip(self):
        rng = random.Random(SEED)
        for trial in range(N_TRIALS):
            action = rng.choice(list(Action))
            message = ControlMessage(
                action=action,
                value=_ACTION_VALUES[action](rng),
                job=rng.randint(0, 15),
            )
            packet = make_control_packet("w0", "switch", message)
            # The receiver sees exactly what was sent: tag, ports, object.
            assert packet.tos == TOS_CONTROL, f"trial {trial}"
            assert packet.dst_port == ISWITCH_UDP_PORT
            assert packet.payload is message
            assert packet.payload.action == action
            assert packet.payload.job == message.job
            assert packet.payload_size == message.payload_size
            assert 1 <= packet.payload_size <= 1 + 16

    def test_value_always_grows_the_payload(self):
        rng = random.Random(SEED + 1)
        for action in Action:
            bare = ControlMessage(action=action).payload_size
            value = _ACTION_VALUES[action](rng)
            if value is None:
                continue
            assert ControlMessage(action=action, value=value).payload_size > bare


class TestDataPathRoundTrip:
    def test_split_packetize_assemble_round_trips(self):
        rng = random.Random(SEED + 2)
        np_rng = np.random.default_rng(SEED + 2)
        for trial in range(N_TRIALS):
            plan = _random_plan(rng)
            vector = _random_vector(np_rng, plan.n_elements)
            round_index = rng.randint(0, 999)
            segments = plan.split(
                vector, round_index, sender=f"w{trial}", commit_id=trial
            )
            packets = [
                make_data_packet(
                    f"w{trial}",
                    "switch",
                    segment,
                    plan,
                    downstream=rng.random() < 0.5,
                )
                for segment in segments
            ]
            for packet in packets:
                assert packet.tos in (TOS_DATA_UP, TOS_DATA_DOWN)
                assert packet.payload.wire_payload == packet.payload_size
                assert packet.payload.wire_frames == packet.frame_count
            # Wire accounting: payload bytes across the round cover the
            # whole vector plus one Seg header per real frame.
            assert sum(p.payload_size for p in packets) == (
                plan.wire_multiplier * plan.wire_bytes
            )
            received = [p.payload for p in packets]
            rng.shuffle(received)
            out = plan.assemble(received)
            np.testing.assert_array_equal(out, vector)

    def test_seg_numbers_are_globally_unique_across_rounds(self):
        rng = random.Random(SEED + 3)
        for _ in range(N_TRIALS):
            plan = _random_plan(rng)
            rounds = rng.sample(range(1000), 3)
            seen = set()
            for round_index in rounds:
                vector = np.zeros(plan.n_elements, dtype=np.float32)
                for segment in plan.split(vector, round_index):
                    assert segment.seg not in seen
                    seen.add(segment.seg)
                    assert plan.round_of_seg(segment.seg) == round_index


class TestMalformedFrameRejection:
    def _round(self, rng, np_rng):
        plan = SegmentPlan(
            n_elements=rng.randint(2 * FLOATS_PER_SEGMENT, 6 * FLOATS_PER_SEGMENT),
            frames_per_chunk=1,
        )
        vector = _random_vector(np_rng, plan.n_elements)
        return plan, plan.split(vector, rng.randint(0, 99))

    def test_truncated_round_rejected(self):
        rng = random.Random(SEED + 4)
        np_rng = np.random.default_rng(SEED + 4)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            del segments[rng.randrange(len(segments))]
            with pytest.raises(ValueError, match="expected"):
                plan.assemble(segments)

    def test_foreign_round_segment_rejected(self):
        rng = random.Random(SEED + 5)
        np_rng = np.random.default_rng(SEED + 5)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            victim = rng.randrange(len(segments))
            # Replace one frame with a same-shaped frame from a round far
            # beyond this one's Seg range.
            foreign = DataSegment(
                seg=segments[victim].seg + 100 * plan.n_chunks,
                data=segments[victim].data,
            )
            segments[victim] = foreign
            with pytest.raises(ValueError, match="not part of round"):
                plan.assemble(segments)

    def test_duplicated_frame_rejected(self):
        rng = random.Random(SEED + 6)
        np_rng = np.random.default_rng(SEED + 6)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            victim, source = rng.sample(range(len(segments)), 2)
            segments[victim] = segments[source]
            with pytest.raises(ValueError, match="duplicate|expected|part of"):
                plan.assemble(segments)

    def test_short_frame_payload_rejected(self):
        rng = random.Random(SEED + 7)
        np_rng = np.random.default_rng(SEED + 7)
        for _ in range(N_TRIALS):
            plan, segments = self._round(rng, np_rng)
            victim = rng.randrange(len(segments) - 1)  # not the short tail
            truncated = segments[victim]
            segments[victim] = DataSegment(
                seg=truncated.seg, data=truncated.data[:-1]
            )
            with pytest.raises(ValueError, match="elements"):
                plan.assemble(segments)

    def test_negative_seg_rejected_at_construction(self):
        with pytest.raises(ValueError, match=">= 0"):
            DataSegment(seg=-1, data=np.zeros(1, dtype=np.float32))

    def test_oversized_frame_payload_rejected(self):
        plan = SegmentPlan(n_elements=3 * FLOATS_PER_SEGMENT)
        vector = np.zeros(plan.n_elements, dtype=np.float32)
        segments = plan.split(vector, 0)
        segments[0] = DataSegment(
            seg=segments[0].seg,
            data=np.zeros(FLOATS_PER_SEGMENT + 1, dtype=np.float32),
        )
        with pytest.raises(ValueError, match="elements"):
            plan.assemble(segments)

    def test_seg_header_matches_figure5(self):
        assert SEG_HEADER_BYTES == 8

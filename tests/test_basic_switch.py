"""Unit tests for the regular store-and-forward Ethernet switch."""

import pytest

from repro.netsim.events import Simulator
from repro.netsim.link import GBPS, Link
from repro.netsim.node import Host
from repro.netsim.packets import Packet
from repro.netsim.switch import EthernetSwitch


def star(sim, n=3, latency=1e-6):
    switch = EthernetSwitch(sim, "sw", latency=latency)
    hosts = []
    for i in range(n):
        host = Host(sim, f"h{i}")
        link = Link(sim, bandwidth=10 * GBPS)
        link.attach(host, switch)
        switch.add_route(host.name, link.ends[1])
        hosts.append(host)
    return switch, hosts


class TestForwarding:
    def test_forwards_to_routed_destination(self):
        sim = Simulator()
        switch, hosts = star(sim)
        got = []
        hosts[1].bind(1, got.append)
        hosts[0].send(Packet(src="h0", dst="h1", payload_size=10, dst_port=1))
        sim.run()
        assert len(got) == 1
        assert switch.forwarded_packets == 1

    def test_switch_latency_applied(self):
        sim = Simulator()
        switch, hosts = star(sim, latency=5e-6)
        times = []
        hosts[1].bind(1, lambda p: times.append(sim.now))
        packet = Packet(src="h0", dst="h1", payload_size=100, dst_port=1)
        hosts[0].send(packet)
        sim.run()
        serialization = packet.wire_size * 8 / (10 * GBPS)
        expected = 2 * (serialization + 100e-9) + 5e-6
        assert times[0] == pytest.approx(expected)

    def test_unknown_destination_dropped(self):
        sim = Simulator()
        switch, hosts = star(sim)
        hosts[0].send(Packet(src="h0", dst="nowhere", payload_size=10))
        sim.run()
        assert switch.dropped_packets == 1
        assert switch.forwarded_packets == 0

    def test_default_route_catches_unknown(self):
        sim = Simulator()
        switch, hosts = star(sim)
        got = []
        hosts[2].bind(1, got.append)
        switch.set_default_route(switch.ports[2])
        hosts[0].send(Packet(src="h0", dst="elsewhere", payload_size=10, dst_port=1))
        sim.run()
        assert len(got) == 1

    def test_hairpin_dropped(self):
        sim = Simulator()
        switch, hosts = star(sim)
        # Route h9 back out the ingress port of h0.
        switch.add_route("h9", switch.ports[0])
        hosts[0].send(Packet(src="h0", dst="h9", payload_size=10))
        sim.run()
        assert switch.dropped_packets == 1

    def test_hop_count_increments(self):
        sim = Simulator()
        switch, hosts = star(sim)
        seen = []
        hosts[1].bind(1, seen.append)
        hosts[0].send(Packet(src="h0", dst="h1", payload_size=10, dst_port=1))
        sim.run()
        assert seen[0].hops == 2  # host->switch, switch->host


class TestConfiguration:
    def test_route_must_use_own_port(self):
        sim = Simulator()
        switch, _ = star(sim)
        other_switch, _ = star(sim)
        with pytest.raises(ValueError, match="not a port"):
            switch.add_route("x", other_switch.ports[0])

    def test_default_route_must_use_own_port(self):
        sim = Simulator()
        switch, _ = star(sim)
        other_switch, _ = star(sim)
        with pytest.raises(ValueError, match="not a port"):
            switch.set_default_route(other_switch.ports[0])

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            EthernetSwitch(Simulator(), "sw", latency=-1.0)

    def test_lookup_prefers_exact_route(self):
        sim = Simulator()
        switch, hosts = star(sim)
        switch.set_default_route(switch.ports[2])
        assert switch.lookup("h0") is switch.ports[0]
        assert switch.lookup("unknown") is switch.ports[2]

"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    entropy_from_logits,
    huber_loss,
    mse_loss,
    nll_from_logits,
)


class TestMSE:
    def test_value(self):
        loss = mse_loss(Tensor(np.array([1.0, 2.0])), Tensor(np.array([0.0, 0.0])))
        assert loss.item() == pytest.approx(2.5)

    def test_zero_at_match(self):
        x = Tensor(np.ones(4))
        assert mse_loss(x, Tensor(np.ones(4))).item() == 0.0

    def test_gradient(self):
        pred = Tensor(np.array([2.0]), requires_grad=True)
        mse_loss(pred, Tensor(np.array([0.0]))).backward()
        assert pred.grad[0] == pytest.approx(4.0)


class TestHuber:
    def test_quadratic_inside_delta(self):
        loss = huber_loss(Tensor(np.array([0.5])), Tensor(np.array([0.0])))
        assert loss.item() == pytest.approx(0.125)

    def test_linear_outside_delta(self):
        loss = huber_loss(Tensor(np.array([3.0])), Tensor(np.array([0.0])))
        assert loss.item() == pytest.approx(0.5 + 2.0)  # 0.5*1^2 + 1*(3-1)

    def test_gradient_clipped_outside_delta(self):
        pred = Tensor(np.array([10.0]), requires_grad=True)
        huber_loss(pred, Tensor(np.array([0.0]))).backward()
        assert pred.grad[0] == pytest.approx(1.0)  # clipped at delta

    def test_custom_delta(self):
        loss = huber_loss(
            Tensor(np.array([4.0])), Tensor(np.array([0.0])), delta=2.0
        )
        assert loss.item() == pytest.approx(0.5 * 4 + 2.0 * 2)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(Tensor(np.zeros(1)), Tensor(np.zeros(1)), delta=0.0)


class TestNLL:
    def test_matches_manual_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 3))
        actions = np.array([0, 2, 1, 1, 0])
        nll = nll_from_logits(Tensor(logits), actions).numpy()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(5), actions]
        np.testing.assert_allclose(nll, expected, rtol=1e-10)

    def test_uniform_logits(self):
        nll = nll_from_logits(Tensor(np.zeros((2, 4))), np.array([0, 3]))
        np.testing.assert_allclose(nll.numpy(), np.log(4.0))


class TestEntropy:
    def test_uniform_is_maximal(self):
        uniform = entropy_from_logits(Tensor(np.zeros((1, 4)))).item()
        peaked = entropy_from_logits(
            Tensor(np.array([[10.0, 0.0, 0.0, 0.0]]))
        ).item()
        assert uniform == pytest.approx(np.log(4.0))
        assert peaked < uniform

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        ent = entropy_from_logits(Tensor(rng.standard_normal((8, 5)))).item()
        assert ent >= 0.0

"""Unit tests for iteration breakdown accounting and the busy queue."""

import pytest

from repro.distributed.metrics import BusyQueue, IterationBreakdown, split_compute_time
from repro.netsim.events import Simulator
from repro.workloads.profiles import PROFILES


class TestSplitComputeTime:
    def test_fractions_applied(self):
        profile = PROFILES["dqn"]
        split = split_compute_time(profile, 1.0)
        assert split["backward_pass"] == pytest.approx(0.26)
        assert sum(split.values()) == pytest.approx(1.0)

    def test_profile_breakdowns_sum_to_one(self):
        for profile in PROFILES.values():
            assert sum(profile.compute_breakdown.values()) == pytest.approx(1.0)


class TestIterationBreakdown:
    def test_add_and_percentages(self):
        breakdown = IterationBreakdown()
        breakdown.add("grad_aggregation", 3.0)
        breakdown.add("forward_pass", 1.0)
        pct = breakdown.percentages()
        assert pct["grad_aggregation"] == pytest.approx(75.0)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            IterationBreakdown().add("coffee_break", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            IterationBreakdown().add("others", -1.0)

    def test_mean_per_iteration(self):
        breakdown = IterationBreakdown()
        breakdown.add("others", 4.0)
        breakdown.finish_iteration()
        breakdown.finish_iteration()
        assert breakdown.mean_per_iteration()["others"] == pytest.approx(2.0)

    def test_aggregation_share(self):
        breakdown = IterationBreakdown()
        breakdown.add("grad_aggregation", 1.0)
        breakdown.add("forward_pass", 1.0)
        assert breakdown.aggregation_share == pytest.approx(0.5)

    def test_empty_breakdown_safe(self):
        breakdown = IterationBreakdown()
        assert breakdown.aggregation_share == 0.0
        assert breakdown.percentages()["others"] == 0.0
        assert breakdown.mean_per_iteration()["others"] == 0.0


class TestBusyQueue:
    def test_sequential_occupancy(self):
        sim = Simulator()
        queue = BusyQueue(sim)
        finishes = []
        queue.submit(2.0, lambda: finishes.append(sim.now))
        queue.submit(3.0, lambda: finishes.append(sim.now))
        sim.run()
        assert finishes == [2.0, 5.0]

    def test_idle_gap_resets(self):
        sim = Simulator()
        queue = BusyQueue(sim)
        finishes = []
        queue.submit(1.0, lambda: finishes.append(sim.now))
        sim.schedule(10.0, lambda: queue.submit(1.0, lambda: finishes.append(sim.now)))
        sim.run()
        assert finishes == [1.0, 11.0]

    def test_busy_time_accumulates(self):
        sim = Simulator()
        queue = BusyQueue(sim)
        queue.submit(2.0)
        queue.submit(3.0)
        assert queue.busy_time == 5.0

    def test_backlog(self):
        sim = Simulator()
        queue = BusyQueue(sim)
        queue.submit(2.0)
        assert queue.backlog == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BusyQueue(Simulator()).submit(-1.0)

    def test_submit_returns_finish_time(self):
        sim = Simulator()
        queue = BusyQueue(sim)
        assert queue.submit(2.0) == 2.0
        assert queue.submit(1.0) == 3.0

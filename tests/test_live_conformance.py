"""Sim <-> live differential conformance (the live backend's ground truth).

The live backend (`repro.live`) runs sync-isw and sync-ps for real:
worker processes and a software-switch/PS process exchanging encoded
frames over loopback UDP.  These tests prove it computes *exactly* what
the simulator models: the same seeded gradients through either backend
must produce bit-identical per-round aggregated sums and bit-identical
final weights — including when injected datagram loss forces the
watchdog/Help retransmission path to reconstruct rounds.

Everything here is marked ``live`` (excluded from the tier-1 run, see
``pyproject.toml``); socket-based tests also skip when loopback UDP is
unavailable.  The in-process tests at the bottom exercise the protocol
logic of the switch/server/worker classes directly — they are the
coverage backbone for the ``repro.live`` package.
"""

import hashlib
import threading
import time

import numpy as np
import pytest

from repro.core.protocol import (
    Action,
    ControlMessage,
    DataSegment,
    JoinInfo,
    SegmentPlan,
    decode_frame,
    encode_control,
    encode_data,
)
from repro.distributed.config import ExperimentConfig
from repro.distributed.registry import strategy_specs
from repro.distributed.runner import make_algorithm, run
from repro.live.ps import PS_CHUNK_ELEMS, LivePsWorker, PsServer
from repro.live.runner import LIVE_STRATEGIES, LiveRunError, run_live
from repro.live.switch import SoftwareSwitch
from repro.live.transport import LOOPBACK, UdpEndpoint, loopback_available
from repro.live.worker import LiveWorker

pytestmark = pytest.mark.live

LOOPBACK_OK = loopback_available()
needs_loopback = pytest.mark.skipif(
    not LOOPBACK_OK, reason="loopback UDP unavailable in this environment"
)

SEED = 7
ITERATIONS = 3
WORKLOAD = "synth"


def live_config(strategy, n_workers, **overrides):
    return ExperimentConfig(
        strategy=strategy,
        workload=WORKLOAD,
        n_workers=n_workers,
        iterations=ITERATIONS,
        seed=SEED,
        backend="live",
        **overrides,
    )


def sim_config(strategy, n_workers, **overrides):
    # canonical (rank-order) aggregation is what the live switch always
    # does; the sim must opt in for isw so float32 sums match bit-exactly.
    return ExperimentConfig(
        strategy=strategy,
        workload=WORKLOAD,
        n_workers=n_workers,
        iterations=ITERATIONS,
        seed=SEED,
        deterministic_aggregation=(strategy == "isw"),
        **overrides,
    )


def sim_final_weights(result):
    return {
        rank: np.asarray(worker.algorithm.get_weights(), dtype=np.float64)
        for rank, worker in enumerate(result.workers)
    }


def reference_digests(strategy, n_workers):
    """Per-round aggregated-sum digests from a straight-line re-execution.

    An oracle independent of both backends: same algorithms, same seeds,
    summed whole-vector in rank order — float32 for the switch datapath,
    float64 for the PS.  Chunked summation is elementwise, so chunk
    geometry cannot change the result.
    """
    algorithms = [
        make_algorithm(WORKLOAD, seed=SEED + rank) for rank in range(n_workers)
    ]
    digests = []
    for _ in range(ITERATIONS):
        gradients = [
            np.asarray(a.compute_gradient(), dtype=np.float32)
            for a in algorithms
        ]
        if strategy == "isw":
            total = gradients[0].copy()
            for gradient in gradients[1:]:
                total += gradient
            update = total.astype(np.float64) / n_workers
        else:
            total = np.zeros(gradients[0].shape, dtype=np.float64)
            for gradient in gradients:
                total += gradient
            update = total / n_workers
        digests.append(hashlib.sha256(total.tobytes()).hexdigest()[:16])
        for algorithm in algorithms:
            algorithm.apply_update(update)
    return digests


@needs_loopback
class TestSimLiveConformance:
    @pytest.mark.parametrize("strategy", ["isw", "ps"])
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_final_weights_bit_identical(self, strategy, n_workers):
        live = run(live_config(strategy, n_workers))
        sim = run(sim_config(strategy, n_workers))

        assert live.extras["backend"] == "live"
        live_weights = live.extras["final_weights"]
        expected = sim_final_weights(sim)
        assert set(live_weights) == set(range(n_workers))
        for rank in range(n_workers):
            assert live_weights[rank].dtype == np.float64
            assert np.array_equal(live_weights[rank], expected[rank]), (
                f"rank {rank}: live and sim weights diverge"
            )
        # The synchronous invariant: every rank holds the same model.
        for rank in range(1, n_workers):
            assert np.array_equal(live_weights[rank], live_weights[0])

    @pytest.mark.parametrize("strategy", ["isw", "ps"])
    def test_aggregated_sums_bit_identical(self, strategy):
        """The per-round sums themselves (not just their consequences)."""
        live = run(live_config(strategy, 4))
        assert live.extras["round_digests"] == reference_digests(strategy, 4)

    def test_loss_recovery_stays_bit_identical(self):
        """Injected datagram loss, recovered via Help retransmission,
        must not change a single bit of the result."""
        live = run(live_config("isw", 4, loss_rate=0.05))
        stats = live.extras["server_stats"]
        assert stats["drops_injected"] > 0, "loss injection never fired"
        helps = sum(
            counters["help_sent"]
            for counters in live.extras["worker_counters"].values()
        )
        assert helps > 0, "loss was injected but no Help was ever sent"
        # Dedup absorbed the retransmission storm...
        assert stats["engine_duplicates_dropped"] > 0
        # ...and the lossy run equals the lossless simulator bit-for-bit.
        expected = sim_final_weights(run(sim_config("isw", 4)))
        for rank, weights in live.extras["final_weights"].items():
            assert np.array_equal(weights, expected[rank])
        assert live.extras["round_digests"] == reference_digests("isw", 4)


def codec_reference_digests(codec_name, n_workers):
    """Straight-line oracle for compressed rounds, independent of both
    backends: quantize each contribution onto the codec grid, sum in rank
    order (fp32), apply the downstream rounding (``finalize_sum``)."""
    from repro.core.compression import get_codec

    codec = get_codec(codec_name)
    algorithms = [
        make_algorithm(WORKLOAD, seed=SEED + rank) for rank in range(n_workers)
    ]
    digests = []
    for _ in range(ITERATIONS):
        contributions = [
            codec.roundtrip(
                np.asarray(a.compute_gradient(), dtype=np.float32)
            )
            for a in algorithms
        ]
        total = contributions[0].copy()
        for contribution in contributions[1:]:
            total += contribution
        total = codec.finalize_sum(total)
        digests.append(hashlib.sha256(total.tobytes()).hexdigest()[:16])
        update = total.astype(np.float64) / n_workers
        for algorithm in algorithms:
            algorithm.apply_update(update)
    return digests


@needs_loopback
class TestCodecConformance:
    """Compressed frames over real UDP equal the simulator bit-for-bit."""

    @pytest.mark.parametrize("codec", ["fp16", "int32-bs", "topk"])
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_final_weights_bit_identical(self, codec, n_workers):
        live = run(live_config("isw", n_workers, codec=codec))
        sim = run(sim_config("isw", n_workers, codec=codec))

        live_weights = live.extras["final_weights"]
        expected = sim_final_weights(sim)
        for rank in range(n_workers):
            assert np.array_equal(live_weights[rank], expected[rank]), (
                f"{codec}, rank {rank}: live and sim weights diverge"
            )
        for rank in range(1, n_workers):
            assert np.array_equal(live_weights[rank], live_weights[0])
        # Every frame that reached the switch carried the right tag.
        assert live.extras["server_stats"].get("wrong_codec", 0) == 0

    @pytest.mark.parametrize("codec", ["fp16", "int32-bs", "topk"])
    def test_aggregated_sums_match_oracle(self, codec):
        live = run(live_config("isw", 4, codec=codec))
        assert live.extras["round_digests"] == codec_reference_digests(
            codec, 4
        )

    def test_codec_loss_recovery_stays_bit_identical(self):
        """Help-path retransmission of compressed frames is idempotent."""
        live = run(live_config("isw", 4, codec="int32-bs", loss_rate=0.05))
        assert live.extras["server_stats"]["drops_injected"] > 0
        assert live.extras["round_digests"] == codec_reference_digests(
            "int32-bs", 4
        )


@needs_loopback
class TestLiveRunPlumbing:
    def test_telemetry_and_result_shape(self):
        result = run(live_config("isw", 2, telemetry=True))
        assert result.n_workers == 2
        assert result.iterations == ITERATIONS
        assert result.elapsed > 0
        assert result.extras["wall_elapsed"] >= result.elapsed
        stats = result.extras["server_stats"]
        # 2 workers x 3 rounds x ceil(23424/366) chunks, plus control.
        assert stats["engine_completions"] == ITERATIONS * 64
        assert stats["frames_rx"] > stats["data_rx"] > 0
        snapshot = result.telemetry
        assert snapshot is not None
        assert snapshot.meta["backend"] == "live"

    def test_cli_live_run(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--backend",
                "live",
                "--strategy",
                "sync-ps",
                "-n",
                "2",
                "--workload",
                WORKLOAD,
                "--iterations",
                "2",
                "--seed",
                str(SEED),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "live (loopback UDP)" in out
        assert "switch frames:" in out


class TestLiveRunValidation:
    def test_registry_flags_match_runner_support(self):
        flagged = {
            (spec.mode, spec.name)
            for spec in strategy_specs()
            if spec.supports_live
        }
        assert flagged == set(LIVE_STRATEGIES)

    def test_unsupported_strategy_rejected(self):
        with pytest.raises(LiveRunError, match="no live backend"):
            run_live(live_config("ar", 2))

    def test_async_rejected(self):
        config = live_config("isw", 2)
        config.mode = "async"
        with pytest.raises(LiveRunError, match="no live backend"):
            run_live(config)

    def test_fault_plan_rejected(self):
        config = live_config("isw", 2)
        config.fault_plan = object()
        with pytest.raises(LiveRunError, match="simulator-only"):
            run_live(config)

    def test_loss_rate_on_ps_rejected(self):
        with pytest.raises(ValueError, match="loss recovery"):
            run_live(live_config("ps", 2, loss_rate=0.01))


# ---------------------------------------------------------------------------
# In-process protocol-logic tests (no child processes; coverage backbone)
# ---------------------------------------------------------------------------
class TinyAlgorithm:
    """A deterministic stand-in small enough for single-frame rounds."""

    def __init__(self, n_elements=5, seed=0):
        self._rng = np.random.default_rng(seed)
        self._weights = np.zeros(n_elements, dtype=np.float64)

    def get_weights(self):
        return self._weights

    def compute_gradient(self):
        return self._rng.standard_normal(self._weights.size).astype(
            np.float32
        )

    def apply_update(self, update):
        self._weights = self._weights - update

    def final_average_reward(self):
        return 0.0


def segment_frames(rank, round_index, vector):
    plan = SegmentPlan(vector.size)
    return [
        encode_data(s)
        for s in plan.split(vector, round_index, sender=f"worker{rank}")
    ]


class TestSoftwareSwitchLogic:
    def addr(self, rank):
        return (LOOPBACK, 40000 + rank)

    def join_all(self, switch, n):
        outs = []
        for rank in range(n):
            frame = encode_control(
                ControlMessage(
                    Action.JOIN, JoinInfo(rank=rank, n_elements=5, n_chunks=1)
                )
            )
            outs.append(switch.handle_frame(frame, self.addr(rank)))
        return outs

    def test_join_ack_and_seth_barrier(self):
        switch = SoftwareSwitch(n_workers=2)
        first, second = self.join_all(switch, 2)
        # First join: ACK only — membership incomplete, no go signal yet.
        assert [decode_frame(f)[1].action for f, _ in first] == [Action.ACK]
        # Second join: ACK plus a SetH broadcast to *both* members.
        actions = [decode_frame(f)[1] for f, _ in second]
        assert actions[0].action == Action.ACK
        assert [m.action for m in actions[1:]] == [Action.SETH] * 2
        assert all(m.value == 2 for m in actions[1:])
        # A late duplicate join is re-acked and re-sent the go signal 1:1.
        retry = switch.handle_frame(
            encode_control(ControlMessage(Action.JOIN, JoinInfo(rank=0))),
            self.addr(0),
        )
        assert [decode_frame(f)[1].action for f, _ in retry] == [
            Action.ACK,
            Action.SETH,
        ]
        assert switch.counters["joins"] == 2  # the retry is not a new member

    def test_aggregation_and_broadcast(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        vectors = [
            np.arange(5, dtype=np.float32),
            np.full(5, 0.5, dtype=np.float32),
        ]
        assert switch.handle_frame(
            segment_frames(0, 0, vectors[0])[0], self.addr(0)
        ) == []
        out = switch.handle_frame(
            segment_frames(1, 0, vectors[1])[0], self.addr(1)
        )
        # Completion: the float32 rank-order sum broadcast to both members.
        assert [a for _, a in out] == [self.addr(0), self.addr(1)]
        _, result = decode_frame(out[0][0])
        np.testing.assert_array_equal(result.data, vectors[0] + vectors[1])
        assert switch.counters["results_broadcast"] == 1

    def test_non_member_and_garbage_frames_ignored(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        stranger = ("10.0.0.9", 1)
        frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        assert switch.handle_frame(frame, stranger) == []
        assert switch.counters["data_rx"] == 0
        assert switch.handle_frame(b"\xde\xad\xbe\xef", self.addr(0)) == []
        assert switch.counters["decode_errors"] == 1
        # Downstream frames at the switch ingress are not aggregated.
        down = encode_data(
            DataSegment(seg=0, data=np.ones(5, dtype=np.float32)),
            downstream=True,
        )
        assert switch.handle_frame(down, self.addr(0)) == []

    def test_help_cache_hit_and_relay(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        vector = np.ones(5, dtype=np.float32)
        switch.handle_frame(segment_frames(0, 0, vector)[0], self.addr(0))
        # Seg 0 incomplete: Help from worker1 is relayed to worker0 only.
        help_frame = encode_control(ControlMessage(Action.HELP, value=0))
        relayed = switch.handle_frame(help_frame, self.addr(1))
        assert [a for _, a in relayed] == [self.addr(0)]
        assert decode_frame(relayed[0][0])[1].action == Action.HELP
        assert switch.counters["help_relayed"] == 1
        # Complete it; now a Help is served from the result cache 1:1.
        switch.handle_frame(segment_frames(1, 0, vector)[0], self.addr(1))
        served = switch.handle_frame(help_frame, self.addr(1))
        assert [a for _, a in served] == [self.addr(1)]
        _, cached = decode_frame(served[0][0])
        np.testing.assert_array_equal(cached.data, 2 * vector)
        assert switch.counters["help_cache_hits"] == 1

    def test_dedup_makes_retransmission_idempotent(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        switch.handle_frame(frame, self.addr(0))
        switch.handle_frame(frame, self.addr(0))  # retransmission
        assert switch.stats_snapshot()["engine_duplicates_dropped"] == 1
        out = switch.handle_frame(
            segment_frames(1, 0, np.ones(5, dtype=np.float32))[0],
            self.addr(1),
        )
        _, result = decode_frame(out[0][0])
        np.testing.assert_array_equal(
            result.data, np.full(5, 2.0, dtype=np.float32)
        )

    def test_loss_injection_drops_before_the_engine(self):
        # random.Random(0).random() == 0.844..., below a 0.9 loss rate.
        switch = SoftwareSwitch(n_workers=1, loss_rate=0.9, loss_seed=0)
        self.join_all(switch, 1)
        frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        assert switch.handle_frame(frame, self.addr(0)) == []
        assert switch.counters["drops_injected"] == 1
        assert switch.counters["data_rx"] == 0

    def test_reset_fbcast_and_leave(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        vector = np.ones(5, dtype=np.float32)
        switch.handle_frame(segment_frames(0, 0, vector)[0], self.addr(0))
        # FBcast flushes the partial aggregate to both members.
        out = switch.handle_frame(
            encode_control(ControlMessage(Action.FBCAST, value=0)),
            self.addr(0),
        )
        assert len(out) == 2
        np.testing.assert_array_equal(decode_frame(out[0][0])[1].data, vector)
        # FBcast of an unknown seg is a no-op.
        assert (
            switch.handle_frame(
                encode_control(ControlMessage(Action.FBCAST, value=99)),
                self.addr(0),
            )
            == []
        )
        switch.handle_frame(
            encode_control(ControlMessage(Action.RESET)), self.addr(0)
        )
        assert switch.engine.live_segments == 0
        assert not switch.done
        for rank in range(2):
            switch.handle_frame(
                encode_control(ControlMessage(Action.LEAVE)), self.addr(rank)
            )
        assert switch.done
        assert switch.counters["leaves"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            SoftwareSwitch(n_workers=0)
        with pytest.raises(ValueError, match="loss_rate"):
            SoftwareSwitch(n_workers=1, loss_rate=1.0)

    def test_simulator_only_codec_rejected(self):
        from repro.core.compression import get_codec

        with pytest.raises(ValueError, match="wire format"):
            SoftwareSwitch(n_workers=1, codec=get_codec("int8"))
        with pytest.raises(ValueError, match="wire format"):
            LiveWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=None,
                switch_addr=self.addr(0),
                codec=get_codec("int8"),
            )

    def test_codec_switch_drops_mismatched_tags(self):
        from repro.core.compression import get_codec

        codec = get_codec("fp16")
        switch = SoftwareSwitch(n_workers=2, codec=codec)
        self.join_all(switch, 2)
        # Untagged fp32 upstream frames are the wrong numerics: dropped.
        fp32_frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        assert switch.handle_frame(fp32_frame, self.addr(0)) == []
        assert switch.counters["wrong_codec"] == 1
        assert switch.counters["data_rx"] == 0

    def test_codec_switch_aggregates_and_broadcasts_on_grid(self):
        from repro.core.compression import get_codec
        from repro.core.protocol import TOS_DATA_DOWN, TOS_NUMERICS_MASK

        codec = get_codec("fp16")
        switch = SoftwareSwitch(n_workers=2, codec=codec)
        self.join_all(switch, 2)
        plan = SegmentPlan(
            5,
            bytes_per_element=codec.bytes_per_element,
            frame_overhead=codec.frame_overhead,
        )
        vectors = [
            np.full(5, 1.0, dtype=np.float32),
            np.full(5, 2.0 ** -11, dtype=np.float32),  # off-grid sum
        ]
        for rank, vector in enumerate(vectors):
            frames = [
                encode_data(s, codec=codec)
                for s in plan.split(vector, 0, sender=f"worker{rank}")
            ]
            out = switch.handle_frame(frames[0], self.addr(rank))
        # Completion: broadcast frames carry the codec's tag and values
        # rounded onto the fp16 grid (1.0 + 2**-11 is not representable).
        assert len(out) == 2
        tos, result = decode_frame(out[0][0])
        assert (tos & ~TOS_NUMERICS_MASK) == TOS_DATA_DOWN
        assert tos & TOS_NUMERICS_MASK == codec.wire_tag
        expected = codec.finalize_sum(vectors[0] + vectors[1])
        np.testing.assert_array_equal(result.data, expected)
        np.testing.assert_array_equal(
            result.data, np.full(5, 1.0, dtype=np.float32)
        )


class TestPsServerLogic:
    def addr(self, rank):
        return (LOOPBACK, 41000 + rank)

    def up(self, rank, round_index, chunk, vector):
        import struct

        return (
            b"U"
            + struct.pack("<BII", rank, round_index, chunk)
            + vector.astype("<f4").tobytes()
        )

    def join_all(self, server, n):
        for rank in range(n):
            server.handle_frame(b"J" + bytes([rank]), self.addr(rank))

    def test_join_and_go_barrier(self):
        server = PsServer(n_workers=2)
        first = server.handle_frame(b"J\x00", self.addr(0))
        assert [f for f, _ in first] == [b"A"]
        second = server.handle_frame(b"J\x01", self.addr(1))
        assert [f for f, _ in second] == [b"A", b"G", b"G"]
        late = server.handle_frame(b"J\x00", self.addr(0))
        assert [f for f, _ in late] == [b"A", b"G"]

    def test_rank_order_float64_sum_and_dedup(self):
        server = PsServer(n_workers=2)
        self.join_all(server, 2)
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = np.array([0.5, -1.5], dtype=np.float32)
        assert server.handle_frame(self.up(1, 0, 0, b), self.addr(1)) == []
        assert server.handle_frame(self.up(1, 0, 0, b), self.addr(1)) == []
        assert server.counters["duplicates_dropped"] == 1
        out = server.handle_frame(self.up(0, 0, 0, a), self.addr(0))
        assert [addr for _, addr in out] == [self.addr(0), self.addr(1)]
        down = out[0][0]
        assert down[:1] == b"D"
        total = np.frombuffer(down, dtype="<f8", offset=9)
        np.testing.assert_array_equal(
            total, (a.astype(np.float64) + b.astype(np.float64))
        )
        # A retransmission racing completion is dropped, not re-summed.
        assert server.handle_frame(self.up(0, 0, 0, a), self.addr(0)) == []
        assert server.counters["duplicates_dropped"] == 2

    def test_resend_served_from_cache(self):
        import struct

        server = PsServer(n_workers=1)
        self.join_all(server, 1)
        vector = np.ones(3, dtype=np.float32)
        out = server.handle_frame(self.up(0, 0, 0, vector), self.addr(0))
        resend = server.handle_frame(
            b"H" + struct.pack("<BII", 0, 0, 0), self.addr(0)
        )
        assert resend == [(out[0][0], self.addr(0))]
        assert server.counters["resends_served"] == 1
        # Unknown (round, chunk): nothing to serve yet.
        assert (
            server.handle_frame(
                b"H" + struct.pack("<BII", 0, 5, 0), self.addr(0)
            )
            == []
        )

    def test_result_cache_pruned_below_round_window(self):
        server = PsServer(n_workers=1)
        self.join_all(server, 1)
        vector = np.ones(1, dtype=np.float32)
        for round_index in range(5):
            server.handle_frame(
                self.up(0, round_index, 0, vector), self.addr(0)
            )
        assert sorted(r for r, _ in server._results) == [2, 3, 4]

    def test_malformed_frames_counted_not_fatal(self):
        server = PsServer(n_workers=1)
        assert server.handle_frame(b"", self.addr(0)) == []
        assert server.handle_frame(b"U\x00", self.addr(0)) == []
        assert server.handle_frame(b"Z???", self.addr(0)) == []
        assert server.counters["decode_errors"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            PsServer(n_workers=0)


@needs_loopback
class TestTransport:
    def test_send_recv_round_trip(self):
        with UdpEndpoint() as a, UdpEndpoint() as b:
            a.send(b"hello", b.address)
            got = b.recv(timeout=2.0)
            assert got is not None
            frame, addr = got
            assert frame == b"hello"
            assert addr[0] == LOOPBACK

    def test_recv_timeout_returns_none(self):
        with UdpEndpoint() as endpoint:
            assert endpoint.recv(timeout=0.05) is None

    def test_loopback_probe(self):
        assert loopback_available() is True


@needs_loopback
class TestInProcessEndToEnd:
    """Worker/server loops in threads: the full protocol without forks."""

    def run_switch_session(self, n_workers, iterations, loss_rate=0.0):
        switch_endpoint = UdpEndpoint()
        switch = SoftwareSwitch(
            n_workers=n_workers,
            endpoint=switch_endpoint,
            loss_rate=loss_rate,
            loss_seed=3,
        )
        server_thread = threading.Thread(
            target=switch.serve,
            kwargs={"deadline": time.monotonic() + 60.0, "poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        workers = [
            LiveWorker(
                rank=rank,
                n_workers=n_workers,
                algorithm=TinyAlgorithm(n_elements=5, seed=rank),
                endpoint=UdpEndpoint(),
                switch_addr=switch_endpoint.address,
                recovery_timeout=0.05,
                max_recovery_attempts=20,
            )
            for rank in range(n_workers)
        ]
        threads = [
            threading.Thread(
                target=lambda w=w: (w.join(), w.train(iterations)),
                daemon=True,
            )
            for w in workers
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive(), "worker thread hung"
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "switch never drained"
        finally:
            switch_endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        return switch, workers

    def expected_digests(self, n_workers, iterations):
        algorithms = [TinyAlgorithm(5, seed=r) for r in range(n_workers)]
        digests = []
        for _ in range(iterations):
            total = np.zeros(5, dtype=np.float32)
            for algorithm in algorithms:
                total += algorithm.compute_gradient()
            digests.append(hashlib.sha256(total.tobytes()).hexdigest()[:16])
            for algorithm in algorithms:
                algorithm.apply_update(total.astype(np.float64) / n_workers)
        return digests

    def test_two_worker_session_matches_reference(self):
        switch, workers = self.run_switch_session(n_workers=2, iterations=3)
        expected = self.expected_digests(2, 3)
        for worker in workers:
            assert worker.round_digests == expected
        assert switch.done
        assert switch.stats_snapshot()["engine_completions"] == 3
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[1].algorithm.get_weights(),
        )

    def test_lossy_session_recovers_and_matches_reference(self):
        switch, workers = self.run_switch_session(
            n_workers=2, iterations=3, loss_rate=0.3
        )
        assert switch.counters["drops_injected"] > 0
        recoveries = sum(w.counters["help_sent"] for w in workers)
        assert recoveries > 0
        for worker in workers:
            assert worker.round_digests == self.expected_digests(2, 3)

    def test_ps_session_matches_rank_order_reference(self):
        server_endpoint = UdpEndpoint()
        server = PsServer(n_workers=2, endpoint=server_endpoint)
        server_thread = threading.Thread(
            target=server.serve,
            kwargs={"deadline": time.monotonic() + 60.0, "poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        workers = [
            LivePsWorker(
                rank=rank,
                n_workers=2,
                algorithm=TinyAlgorithm(n_elements=PS_CHUNK_ELEMS + 3, seed=rank),
                endpoint=UdpEndpoint(),
                server_addr=server_endpoint.address,
                recovery_timeout=0.05,
            )
            for rank in range(2)
        ]
        threads = [
            threading.Thread(
                target=lambda w=w: (w.join(), w.train(2)), daemon=True
            )
            for w in workers
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
                assert not thread.is_alive(), "ps worker thread hung"
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "ps server never drained"
        finally:
            server_endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        assert workers[0].round_digests == workers[1].round_digests
        assert server.counters["chunks_summed"] == 2 * 2  # 2 chunks x 2 rounds
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[1].algorithm.get_weights(),
        )

    def test_worker_requires_join_before_train(self):
        worker = LiveWorker(
            rank=0,
            n_workers=1,
            algorithm=TinyAlgorithm(),
            endpoint=None,
            switch_addr=(LOOPBACK, 1),
        )
        with pytest.raises(RuntimeError, match="join"):
            worker.train(1)

    def test_worker_rejects_bad_recovery_timeout(self):
        with pytest.raises(ValueError, match="recovery_timeout"):
            LiveWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=None,
                switch_addr=(LOOPBACK, 1),
                recovery_timeout=0.0,
            )

    def test_worker_gives_up_after_max_attempts(self):
        """A dead switch: the watchdog must abandon the round, not hang."""
        with UdpEndpoint() as endpoint, UdpEndpoint() as blackhole:
            worker = LiveWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=endpoint,
                switch_addr=blackhole.address,  # bound but never served
                recovery_timeout=0.01,
                max_recovery_attempts=2,
            )
            worker.threshold = 1  # pretend the join happened
            with pytest.raises(RuntimeError, match="abandoned"):
                worker.train(1)
            assert worker.counters["watchdog_timeouts"] >= 2

"""Sim <-> live differential conformance (the live backend's ground truth).

The live backend (`repro.live`) runs the *full* strategy registry for
real: worker processes plus the strategy's server processes (a software
switch, a PS, K PS shards, a ToR->AGG switch tree — or none at all for
the peer-to-peer collectives) exchanging encoded frames over loopback
UDP.  These tests prove it computes *exactly* what the simulator models:
the same seeded gradients through either backend must produce
bit-identical per-round aggregated sums and bit-identical final weights
— per strategy, per fleet size, and including runs where injected
datagram loss forces each strategy's recovery path to reconstruct
rounds.  The async strategies additionally assert their *measured*
staleness against the configured bound.

Everything here is marked ``live`` (excluded from the tier-1 run, see
``pyproject.toml``); socket-based tests also skip when loopback UDP is
unavailable.  The in-process tests at the bottom exercise the protocol
logic of the switch/server/worker classes directly — they are the
coverage backbone for the ``repro.live`` package.
"""

import hashlib
import multiprocessing
import os
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.protocol import (
    Action,
    ControlMessage,
    DataSegment,
    JoinInfo,
    SegmentPlan,
    decode_frame,
    encode_control,
    encode_data,
)
from repro.distributed.config import ExperimentConfig
from repro.distributed.registry import strategy_specs
from repro.distributed.runner import make_algorithm, run
from repro.live.async_isw import LiveAsyncWorker
from repro.live.async_ps import LiveAsyncPsServer, LiveAsyncPsWorker
from repro.live.collective import LiveHdWorker, LiveRingWorker
from repro.live.ps import PS_CHUNK_ELEMS, LivePsWorker, PsServer
from repro.live.runner import (
    LIVE_STRATEGIES,
    TREE_RACK_WIDTH,
    LiveRunError,
    _validate,
    run_live,
)
from repro.live.shard import LiveShardWorker, shard_ranges
from repro.live.switch import SoftwareSwitch
from repro.live.transport import (
    LOOPBACK,
    PeerTable,
    UdpEndpoint,
    loopback_available,
)
from repro.live.worker import LiveWorker

pytestmark = pytest.mark.live

LOOPBACK_OK = loopback_available()
needs_loopback = pytest.mark.skipif(
    not LOOPBACK_OK, reason="loopback UDP unavailable in this environment"
)

SEED = 7
ITERATIONS = 3
WORKLOAD = "synth"
LOSS = 0.05
#: Watchdog timeout for lossy conformance runs.  5 % per-frame loss makes
#: most rounds stall at least once; a short timeout keeps recovery fast
#: without changing a bit of the result.
LOSSY_RECOVERY_TIMEOUT = 0.04

#: Every live-capable (mode, strategy) pair — the full registry.
ALL_LIVE = list(LIVE_STRATEGIES)
PAIR_IDS = [f"{mode}-{strategy}" for mode, strategy in ALL_LIVE]


def live_config(strategy, n_workers, mode="sync", **overrides):
    return ExperimentConfig(
        strategy=strategy,
        workload=WORKLOAD,
        mode=mode,
        n_workers=n_workers,
        iterations=ITERATIONS,
        seed=SEED,
        backend="live",
        **overrides,
    )


def sim_config(strategy, n_workers, mode="sync", **overrides):
    # Canonical (rank-order) aggregation is what the live switch always
    # does, and paced scheduling is what the live async workers replay;
    # the sim opts in so float32 sums and async apply orders match
    # bit-exactly.  The float64 PS-family sums are order-independent.
    return ExperimentConfig(
        strategy=strategy,
        workload=WORKLOAD,
        mode=mode,
        n_workers=n_workers,
        iterations=ITERATIONS,
        seed=SEED,
        deterministic_aggregation=(strategy == "isw" or mode == "async"),
        **overrides,
    )


#: Clean (no-override) runs are pure functions of (backend, mode,
#: strategy, N) here, so tests share them instead of re-spawning fleets.
_RUN_CACHE = {}


def live_run(mode, strategy, n_workers):
    key = ("live", mode, strategy, n_workers)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run(live_config(strategy, n_workers, mode=mode))
    return _RUN_CACHE[key]


def sim_run(mode, strategy, n_workers):
    key = ("sim", mode, strategy, n_workers)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = run(sim_config(strategy, n_workers, mode=mode))
    return _RUN_CACHE[key]


def sim_final_weights(result):
    return {
        rank: np.asarray(worker.algorithm.get_weights(), dtype=np.float64)
        for rank, worker in enumerate(result.workers)
    }


def _digest(array):
    return hashlib.sha256(array.tobytes()).hexdigest()[:16]


def _fleet(n_workers):
    return [
        make_algorithm(WORKLOAD, seed=SEED + rank) for rank in range(n_workers)
    ]


def reference_digests(strategy, n_workers):
    """Per-round aggregated-sum digests from a straight-line re-execution.

    An oracle independent of both backends: same algorithms, same seeds,
    summed whole-vector in rank order — float32 for the switch datapath
    (``isw``, sync or async: the synth gradient stream is weight-
    independent, so pacing cannot change any sum), float64 for the whole
    PS/collective family (``ps``, ``ar``, ``ar-hd``, ``ps-shard`` — f64
    sums of these gradients are exact, hence order-independent, hence
    one shared digest stream).  Chunked summation is elementwise, so
    chunk geometry cannot change the result.
    """
    algorithms = _fleet(n_workers)
    digests = []
    for _ in range(ITERATIONS):
        gradients = [
            np.asarray(a.compute_gradient(), dtype=np.float32)
            for a in algorithms
        ]
        if strategy == "isw":
            total = gradients[0].copy()
            for gradient in gradients[1:]:
                total += gradient
            update = total.astype(np.float64) / n_workers
        else:
            total = np.zeros(gradients[0].shape, dtype=np.float64)
            for gradient in gradients:
                total += gradient
            update = total / n_workers
        digests.append(_digest(total))
        for algorithm in algorithms:
            algorithm.apply_update(update)
    return digests


def tree_reference_digests(n_workers):
    """Straight-line oracle for the hierarchical switch tree: float32
    partial sums per rack (rank order), partials summed at the
    aggregation switch in ToR order — the tree's actual float32
    association, which differs from the flat left-to-right one."""
    algorithms = _fleet(n_workers)
    digests = []
    for _ in range(ITERATIONS):
        gradients = [
            np.asarray(a.compute_gradient(), dtype=np.float32)
            for a in algorithms
        ]
        partials = []
        for start in range(0, n_workers, TREE_RACK_WIDTH):
            partial = gradients[start].copy()
            for gradient in gradients[start + 1 : start + TREE_RACK_WIDTH]:
                partial += gradient
            partials.append(partial)
        total = partials[0].copy()
        for partial in partials[1:]:
            total += partial
        digests.append(_digest(total))
        update = total.astype(np.float64) / n_workers
        for algorithm in algorithms:
            algorithm.apply_update(update)
    return digests


def async_ps_reference(n_workers):
    """Straight-line oracle for async-PS: a server replica applies pushes
    in rank-cyclic order; worker ``w`` pulls (and digests) the replica
    weights right after apply number ``k*N + w``.  Returns the per-rank
    digest streams and per-rank final weights."""
    replica = make_algorithm(WORKLOAD, seed=SEED + 10_000)
    workers = _fleet(n_workers)
    digests = {rank: [] for rank in range(n_workers)}
    finals = {}
    for _ in range(ITERATIONS):
        gradients = [
            np.asarray(w.compute_gradient(), dtype=np.float32)
            for w in workers
        ]
        for rank in range(n_workers):
            replica.apply_update(gradients[rank].astype(np.float64))
            weights = np.ascontiguousarray(
                replica.get_weights(), dtype=np.float64
            ).copy()
            digests[rank].append(_digest(weights))
            workers[rank].set_weights(weights)
            finals[rank] = weights
    return digests, finals


def oracle_digests(mode, strategy, n_workers):
    assert (mode, strategy) != ("async", "ps")  # per-rank: use async_ps_reference
    return reference_digests(strategy, n_workers)


def total_drops(result):
    stats = result.server_stats
    if stats is not None:
        return stats.get("drops_injected", 0)
    return sum(
        counters.get("drops_injected", 0)
        for counters in result.worker_counters.values()
    )


def total_recoveries(result):
    return sum(
        counters.get("help_sent", 0)
        + counters.get("retransmissions", 0)
        + counters.get("resend_requests_sent", 0)
        for counters in result.worker_counters.values()
    )


@needs_loopback
class TestSimLiveConformance:
    """The full matrix: every live strategy, N=2 and N=4, bit for bit."""

    @pytest.mark.parametrize("n_workers", [2, 4])
    @pytest.mark.parametrize(("mode", "strategy"), ALL_LIVE, ids=PAIR_IDS)
    def test_final_weights_bit_identical(self, mode, strategy, n_workers):
        live = live_run(mode, strategy, n_workers)
        sim = sim_run(mode, strategy, n_workers)

        assert live.backend == "live"
        live_weights = live.final_weights
        expected = sim_final_weights(sim)
        assert set(live_weights) == set(range(n_workers))
        for rank in range(n_workers):
            assert live_weights[rank].dtype == np.float64
            assert np.array_equal(live_weights[rank], expected[rank]), (
                f"{mode}-{strategy} rank {rank}: live and sim weights diverge"
            )
        if (mode, strategy) != ("async", "ps"):
            # The synchronized invariant: every rank holds the same model.
            # (async-ps ranks pull different replica versions by design.)
            for rank in range(1, n_workers):
                assert np.array_equal(live_weights[rank], live_weights[0])

    @pytest.mark.parametrize(("mode", "strategy"), ALL_LIVE, ids=PAIR_IDS)
    def test_aggregated_sums_match_oracle(self, mode, strategy):
        """The per-round sums themselves (not just their consequences),
        against a re-execution oracle independent of both backends."""
        live = live_run(mode, strategy, 4)
        if (mode, strategy) == ("async", "ps"):
            digests, _ = async_ps_reference(4)
            assert live.worker_digests == digests
        else:
            assert live.round_digests == oracle_digests(
                mode, strategy, 4
            )

    @pytest.mark.parametrize("strategy", ["isw", "ps"], ids=["isw", "ps"])
    def test_async_digests_match_paced_simulator(self, strategy):
        """The async sim records digests too (paced mode): compare the
        two backends' streams directly, not only through the oracle."""
        live = live_run("async", strategy, 4)
        sim = sim_run("async", strategy, 4)
        if strategy == "ps":
            assert live.worker_digests == sim.worker_digests
        else:
            assert live.round_digests == sim.round_digests

    def test_ps_family_shares_one_digest_stream(self):
        """f64 sums are exact, so four different exchange topologies
        (star PS, ring, halving/doubling, K shards) must land on the
        same bits — live, for real, over four different wire protocols."""
        streams = {
            strategy: live_run("sync", strategy, 4).round_digests
            for strategy in ("ps", "ar", "ar-hd", "ps-shard")
        }
        reference = reference_digests("ps", 4)
        for strategy, stream in streams.items():
            assert stream == reference, f"{strategy} diverged from the family"


@needs_loopback
class TestLossRecovery:
    """5 % injected datagram loss per strategy: recovery must reconstruct
    the exact same bits as a clean run."""

    @pytest.mark.parametrize(("mode", "strategy"), ALL_LIVE, ids=PAIR_IDS)
    def test_lossy_run_stays_bit_identical(self, mode, strategy):
        n_workers = 4
        lossy = run(
            live_config(
                strategy,
                n_workers,
                mode=mode,
                loss_rate=LOSS,
                recovery_timeout=LOSSY_RECOVERY_TIMEOUT,
            )
        )
        assert total_drops(lossy) > 0, "loss injection never fired"
        assert total_recoveries(lossy) > 0, (
            "loss was injected but no recovery action was ever taken"
        )
        clean = live_run(mode, strategy, n_workers)
        for rank, weights in clean.final_weights.items():
            assert np.array_equal(
                lossy.final_weights[rank], weights
            ), f"{mode}-{strategy} rank {rank}: recovery changed the weights"
        if (mode, strategy) == ("async", "ps"):
            assert (
                lossy.worker_digests
                == clean.worker_digests
            )
        else:
            assert (
                lossy.round_digests == clean.round_digests
            )

    def test_isw_loss_recovery_mechanics_observable(self):
        """For the paper's strategy, check the *mechanism* too: Helps
        flowed and engine dedup absorbed the retransmission storm."""
        lossy = run(live_config("isw", 4, loss_rate=LOSS))
        stats = lossy.server_stats
        assert stats["drops_injected"] > 0
        helps = sum(
            counters["help_sent"]
            for counters in lossy.worker_counters.values()
        )
        assert helps > 0, "loss was injected but no Help was ever sent"
        assert stats["engine_duplicates_dropped"] > 0
        assert lossy.round_digests == reference_digests("isw", 4)


@needs_loopback
class TestTreeConformance:
    """N=6 overflows one rack (workers_per_rack=4): two ToR switches
    under one aggregation switch, nested live processes."""

    N = 6

    def test_tree_matches_sim_and_oracle(self):
        live = live_run("sync", "isw", self.N)
        sim = sim_run("sync", "isw", self.N)
        expected = sim_final_weights(sim)
        for rank in range(self.N):
            assert np.array_equal(
                live.final_weights[rank], expected[rank]
            ), f"rank {rank}: tree live and sim weights diverge"
        assert live.round_digests == tree_reference_digests(self.N)
        stats = live.server_stats
        # Both tiers actually did their jobs: ToRs forwarded partials up,
        # the aggregation switch's finals were relayed back down.
        assert stats["upstream_forwards"] > 0
        assert stats["parent_relays"] > 0

    def test_tree_loss_recovery_stays_bit_identical(self):
        lossy = run(live_config("isw", self.N, loss_rate=LOSS))
        assert lossy.server_stats["drops_injected"] > 0
        clean = live_run("sync", "isw", self.N)
        assert lossy.round_digests == clean.round_digests
        for rank, weights in clean.final_weights.items():
            assert np.array_equal(
                lossy.final_weights[rank], weights
            )


@needs_loopback
class TestAsyncStaleness:
    """The staleness bound is *measured* from the live run, not assumed:
    async-isw workers record their applied-version at compute time and
    the real gap at apply time; the async-PS server records the gap
    between each push's weight version and its apply number."""

    def test_async_isw_staleness_bound_holds_and_is_reached(self):
        bound = 1
        result = run(
            live_config(
                "isw", 2, mode="async", staleness_bound=bound, telemetry=True
            )
        )
        # Greedy schedule with S=1 over 3 rounds: gaps are [0, 1, 1].
        assert result.max_staleness == bound
        assert result.mean_staleness == pytest.approx(2 / 3)
        for rank, counters in result.worker_counters.items():
            assert counters["version_gap_max"] <= bound, f"rank {rank}"
            assert counters["version_gap_count"] == ITERATIONS
        # And the same numbers are visible through telemetry, per node.
        snapshot = result.telemetry
        assert snapshot is not None
        for rank in range(2):
            assert (
                snapshot.value("live.version_gap_max", node=f"worker{rank}")
                == bound
            )
        # Despite running ahead, the result is the synchronous result.
        assert result.round_digests == reference_digests("isw", 2)

    def test_async_isw_default_bound(self):
        result = live_run("async", "isw", 4)  # staleness_bound defaults to 3
        # 3 rounds under S=3: gaps are [0, 1, 2] on every worker.
        assert result.max_staleness == min(ITERATIONS - 1, 3)
        assert result.mean_staleness == pytest.approx(1.0)

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_async_ps_staleness_measured_at_server(self, n_workers):
        result = live_run("async", "ps", n_workers)
        # Cyclic applies: cycle-0 pushes carry version 0 (staleness = w);
        # every later push trails by exactly N-1 applies.
        assert result.max_staleness == n_workers - 1
        assert result.mean_staleness == pytest.approx(
            (n_workers - 1) * (ITERATIONS - 0.5) / ITERATIONS
        )


def codec_reference_digests(codec_name, n_workers):
    """Straight-line oracle for compressed rounds, independent of both
    backends: quantize each contribution onto the codec grid, sum in rank
    order (fp32), apply the downstream rounding (``finalize_sum``)."""
    from repro.core.compression import get_codec

    codec = get_codec(codec_name)
    algorithms = _fleet(n_workers)
    digests = []
    for _ in range(ITERATIONS):
        contributions = [
            codec.roundtrip(
                np.asarray(a.compute_gradient(), dtype=np.float32)
            )
            for a in algorithms
        ]
        total = contributions[0].copy()
        for contribution in contributions[1:]:
            total += contribution
        total = codec.finalize_sum(total)
        digests.append(_digest(total))
        update = total.astype(np.float64) / n_workers
        for algorithm in algorithms:
            algorithm.apply_update(update)
    return digests


@needs_loopback
class TestCodecConformance:
    """Compressed frames over real UDP equal the simulator bit-for-bit."""

    @pytest.mark.parametrize("codec", ["fp16", "int32-bs", "topk"])
    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_final_weights_bit_identical(self, codec, n_workers):
        live = run(live_config("isw", n_workers, codec=codec))
        sim = run(sim_config("isw", n_workers, codec=codec))

        live_weights = live.final_weights
        expected = sim_final_weights(sim)
        for rank in range(n_workers):
            assert np.array_equal(live_weights[rank], expected[rank]), (
                f"{codec}, rank {rank}: live and sim weights diverge"
            )
        for rank in range(1, n_workers):
            assert np.array_equal(live_weights[rank], live_weights[0])
        # Every frame that reached the switch carried the right tag.
        assert live.server_stats.get("wrong_codec", 0) == 0

    @pytest.mark.parametrize("codec", ["fp16", "int32-bs", "topk"])
    def test_aggregated_sums_match_oracle(self, codec):
        live = run(live_config("isw", 4, codec=codec))
        assert live.round_digests == codec_reference_digests(
            codec, 4
        )

    def test_codec_loss_recovery_stays_bit_identical(self):
        """Help-path retransmission of compressed frames is idempotent."""
        live = run(live_config("isw", 4, codec="int32-bs", loss_rate=LOSS))
        assert live.server_stats["drops_injected"] > 0
        assert live.round_digests == codec_reference_digests(
            "int32-bs", 4
        )


@needs_loopback
class TestLiveRunPlumbing:
    def test_telemetry_and_result_shape(self):
        result = run(live_config("isw", 2, telemetry=True))
        assert result.n_workers == 2
        assert result.iterations == ITERATIONS
        assert result.elapsed > 0
        assert result.wall_elapsed >= result.elapsed
        stats = result.server_stats
        # 2 workers x 3 rounds x ceil(23424/366) chunks, plus control.
        assert stats["engine_completions"] == ITERATIONS * 64
        assert stats["frames_rx"] > stats["data_rx"] > 0
        snapshot = result.telemetry
        assert snapshot is not None
        assert snapshot.meta["backend"] == "live"

    def test_cli_live_run(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--backend",
                "live",
                "--strategy",
                "sync-ps",
                "-n",
                "2",
                "--workload",
                WORKLOAD,
                "--iterations",
                "2",
                "--seed",
                str(SEED),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "live (loopback UDP)" in out
        assert "switch frames:" in out

    def test_cli_live_async_reports_staleness(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--backend",
                "live",
                "--mode",
                "async",
                "--strategy",
                "isw",
                "-n",
                "2",
                "--workload",
                WORKLOAD,
                "--iterations",
                "2",
                "--seed",
                str(SEED),
                "--staleness-bound",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "live (loopback UDP)" in out
        assert "mean staleness:" in out


class TestLiveRunValidation:
    def test_registry_flags_match_runner_support(self):
        flagged = {
            (spec.mode, spec.name)
            for spec in strategy_specs()
            if spec.supports_live
        }
        assert flagged == set(LIVE_STRATEGIES)

    def test_every_registered_strategy_is_live_capable(self):
        """PR goal made durable: the whole registry runs live."""
        assert all(spec.supports_live for spec in strategy_specs())

    def test_unflagged_spec_rejected(self):
        spec = SimpleNamespace(
            supports_live=False, name="ar", requires_iswitch=False
        )
        with pytest.raises(LiveRunError, match="no live backend"):
            _validate(live_config("ar", 2), spec, tree=False)

    def test_fault_plan_rejected(self):
        config = live_config("isw", 2)
        config.fault_plan = object()
        with pytest.raises(LiveRunError, match="simulator-only"):
            run_live(config)

    def test_async_tree_rejected(self):
        with pytest.raises(LiveRunError, match="synchronous rounds"):
            run_live(live_config("isw", 6, mode="async"))

    def test_peer_to_peer_needs_two_workers(self):
        with pytest.raises(ValueError, match=">= 2 workers"):
            run_live(live_config("ar", 1))

    def test_halving_doubling_needs_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            run_live(live_config("ar-hd", 3))

    def test_job_id_requires_iswitch(self):
        config = live_config("ps", 2)
        config.job_id = 1
        with pytest.raises(ValueError, match="job_id"):
            run_live(config)

    def test_codec_requires_flat_sync_isw(self):
        for config in (
            live_config("isw", 6, codec="fp16"),  # tree
            live_config("isw", 2, mode="async", codec="fp16"),
        ):
            with pytest.raises(ValueError, match="sync-isw"):
                run_live(config)

    def test_simulator_only_codec_rejected(self):
        with pytest.raises(ValueError, match="loss model"):
            run_live(live_config("isw", 2, codec="int8"))


class TestFailureModes:
    """The live backend must fail loudly and structurally, never hang."""

    @needs_loopback
    def test_port_bind_conflict_raises(self):
        with UdpEndpoint() as taken:
            with pytest.raises(OSError):
                UdpEndpoint(port=taken.port)

    def test_loopback_unavailable_raises_before_spawning(self, monkeypatch):
        import repro.live.transport as transport

        monkeypatch.setattr(transport, "loopback_available", lambda: False)
        with pytest.raises(LiveRunError, match="loopback UDP is unavailable"):
            run_live(live_config("isw", 2))

    def test_recv_times_out_with_structured_error(self):
        from repro.live.runner import _recv, _recv_port

        parent, child = multiprocessing.Pipe()
        try:
            with pytest.raises(LiveRunError, match="timed out waiting"):
                _recv(parent, "worker 0", timeout=0.02)
            # A child that reports something other than its port.
            child.send(("ok", {}))
            with pytest.raises(LiveRunError, match="unexpected"):
                _recv_port(parent, "switch", timeout=1.0)
            # A child that reports a startup error.
            child.send(("error", "boom"))
            with pytest.raises(LiveRunError, match="failed to start"):
                _recv_port(parent, "switch", timeout=1.0)
        finally:
            parent.close()
            child.close()

    @needs_loopback
    def test_worker_exception_mid_run_is_structured_error(self, monkeypatch):
        """A worker raising (not just dying) must report its traceback."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("crash injection requires the fork start method")
        import repro.live.worker as worker_module

        def explode(self, iterations):
            raise RuntimeError("injected training failure")

        monkeypatch.setattr(worker_module.LiveWorker, "train", explode)
        with pytest.raises(LiveRunError, match="worker 0 failed"):
            run_live(live_config("isw", 2, recovery_timeout=0.02))

    @needs_loopback
    def test_worker_death_mid_run_is_structured_error(self, monkeypatch):
        """A worker process dying must surface as LiveRunError naming the
        worker — not as a hung run waiting on a pipe forever."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("crash injection requires the fork start method")
        import repro.live.worker as worker_module

        monkeypatch.setattr(
            worker_module.LiveWorker,
            "train",
            lambda self, iterations: os._exit(13),
        )
        with pytest.raises(LiveRunError, match="worker 0"):
            run_live(live_config("isw", 2, recovery_timeout=0.02))


# ---------------------------------------------------------------------------
# In-process protocol-logic tests (no child processes; coverage backbone)
# ---------------------------------------------------------------------------
class TinyAlgorithm:
    """A deterministic stand-in small enough for single-frame rounds."""

    def __init__(self, n_elements=5, seed=0):
        self._rng = np.random.default_rng(seed)
        self._weights = np.zeros(n_elements, dtype=np.float64)

    def get_weights(self):
        return self._weights

    def set_weights(self, weights):
        self._weights = np.asarray(weights, dtype=np.float64).copy()

    def compute_gradient(self):
        return self._rng.standard_normal(self._weights.size).astype(
            np.float32
        )

    def apply_update(self, update):
        self._weights = self._weights - update

    def final_average_reward(self):
        return 0.0


def segment_frames(rank, round_index, vector):
    plan = SegmentPlan(vector.size)
    return [
        encode_data(s)
        for s in plan.split(vector, round_index, sender=f"worker{rank}")
    ]


def tiny_reference(n_workers, iterations, n_elements=5, float64=False):
    """Straight-line digests for a TinyAlgorithm fleet (rank-order sums)."""
    algorithms = [TinyAlgorithm(n_elements, seed=r) for r in range(n_workers)]
    digests = []
    for _ in range(iterations):
        dtype = np.float64 if float64 else np.float32
        total = np.zeros(n_elements, dtype=dtype)
        for algorithm in algorithms:
            total += algorithm.compute_gradient()
        digests.append(_digest(total))
        for algorithm in algorithms:
            algorithm.apply_update(total.astype(np.float64) / n_workers)
    return digests


def run_in_threads(runnables, timeout=60.0):
    """Start one thread per callable; join all, failing on a hang."""
    errors = []

    def wrap(fn):
        try:
            fn()
        except BaseException as exc:  # surfaced to the test
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(fn,), daemon=True)
        for fn in runnables
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "worker thread hung"
    if errors:
        raise errors[0]
    return True


class TestSoftwareSwitchLogic:
    def addr(self, rank):
        return (LOOPBACK, 40000 + rank)

    def join_all(self, switch, n):
        outs = []
        for rank in range(n):
            frame = encode_control(
                ControlMessage(
                    Action.JOIN, JoinInfo(rank=rank, n_elements=5, n_chunks=1)
                )
            )
            outs.append(switch.handle_frame(frame, self.addr(rank)))
        return outs

    def test_join_ack_and_seth_barrier(self):
        switch = SoftwareSwitch(n_workers=2)
        first, second = self.join_all(switch, 2)
        # First join: ACK only — membership incomplete, no go signal yet.
        assert [decode_frame(f)[1].action for f, _ in first] == [Action.ACK]
        # Second join: ACK plus a SetH broadcast to *both* members.
        actions = [decode_frame(f)[1] for f, _ in second]
        assert actions[0].action == Action.ACK
        assert [m.action for m in actions[1:]] == [Action.SETH] * 2
        assert all(m.value == 2 for m in actions[1:])
        # A late duplicate join is re-acked and re-sent the go signal 1:1.
        retry = switch.handle_frame(
            encode_control(ControlMessage(Action.JOIN, JoinInfo(rank=0))),
            self.addr(0),
        )
        assert [decode_frame(f)[1].action for f, _ in retry] == [
            Action.ACK,
            Action.SETH,
        ]
        assert switch.counters["joins"] == 2  # the retry is not a new member

    def test_aggregation_and_broadcast(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        vectors = [
            np.arange(5, dtype=np.float32),
            np.full(5, 0.5, dtype=np.float32),
        ]
        assert switch.handle_frame(
            segment_frames(0, 0, vectors[0])[0], self.addr(0)
        ) == []
        out = switch.handle_frame(
            segment_frames(1, 0, vectors[1])[0], self.addr(1)
        )
        # Completion: the float32 rank-order sum broadcast to both members.
        assert [a for _, a in out] == [self.addr(0), self.addr(1)]
        _, result = decode_frame(out[0][0])
        np.testing.assert_array_equal(result.data, vectors[0] + vectors[1])
        assert switch.counters["results_broadcast"] == 1

    def test_non_member_and_garbage_frames_ignored(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        stranger = ("10.0.0.9", 1)
        frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        assert switch.handle_frame(frame, stranger) == []
        assert switch.counters["data_rx"] == 0
        assert switch.handle_frame(b"\xde\xad\xbe\xef", self.addr(0)) == []
        assert switch.counters["decode_errors"] == 1
        # Downstream frames at the switch ingress are not aggregated.
        down = encode_data(
            DataSegment(seg=0, data=np.ones(5, dtype=np.float32)),
            downstream=True,
        )
        assert switch.handle_frame(down, self.addr(0)) == []

    def test_help_cache_hit_and_relay(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        vector = np.ones(5, dtype=np.float32)
        switch.handle_frame(segment_frames(0, 0, vector)[0], self.addr(0))
        # Seg 0 incomplete: Help from worker1 is relayed to worker0 only.
        help_frame = encode_control(ControlMessage(Action.HELP, value=0))
        relayed = switch.handle_frame(help_frame, self.addr(1))
        assert [a for _, a in relayed] == [self.addr(0)]
        assert decode_frame(relayed[0][0])[1].action == Action.HELP
        assert switch.counters["help_relayed"] == 1
        # Complete it; now a Help is served from the result cache 1:1.
        switch.handle_frame(segment_frames(1, 0, vector)[0], self.addr(1))
        served = switch.handle_frame(help_frame, self.addr(1))
        assert [a for _, a in served] == [self.addr(1)]
        _, cached = decode_frame(served[0][0])
        np.testing.assert_array_equal(cached.data, 2 * vector)
        assert switch.counters["help_cache_hits"] == 1

    def test_dedup_makes_retransmission_idempotent(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        switch.handle_frame(frame, self.addr(0))
        switch.handle_frame(frame, self.addr(0))  # retransmission
        assert switch.stats_snapshot()["engine_duplicates_dropped"] == 1
        out = switch.handle_frame(
            segment_frames(1, 0, np.ones(5, dtype=np.float32))[0],
            self.addr(1),
        )
        _, result = decode_frame(out[0][0])
        np.testing.assert_array_equal(
            result.data, np.full(5, 2.0, dtype=np.float32)
        )

    def test_loss_injection_drops_before_the_engine(self):
        # random.Random(0).random() == 0.844..., below a 0.9 loss rate.
        switch = SoftwareSwitch(n_workers=1, loss_rate=0.9, loss_seed=0)
        self.join_all(switch, 1)
        frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        assert switch.handle_frame(frame, self.addr(0)) == []
        assert switch.counters["drops_injected"] == 1
        assert switch.counters["data_rx"] == 0

    def test_reset_fbcast_and_leave(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        vector = np.ones(5, dtype=np.float32)
        switch.handle_frame(segment_frames(0, 0, vector)[0], self.addr(0))
        # FBcast flushes the partial aggregate to both members.
        out = switch.handle_frame(
            encode_control(ControlMessage(Action.FBCAST, value=0)),
            self.addr(0),
        )
        assert len(out) == 2
        np.testing.assert_array_equal(decode_frame(out[0][0])[1].data, vector)
        # FBcast of an unknown seg is a no-op.
        assert (
            switch.handle_frame(
                encode_control(ControlMessage(Action.FBCAST, value=99)),
                self.addr(0),
            )
            == []
        )
        switch.handle_frame(
            encode_control(ControlMessage(Action.RESET)), self.addr(0)
        )
        assert switch.engine.live_segments == 0
        assert not switch.done
        for rank in range(2):
            switch.handle_frame(
                encode_control(ControlMessage(Action.LEAVE)), self.addr(rank)
            )
        assert switch.done
        assert switch.counters["leaves"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            SoftwareSwitch(n_workers=0)
        with pytest.raises(ValueError, match="loss_rate"):
            SoftwareSwitch(n_workers=1, loss_rate=1.0)
        with pytest.raises(RuntimeError, match="endpoint"):
            SoftwareSwitch(n_workers=1).serve(deadline=0.0)

    def test_guard_branches_drop_unexpected_frames(self):
        switch = SoftwareSwitch(n_workers=2)
        self.join_all(switch, 2)
        # A frame tagged for another job never reaches this engine.
        other_job = encode_control(
            ControlMessage(Action.HELP, value=0, job=3)
        )
        assert switch.handle_frame(other_job, self.addr(0)) == []
        assert switch.counters["wrong_job"] == 1
        # A Join with no JoinInfo payload decodes but is a defect: the
        # encoder refuses to produce one, so build the raw frame.
        from repro.core.protocol import TOS_CONTROL

        bad_join = bytes((TOS_CONTROL, Action.JOIN))
        assert switch.handle_frame(bad_join, self.addr(0)) == []
        assert switch.counters["decode_errors"] == 1
        # A stray SetH at a flat switch is acknowledged with nothing.
        seth = encode_control(ControlMessage(Action.SETH, value=2))
        assert switch.handle_frame(seth, self.addr(0)) == []

    def test_simulator_only_codec_rejected(self):
        from repro.core.compression import get_codec

        with pytest.raises(ValueError, match="wire format"):
            SoftwareSwitch(n_workers=1, codec=get_codec("int8"))
        with pytest.raises(ValueError, match="wire format"):
            LiveWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=None,
                switch_addr=self.addr(0),
                codec=get_codec("int8"),
            )

    def test_codec_switch_drops_mismatched_tags(self):
        from repro.core.compression import get_codec

        codec = get_codec("fp16")
        switch = SoftwareSwitch(n_workers=2, codec=codec)
        self.join_all(switch, 2)
        # Untagged fp32 upstream frames are the wrong numerics: dropped.
        fp32_frame = segment_frames(0, 0, np.ones(5, dtype=np.float32))[0]
        assert switch.handle_frame(fp32_frame, self.addr(0)) == []
        assert switch.counters["wrong_codec"] == 1
        assert switch.counters["data_rx"] == 0

    def test_codec_switch_aggregates_and_broadcasts_on_grid(self):
        from repro.core.compression import get_codec
        from repro.core.protocol import TOS_DATA_DOWN, TOS_NUMERICS_MASK

        codec = get_codec("fp16")
        switch = SoftwareSwitch(n_workers=2, codec=codec)
        self.join_all(switch, 2)
        plan = SegmentPlan(
            5,
            bytes_per_element=codec.bytes_per_element,
            frame_overhead=codec.frame_overhead,
        )
        vectors = [
            np.full(5, 1.0, dtype=np.float32),
            np.full(5, 2.0 ** -11, dtype=np.float32),  # off-grid sum
        ]
        for rank, vector in enumerate(vectors):
            frames = [
                encode_data(s, codec=codec)
                for s in plan.split(vector, 0, sender=f"worker{rank}")
            ]
            out = switch.handle_frame(frames[0], self.addr(rank))
        # Completion: broadcast frames carry the codec's tag and values
        # rounded onto the fp16 grid (1.0 + 2**-11 is not representable).
        assert len(out) == 2
        tos, result = decode_frame(out[0][0])
        assert (tos & ~TOS_NUMERICS_MASK) == TOS_DATA_DOWN
        assert tos & TOS_NUMERICS_MASK == codec.wire_tag
        expected = codec.finalize_sum(vectors[0] + vectors[1])
        np.testing.assert_array_equal(result.data, expected)
        np.testing.assert_array_equal(
            result.data, np.full(5, 1.0, dtype=np.float32)
        )


class TestTreeSwitchLogic:
    """ToR-mode SoftwareSwitch protocol paths, driven frame by frame."""

    PARENT = (LOOPBACK, 45000)

    def addr(self, rank):
        return (LOOPBACK, 40100 + rank)

    def make_tor(self):
        tor = SoftwareSwitch(n_workers=2, parent_addr=self.PARENT, rank=1)
        for rank in range(2):
            tor.handle_frame(
                encode_control(
                    ControlMessage(
                        Action.JOIN,
                        JoinInfo(rank=rank, n_elements=5, n_chunks=1),
                    )
                ),
                self.addr(rank),
            )
        return tor

    def complete_seg0(self, tor):
        vector = np.ones(5, dtype=np.float32)
        tor.handle_frame(segment_frames(0, 0, vector)[0], self.addr(0))
        return tor.handle_frame(segment_frames(1, 0, vector)[0], self.addr(1))

    def test_completion_buffers_until_parent_seth(self):
        tor = self.make_tor()
        # Parent barrier not reached: the completed partial is buffered,
        # not broadcast, not sent upstream.
        assert self.complete_seg0(tor) == []
        assert tor.counters["upstream_forwards"] == 1
        assert tor.counters["results_broadcast"] == 0
        assert not tor.done
        # Parent SetH flushes the pending partials upstream.
        out = tor.handle_frame(
            encode_control(ControlMessage(Action.SETH, value=2)), self.PARENT
        )
        assert [a for _, a in out] == [self.PARENT]
        tos, partial = decode_frame(out[0][0])
        np.testing.assert_array_equal(
            partial.data, np.full(5, 2.0, dtype=np.float32)
        )
        # A later completion forwards straight up, no buffering.
        vector = np.ones(5, dtype=np.float32)
        tor.handle_frame(segment_frames(0, 1, vector)[0], self.addr(0))
        out = tor.handle_frame(segment_frames(1, 1, vector)[0], self.addr(1))
        assert [a for _, a in out] == [self.PARENT]

    def test_parent_down_relayed_and_cached_for_help(self):
        tor = self.make_tor()
        tor.handle_frame(
            encode_control(ControlMessage(Action.SETH, value=2)), self.PARENT
        )
        self.complete_seg0(tor)
        final = encode_data(
            DataSegment(seg=0, data=np.full(5, 6.0, dtype=np.float32)),
            downstream=True,
        )
        out = tor.handle_frame(final, self.PARENT)
        assert [a for _, a in out] == [self.addr(0), self.addr(1)]
        assert tor.counters["parent_relays"] == 1
        # A member Help for the relayed Seg is a down-cache hit — the
        # engine's *partial* must never be served as a final.
        help_frame = encode_control(ControlMessage(Action.HELP, value=0))
        served = tor.handle_frame(help_frame, self.addr(1))
        assert [a for _, a in served] == [self.addr(1)]
        _, cached = decode_frame(served[0][0])
        np.testing.assert_array_equal(
            cached.data, np.full(5, 6.0, dtype=np.float32)
        )
        assert tor.counters["help_cache_hits"] == 1

    def test_member_help_before_final_reoffers_partial_upstream(self):
        tor = self.make_tor()
        tor.handle_frame(
            encode_control(ControlMessage(Action.SETH, value=2)), self.PARENT
        )
        self.complete_seg0(tor)
        # Final lost: the ToR has a complete partial, so it re-offers it
        # upstream and asks the parent for help — both to the parent.
        out = tor.handle_frame(
            encode_control(ControlMessage(Action.HELP, value=0)), self.addr(0)
        )
        assert [a for _, a in out] == [self.PARENT, self.PARENT]
        assert decode_frame(out[1][0])[1].action == Action.HELP
        # An *incomplete* Seg falls back to the member relay.
        vector = np.ones(5, dtype=np.float32)
        tor.handle_frame(segment_frames(0, 1, vector)[0], self.addr(0))
        relayed = tor.handle_frame(
            encode_control(ControlMessage(Action.HELP, value=1)), self.addr(1)
        )
        assert [a for _, a in relayed] == [self.addr(0)]

    def test_parent_help_retransmits_cached_partial(self):
        tor = self.make_tor()
        tor.handle_frame(
            encode_control(ControlMessage(Action.SETH, value=2)), self.PARENT
        )
        self.complete_seg0(tor)
        out = tor.handle_frame(
            encode_control(ControlMessage(Action.HELP, value=0)), self.PARENT
        )
        assert [a for _, a in out] == [self.PARENT]
        assert tor.counters["retransmissions_up"] == 1
        # Unknown Seg: nothing cached, nothing sent.
        assert (
            tor.handle_frame(
                encode_control(ControlMessage(Action.HELP, value=9)),
                self.PARENT,
            )
            == []
        )

    def test_leave_propagates_upstream_once(self):
        tor = self.make_tor()
        tor.handle_frame(
            encode_control(ControlMessage(Action.SETH, value=2)), self.PARENT
        )
        leave = encode_control(ControlMessage(Action.LEAVE))
        assert tor.handle_frame(leave, self.addr(0)) == []
        assert not tor.done
        out = tor.handle_frame(leave, self.addr(1))
        assert [a for _, a in out] == [self.PARENT]
        assert decode_frame(out[0][0])[1].action == Action.LEAVE
        assert tor.done
        # A duplicate member leave does not re-notify the parent.
        assert tor.handle_frame(leave, self.addr(1)) == []


@needs_loopback
class TestPeerExchangeLogic:
    """Unit-level checks on the collective workers (no training loop)."""

    def peers(self, n):
        return {rank: (LOOPBACK, 42000 + rank) for rank in range(n)}

    def test_constructor_validation(self):
        algorithm = TinyAlgorithm()
        with pytest.raises(ValueError, match=">= 2 workers"):
            LiveRingWorker(0, 1, algorithm, None, {0: (LOOPBACK, 1)})
        with pytest.raises(ValueError, match="cover ranks"):
            LiveRingWorker(0, 2, algorithm, None, {0: (LOOPBACK, 1)})
        with pytest.raises(ValueError, match="loss_rate"):
            LiveRingWorker(
                0, 2, algorithm, None, self.peers(2), loss_rate=1.0
            )
        with pytest.raises(ValueError, match="power-of-two"):
            LiveHdWorker(0, 3, algorithm, None, self.peers(3))

    def test_ingest_rejects_garbage_and_counts_errors(self):
        worker = LiveRingWorker(0, 2, TinyAlgorithm(), None, self.peers(2))
        worker._ingest(b"Z???")  # unknown tag
        worker._ingest(b"E\x01")  # truncated header
        assert worker.counters["decode_errors"] == 2
        # Resend request for a message never sent: served silently later.
        import struct

        worker._ingest(b"R" + struct.pack("<BBII", 1, 0, 0, 0))
        assert worker.counters["resends_served"] == 0
        # A peer finish frame is recorded.
        worker._ingest(b"F\x01")
        assert 1 in worker._peer_done

    def test_stale_rounds_pruned_from_buffers(self):
        import struct

        worker = LiveRingWorker(0, 2, TinyAlgorithm(), None, self.peers(2))
        payload = np.zeros(3, dtype="<f8").tobytes()
        worker._ingest(b"E" + struct.pack("<BBIII", 1, 0, 0, 0, 0) + payload)
        assert (1, 0, 0, 0) in worker._pending
        worker._round = 5
        worker._prune_caches()
        assert worker._pending == {}
        # Frames for long-gone rounds are dropped at ingest too.
        worker._ingest(b"E" + struct.pack("<BBIII", 1, 0, 1, 0, 0) + payload)
        assert worker._pending == {}
        assert worker.counters["stale_frames"] >= 2


@needs_loopback
class TestCollectiveInProcess:
    """Thread-hosted ring / halving-doubling sessions: the full exchange
    without forked processes."""

    def run_collective(self, cls, n_workers, n_elements, loss_rate=0.0):
        endpoints = [UdpEndpoint() for _ in range(n_workers)]
        peers = {rank: e.address for rank, e in enumerate(endpoints)}
        workers = [
            cls(
                rank=rank,
                n_workers=n_workers,
                algorithm=TinyAlgorithm(n_elements, seed=rank),
                endpoint=endpoints[rank],
                peers=peers,
                recovery_timeout=0.05,
                max_recovery_attempts=20,
                loss_rate=loss_rate,
                loss_seed=3,
            )
            for rank in range(n_workers)
        ]
        try:
            run_in_threads(
                [lambda w=w: w.train(ITERATIONS) for w in workers]
            )
        finally:
            for endpoint in endpoints:
                endpoint.close()
        return workers

    def test_ring_matches_float64_reference(self):
        # 3 workers x 5 elements: uneven chunk split (2/2/1).
        workers = self.run_collective(LiveRingWorker, 3, 5)
        expected = tiny_reference(3, ITERATIONS, float64=True)
        for worker in workers:
            assert worker.round_digests == expected
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[2].algorithm.get_weights(),
        )

    def test_ring_multi_fragment_messages(self):
        # Chunks above 183 float64 elements must fragment and reassemble.
        from repro.live.collective import COLLECTIVE_FRAG_ELEMS

        n_elements = 2 * (2 * COLLECTIVE_FRAG_ELEMS + 7)
        workers = self.run_collective(LiveRingWorker, 2, n_elements)
        expected = tiny_reference(
            2, ITERATIONS, n_elements=n_elements, float64=True
        )
        for worker in workers:
            assert worker.round_digests == expected

    def test_halving_doubling_matches_ring_bits(self):
        ring = self.run_collective(LiveRingWorker, 4, 12)
        hd = self.run_collective(LiveHdWorker, 4, 12)
        expected = tiny_reference(4, ITERATIONS, n_elements=12, float64=True)
        assert ring[0].round_digests == expected
        assert hd[0].round_digests == expected
        np.testing.assert_array_equal(
            ring[0].algorithm.get_weights(), hd[0].algorithm.get_weights()
        )

    def test_collective_gives_up_when_peer_is_silent(self):
        """A dead peer: the watchdog must abandon the round, not hang."""
        with UdpEndpoint() as mine, UdpEndpoint() as silent:
            worker = LiveRingWorker(
                rank=0,
                n_workers=2,
                algorithm=TinyAlgorithm(n_elements=4),
                endpoint=mine,
                peers={0: mine.address, 1: silent.address},
                recovery_timeout=0.01,
                max_recovery_attempts=2,
            )
            with pytest.raises(RuntimeError, match="abandoned"):
                worker.train(1)
            assert worker.counters["watchdog_timeouts"] >= 2

    @pytest.mark.parametrize("cls", [LiveRingWorker, LiveHdWorker])
    def test_lossy_session_recovers_bit_identically(self, cls):
        workers = self.run_collective(cls, 2, 8, loss_rate=0.3)
        drops = sum(w.counters["drops_injected"] for w in workers)
        requests = sum(w.counters["resend_requests_sent"] for w in workers)
        assert drops > 0, "loss injection never fired"
        assert requests > 0, "drops happened but nobody asked for a resend"
        assert sum(w.counters["resends_served"] for w in workers) > 0
        expected = tiny_reference(2, ITERATIONS, n_elements=8, float64=True)
        for worker in workers:
            assert worker.round_digests == expected


class TestShardLogic:
    def test_shard_ranges_cover_and_partition(self):
        assert shard_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_ranges(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert shard_ranges(6, 2) == [(0, 3), (3, 6)]

    def test_constructor_and_join_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            LiveShardWorker(0, 2, TinyAlgorithm(), None, [])
        worker = LiveShardWorker(
            0, 2, TinyAlgorithm(), None, [(LOOPBACK, 1)]
        )
        with pytest.raises(RuntimeError, match="join"):
            worker.train(1)


@needs_loopback
class TestShardInProcess:
    def run_sharded(self, n_elements, n_workers, loss_rate=0.0):
        server_endpoints = [UdpEndpoint() for _ in range(2)]
        servers = [
            PsServer(
                n_workers=n_workers,
                endpoint=endpoint,
                loss_rate=loss_rate,
                loss_seed=3,
            )
            for endpoint in server_endpoints
        ]
        deadline = time.monotonic() + 60.0
        server_threads = [
            threading.Thread(
                target=s.serve,
                kwargs={"deadline": deadline, "poll_interval": 0.05},
                daemon=True,
            )
            for s in servers
        ]
        for thread in server_threads:
            thread.start()
        workers = [
            LiveShardWorker(
                rank=rank,
                n_workers=n_workers,
                algorithm=TinyAlgorithm(n_elements, seed=rank),
                endpoint=UdpEndpoint(),
                shard_addrs=[e.address for e in server_endpoints],
                recovery_timeout=0.05,
                max_recovery_attempts=40,
            )
            for rank in range(n_workers)
        ]
        try:
            run_in_threads(
                [
                    lambda w=w: (w.join(), w.train(ITERATIONS))
                    for w in workers
                ]
            )
            for thread in server_threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "shard server never drained"
        finally:
            for endpoint in server_endpoints:
                endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        return servers, workers

    def test_sharded_session_matches_float64_reference(self):
        # Two shards; shard 0's slice spans two chunks (> 183 elements).
        n_elements = 2 * PS_CHUNK_ELEMS + 40
        _, workers = self.run_sharded(n_elements, n_workers=2)
        expected = tiny_reference(
            2, ITERATIONS, n_elements=n_elements, float64=True
        )
        for worker in workers:
            assert worker.round_digests == expected
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[1].algorithm.get_weights(),
        )

    def test_lossy_sharded_session_recovers_bit_identically(self):
        servers, workers = self.run_sharded(20, n_workers=2, loss_rate=0.3)
        assert sum(s.counters["drops_injected"] for s in servers) > 0
        assert sum(w.counters["help_sent"] for w in workers) > 0
        expected = tiny_reference(2, ITERATIONS, n_elements=20, float64=True)
        for worker in workers:
            assert worker.round_digests == expected


class TestAsyncPsServerLogic:
    """LiveAsyncPsServer.handle_frame, frame by frame (pure logic)."""

    def addr(self, rank):
        return (LOOPBACK, 43000 + rank)

    def make_server(self, n_workers=2, n_elements=5, **kwargs):
        return LiveAsyncPsServer(
            n_workers=n_workers,
            replica=TinyAlgorithm(n_elements, seed=99),
            **kwargs,
        )

    def join_all(self, server, n):
        import struct

        for rank in range(n):
            server.handle_frame(
                b"J" + struct.pack("<BI", rank, server.n_elements),
                self.addr(rank),
            )

    def push(self, rank, cycle, vector, version=0, chunk=0):
        import struct

        return (
            b"U"
            + struct.pack("<BIII", rank, cycle, chunk, version)
            + vector.astype("<f4").tobytes()
        )

    def test_join_barrier_and_wrong_geometry(self):
        import struct

        server = self.make_server()
        first = server.handle_frame(
            b"J" + struct.pack("<BI", 0, 5), self.addr(0)
        )
        assert [f for f, _ in first] == [b"A"]
        second = server.handle_frame(
            b"J" + struct.pack("<BI", 1, 5), self.addr(1)
        )
        assert [f for f, _ in second] == [b"A", b"G", b"G"]
        late = server.handle_frame(
            b"J" + struct.pack("<BI", 0, 5), self.addr(0)
        )
        assert [f for f, _ in late] == [b"A", b"G"]
        # A join with mismatched model geometry is refused outright.
        bad = server.handle_frame(
            b"J" + struct.pack("<BI", 0, 7), self.addr(0)
        )
        assert bad == []
        assert server.counters["decode_errors"] == 1

    def test_out_of_order_pushes_apply_cyclically(self):
        server = self.make_server()
        self.join_all(server, 2)
        g0 = np.arange(5, dtype=np.float32)
        g1 = np.full(5, 0.5, dtype=np.float32)
        # Rank 1 arrives first: buffered, nothing applied.
        assert server.handle_frame(self.push(1, 0, g1), self.addr(1)) == []
        assert server.server_updates == 0
        # Rank 0 arrives: both applies fire, oldest first, each answered
        # with that rank's pull.
        out = server.handle_frame(self.push(0, 0, g0), self.addr(0))
        assert server.server_updates == 2
        assert [addr for _, addr in out] == [self.addr(0), self.addr(1)]
        # The replica walked g0 then g1 in float64.
        np.testing.assert_array_equal(
            server.replica.get_weights(),
            -(g0.astype(np.float64) + g1.astype(np.float64)),
        )
        # Measured staleness: apply 0 gap 0, apply 1 gap 1 (version 0).
        assert server.counters["updates"] == 2
        assert server.counters["staleness_max"] == 1
        assert server.counters["staleness_total"] == 1

    def test_duplicate_pushes_dropped_at_every_stage(self):
        server = self.make_server()
        self.join_all(server, 2)
        g = np.ones(5, dtype=np.float32)
        server.handle_frame(self.push(1, 0, g), self.addr(1))
        # Duplicate of a buffered (not yet applied) push.
        server.handle_frame(self.push(1, 0, g), self.addr(1))
        assert server.counters["duplicates_dropped"] == 1
        server.handle_frame(self.push(0, 0, g), self.addr(0))
        # Duplicate of an already-applied push.
        server.handle_frame(self.push(0, 0, g), self.addr(0))
        assert server.counters["duplicates_dropped"] == 2
        assert server.server_updates == 2

    def test_pull_resend_served_from_cache(self):
        import struct

        server = self.make_server(n_workers=1)
        self.join_all(server, 1)
        out = server.handle_frame(
            self.push(0, 0, np.ones(5, dtype=np.float32)), self.addr(0)
        )
        resend = server.handle_frame(
            b"H" + struct.pack("<BI", 0, 1), self.addr(0)
        )
        assert resend == [(out[0][0], self.addr(0))]
        assert server.counters["resends_served"] == 1
        # A request for a cycle not yet applied: the worker must retry.
        assert (
            server.handle_frame(
                b"H" + struct.pack("<BI", 0, 9), self.addr(0)
            )
            == []
        )

    def test_loss_injection_drops_pushes(self):
        # random.Random(0).random() == 0.844..., below a 0.9 loss rate.
        server = self.make_server(n_workers=1, loss_rate=0.9, loss_seed=0)
        self.join_all(server, 1)
        assert (
            server.handle_frame(
                self.push(0, 0, np.ones(5, dtype=np.float32)), self.addr(0)
            )
            == []
        )
        assert server.counters["drops_injected"] == 1
        assert server.server_updates == 0

    def test_leave_completes_and_malformed_frames_counted(self):
        server = self.make_server(n_workers=1)
        self.join_all(server, 1)
        assert not server.done
        server.handle_frame(b"L\x00", self.addr(0))
        assert server.done
        assert server.handle_frame(b"", self.addr(0)) == []
        assert server.handle_frame(b"U\x00", self.addr(0)) == []
        assert server.counters["decode_errors"] >= 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            self.make_server(n_workers=0)
        with pytest.raises(ValueError, match="loss_rate"):
            self.make_server(loss_rate=1.0)


@needs_loopback
class TestAsyncInProcess:
    """Thread-hosted async sessions (bounded-staleness isw, async PS)."""

    def run_async_isw(
        self, n_workers, bound, iterations=ITERATIONS, loss_rate=0.0
    ):
        switch_endpoint = UdpEndpoint()
        switch = SoftwareSwitch(
            n_workers=n_workers,
            endpoint=switch_endpoint,
            loss_rate=loss_rate,
            loss_seed=3,
        )
        server_thread = threading.Thread(
            target=switch.serve,
            kwargs={"deadline": time.monotonic() + 60.0, "poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        workers = [
            LiveAsyncWorker(
                rank=rank,
                n_workers=n_workers,
                algorithm=TinyAlgorithm(n_elements=5, seed=rank),
                endpoint=UdpEndpoint(),
                switch_addr=switch_endpoint.address,
                recovery_timeout=0.05,
                max_recovery_attempts=40,
                staleness_bound=bound,
            )
            for rank in range(n_workers)
        ]
        try:
            run_in_threads(
                [
                    lambda w=w: (w.join(), w.train(iterations))
                    for w in workers
                ]
            )
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "switch never drained"
        finally:
            switch_endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        return switch, workers

    def test_async_isw_session_bounded_and_bit_identical(self):
        n_workers, bound = 2, 1
        _, workers = self.run_async_isw(n_workers, bound)
        # TinyAlgorithm gradients are weight-independent, so the bounded
        # pipeline must land on the synchronous bits exactly.
        expected = tiny_reference(n_workers, ITERATIONS)
        for worker in workers:
            assert worker.round_digests == expected
            # Greedy schedule with S=1 over 3 rounds: gaps [0, 1, 1].
            assert worker.counters["version_gap_max"] == bound
            assert worker.counters["version_gap_total"] == 2
            assert worker.counters["version_gap_count"] == ITERATIONS

    def test_async_isw_lossy_session_recovers_bit_identically(self):
        """Loss under pipelining: the watchdog retransmit/Help path and
        the ahead-of-round buffering both fire, and the bits still match
        the synchronous reference."""
        switch, workers = self.run_async_isw(
            2, bound=2, iterations=5, loss_rate=0.3
        )
        assert switch.counters["drops_injected"] > 0
        assert sum(w.counters["watchdog_timeouts"] for w in workers) > 0
        expected = tiny_reference(2, 5)
        for worker in workers:
            assert worker.round_digests == expected
            assert worker.counters["version_gap_max"] <= 2

    def test_async_worker_rejects_negative_bound_and_needs_join(self):
        with pytest.raises(ValueError, match="staleness_bound"):
            LiveAsyncWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=None,
                switch_addr=(LOOPBACK, 1),
                staleness_bound=-1,
            )
        worker = LiveAsyncWorker(
            rank=0,
            n_workers=1,
            algorithm=TinyAlgorithm(),
            endpoint=None,
            switch_addr=(LOOPBACK, 1),
        )
        with pytest.raises(RuntimeError, match="join"):
            worker.train(1)

    def run_async_ps(self, n_workers, n_elements, loss_rate=0.0):
        server_endpoint = UdpEndpoint()
        server = LiveAsyncPsServer(
            n_workers=n_workers,
            replica=TinyAlgorithm(n_elements, seed=99),
            endpoint=server_endpoint,
            loss_rate=loss_rate,
            loss_seed=3,
        )
        server_thread = threading.Thread(
            target=server.serve,
            kwargs={"deadline": time.monotonic() + 60.0, "poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        workers = [
            LiveAsyncPsWorker(
                rank=rank,
                n_workers=n_workers,
                algorithm=TinyAlgorithm(n_elements, seed=rank),
                endpoint=UdpEndpoint(),
                server_addr=server_endpoint.address,
                recovery_timeout=0.05,
            )
            for rank in range(n_workers)
        ]
        try:
            run_in_threads(
                [
                    lambda w=w: (w.join(), w.train(ITERATIONS))
                    for w in workers
                ]
            )
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "async ps never drained"
        finally:
            server_endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        return server, workers

    def async_ps_tiny_reference(self, n_workers, n_elements):
        # Straight-line replica walk: rank-cyclic applies, digest after
        # each rank's own apply.
        replica = TinyAlgorithm(n_elements, seed=99)
        fleet = [TinyAlgorithm(n_elements, seed=r) for r in range(n_workers)]
        expected = {rank: [] for rank in range(n_workers)}
        for _ in range(ITERATIONS):
            gradients = [w.compute_gradient() for w in fleet]
            for rank in range(n_workers):
                replica.apply_update(gradients[rank].astype(np.float64))
                expected[rank].append(
                    _digest(
                        np.ascontiguousarray(
                            replica.get_weights(), dtype=np.float64
                        )
                    )
                )
        return expected

    def test_async_ps_session_matches_replica_walk(self):
        n_workers, n_elements = 2, 5
        server, workers = self.run_async_ps(n_workers, n_elements)
        expected = self.async_ps_tiny_reference(n_workers, n_elements)
        for rank, worker in enumerate(workers):
            assert worker.round_digests == expected[rank], f"rank {rank}"
        assert server.counters["updates"] == n_workers * ITERATIONS
        assert server.counters["staleness_max"] == n_workers - 1
        # Workers measured their own version gaps from the pull stamps.
        assert all(
            w.counters["version_gap_max"] <= n_workers - 1 for w in workers
        )

    def test_async_ps_lossy_session_recovers_bit_identically(self):
        """Dropped pushes must be retransmitted and lost pulls re-served
        from the server's cycle cache, without double-applying anything."""
        server, workers = self.run_async_ps(2, 5, loss_rate=0.3)
        assert server.counters["drops_injected"] > 0
        assert sum(w.counters["help_sent"] for w in workers) > 0
        assert server.counters["updates"] == 2 * ITERATIONS
        expected = self.async_ps_tiny_reference(2, 5)
        for rank, worker in enumerate(workers):
            assert worker.round_digests == expected[rank], f"rank {rank}"

    def test_async_ps_worker_requires_join(self):
        worker = LiveAsyncPsWorker(
            rank=0,
            n_workers=1,
            algorithm=TinyAlgorithm(),
            endpoint=None,
            server_addr=(LOOPBACK, 1),
        )
        with pytest.raises(RuntimeError, match="join"):
            worker.train(1)


@needs_loopback
class TestTreeInProcess:
    """A full two-rack tree in threads: AGG + 2 ToRs + 4 workers."""

    def test_tree_session_matches_nested_reference(self):
        n_elements, rack = 5, 2
        agg_endpoint = UdpEndpoint()
        agg = SoftwareSwitch(n_workers=2, endpoint=agg_endpoint)
        tor_endpoints = [UdpEndpoint() for _ in range(2)]
        tors = [
            SoftwareSwitch(
                n_workers=rack,
                endpoint=tor_endpoints[index],
                parent_addr=agg_endpoint.address,
                rank=index,
            )
            for index in range(2)
        ]
        deadline = time.monotonic() + 60.0
        switch_threads = [
            threading.Thread(
                target=s.serve,
                kwargs={"deadline": deadline, "poll_interval": 0.05},
                daemon=True,
            )
            for s in [agg] + tors
        ]
        for thread in switch_threads:
            thread.start()
        workers = [
            LiveWorker(
                rank=rank,
                n_workers=rack,  # the worker's barrier is its rack's SetH
                algorithm=TinyAlgorithm(n_elements, seed=rank),
                endpoint=UdpEndpoint(),
                switch_addr=tor_endpoints[rank // rack].address,
                recovery_timeout=0.05,
                max_recovery_attempts=20,
            )
            for rank in range(4)
        ]
        try:
            run_in_threads(
                [
                    lambda w=w: (w.join(), w.train(ITERATIONS))
                    for w in workers
                ]
            )
            for thread in switch_threads:
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "a switch never drained"
        finally:
            agg_endpoint.close()
            for endpoint in tor_endpoints:
                endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        # The tree's float32 association: per-rack partials, then the
        # partials in ToR order.
        fleet = [TinyAlgorithm(n_elements, seed=r) for r in range(4)]
        expected = []
        for _ in range(ITERATIONS):
            gradients = [w.compute_gradient() for w in fleet]
            partials = [
                gradients[0] + gradients[1],
                gradients[2] + gradients[3],
            ]
            total = partials[0] + partials[1]
            expected.append(_digest(total))
            for worker in fleet:
                worker.apply_update(total.astype(np.float64) / 4)
        for worker in workers:
            assert worker.round_digests == expected
        for tor in tors:
            assert tor.counters["upstream_forwards"] == ITERATIONS
            assert tor.counters["parent_relays"] == ITERATIONS
        assert agg.counters["results_broadcast"] == ITERATIONS
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[3].algorithm.get_weights(),
        )


class TestPsServerLogic:
    def addr(self, rank):
        return (LOOPBACK, 41000 + rank)

    def up(self, rank, round_index, chunk, vector):
        import struct

        return (
            b"U"
            + struct.pack("<BII", rank, round_index, chunk)
            + vector.astype("<f4").tobytes()
        )

    def join_all(self, server, n):
        for rank in range(n):
            server.handle_frame(b"J" + bytes([rank]), self.addr(rank))

    def test_join_and_go_barrier(self):
        server = PsServer(n_workers=2)
        first = server.handle_frame(b"J\x00", self.addr(0))
        assert [f for f, _ in first] == [b"A"]
        second = server.handle_frame(b"J\x01", self.addr(1))
        assert [f for f, _ in second] == [b"A", b"G", b"G"]
        late = server.handle_frame(b"J\x00", self.addr(0))
        assert [f for f, _ in late] == [b"A", b"G"]

    def test_rank_order_float64_sum_and_dedup(self):
        server = PsServer(n_workers=2)
        self.join_all(server, 2)
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = np.array([0.5, -1.5], dtype=np.float32)
        assert server.handle_frame(self.up(1, 0, 0, b), self.addr(1)) == []
        assert server.handle_frame(self.up(1, 0, 0, b), self.addr(1)) == []
        assert server.counters["duplicates_dropped"] == 1
        out = server.handle_frame(self.up(0, 0, 0, a), self.addr(0))
        assert [addr for _, addr in out] == [self.addr(0), self.addr(1)]
        down = out[0][0]
        assert down[:1] == b"D"
        total = np.frombuffer(down, dtype="<f8", offset=9)
        np.testing.assert_array_equal(
            total, (a.astype(np.float64) + b.astype(np.float64))
        )
        # A retransmission racing completion is dropped, not re-summed.
        assert server.handle_frame(self.up(0, 0, 0, a), self.addr(0)) == []
        assert server.counters["duplicates_dropped"] == 2

    def test_resend_served_from_cache(self):
        import struct

        server = PsServer(n_workers=1)
        self.join_all(server, 1)
        vector = np.ones(3, dtype=np.float32)
        out = server.handle_frame(self.up(0, 0, 0, vector), self.addr(0))
        resend = server.handle_frame(
            b"H" + struct.pack("<BII", 0, 0, 0), self.addr(0)
        )
        assert resend == [(out[0][0], self.addr(0))]
        assert server.counters["resends_served"] == 1
        # Unknown (round, chunk): nothing to serve yet.
        assert (
            server.handle_frame(
                b"H" + struct.pack("<BII", 0, 5, 0), self.addr(0)
            )
            == []
        )

    def test_loss_injection_drops_gradients(self):
        # random.Random(0).random() == 0.844..., below a 0.9 loss rate.
        server = PsServer(n_workers=1, loss_rate=0.9, loss_seed=0)
        self.join_all(server, 1)
        vector = np.ones(3, dtype=np.float32)
        assert server.handle_frame(self.up(0, 0, 0, vector), self.addr(0)) == []
        assert server.counters["drops_injected"] == 1
        assert server.counters["chunks_summed"] == 0

    def test_result_cache_pruned_below_round_window(self):
        server = PsServer(n_workers=1)
        self.join_all(server, 1)
        vector = np.ones(1, dtype=np.float32)
        for round_index in range(5):
            server.handle_frame(
                self.up(0, round_index, 0, vector), self.addr(0)
            )
        assert sorted(r for r, _ in server._results) == [2, 3, 4]

    def test_malformed_frames_counted_not_fatal(self):
        server = PsServer(n_workers=1)
        assert server.handle_frame(b"", self.addr(0)) == []
        assert server.handle_frame(b"U\x00", self.addr(0)) == []
        assert server.handle_frame(b"Z???", self.addr(0)) == []
        assert server.counters["decode_errors"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_workers"):
            PsServer(n_workers=0)
        with pytest.raises(ValueError, match="loss_rate"):
            PsServer(n_workers=1, loss_rate=1.0)


@needs_loopback
class TestTransport:
    def test_send_recv_round_trip(self):
        with UdpEndpoint() as a, UdpEndpoint() as b:
            a.send(b"hello", b.address)
            got = b.recv(timeout=2.0)
            assert got is not None
            frame, addr = got
            assert frame == b"hello"
            assert addr[0] == LOOPBACK

    def test_recv_timeout_returns_none(self):
        with UdpEndpoint() as endpoint:
            assert endpoint.recv(timeout=0.05) is None

    def test_double_close_is_harmless(self):
        endpoint = UdpEndpoint()
        endpoint.close()
        endpoint.close()

    def test_loopback_probe(self):
        assert loopback_available() is True

    def test_peer_table_lookup_and_pickling(self):
        import pickle

        table = PeerTable(
            workers={0: (LOOPBACK, 1000), 1: (LOOPBACK, 1001)},
            servers={"shard0": (LOOPBACK, 2000)},
        )
        assert table.worker(1) == (LOOPBACK, 1001)
        assert table.server("shard0") == (LOOPBACK, 2000)
        clone = pickle.loads(pickle.dumps(table))
        assert clone == table


@needs_loopback
class TestInProcessEndToEnd:
    """Worker/server loops in threads: the full protocol without forks."""

    def run_switch_session(self, n_workers, iterations, loss_rate=0.0):
        switch_endpoint = UdpEndpoint()
        switch = SoftwareSwitch(
            n_workers=n_workers,
            endpoint=switch_endpoint,
            loss_rate=loss_rate,
            loss_seed=3,
        )
        server_thread = threading.Thread(
            target=switch.serve,
            kwargs={"deadline": time.monotonic() + 60.0, "poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        workers = [
            LiveWorker(
                rank=rank,
                n_workers=n_workers,
                algorithm=TinyAlgorithm(n_elements=5, seed=rank),
                endpoint=UdpEndpoint(),
                switch_addr=switch_endpoint.address,
                recovery_timeout=0.05,
                max_recovery_attempts=20,
            )
            for rank in range(n_workers)
        ]
        try:
            run_in_threads(
                [
                    lambda w=w: (w.join(), w.train(iterations))
                    for w in workers
                ]
            )
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "switch never drained"
        finally:
            switch_endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        return switch, workers

    def test_two_worker_session_matches_reference(self):
        switch, workers = self.run_switch_session(n_workers=2, iterations=3)
        expected = tiny_reference(2, 3)
        for worker in workers:
            assert worker.round_digests == expected
        assert switch.done
        assert switch.stats_snapshot()["engine_completions"] == 3
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[1].algorithm.get_weights(),
        )

    def test_lossy_session_recovers_and_matches_reference(self):
        switch, workers = self.run_switch_session(
            n_workers=2, iterations=3, loss_rate=0.3
        )
        assert switch.counters["drops_injected"] > 0
        recoveries = sum(w.counters["help_sent"] for w in workers)
        assert recoveries > 0
        for worker in workers:
            assert worker.round_digests == tiny_reference(2, 3)

    def run_ps_session(self, n_elements, iterations, loss_rate=0.0):
        server_endpoint = UdpEndpoint()
        server = PsServer(
            n_workers=2,
            endpoint=server_endpoint,
            loss_rate=loss_rate,
            loss_seed=3,
        )
        server_thread = threading.Thread(
            target=server.serve,
            kwargs={"deadline": time.monotonic() + 60.0, "poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        workers = [
            LivePsWorker(
                rank=rank,
                n_workers=2,
                algorithm=TinyAlgorithm(n_elements=n_elements, seed=rank),
                endpoint=UdpEndpoint(),
                server_addr=server_endpoint.address,
                recovery_timeout=0.05,
                max_recovery_attempts=40,
            )
            for rank in range(2)
        ]
        try:
            run_in_threads(
                [lambda w=w: (w.join(), w.train(iterations)) for w in workers]
            )
            server_thread.join(timeout=10.0)
            assert not server_thread.is_alive(), "ps server never drained"
        finally:
            server_endpoint.close()
            for worker in workers:
                worker.endpoint.close()
        return server, workers

    def test_ps_session_matches_rank_order_reference(self):
        server, workers = self.run_ps_session(PS_CHUNK_ELEMS + 3, 2)
        assert workers[0].round_digests == workers[1].round_digests
        assert server.counters["chunks_summed"] == 2 * 2  # 2 chunks x 2 rounds
        np.testing.assert_array_equal(
            workers[0].algorithm.get_weights(),
            workers[1].algorithm.get_weights(),
        )

    def test_lossy_ps_session_recovers_bit_identically(self):
        server, workers = self.run_ps_session(20, ITERATIONS, loss_rate=0.3)
        assert server.counters["drops_injected"] > 0
        assert sum(w.counters["help_sent"] for w in workers) > 0
        expected = tiny_reference(2, ITERATIONS, n_elements=20, float64=True)
        for worker in workers:
            assert worker.round_digests == expected

    def test_worker_requires_join_before_train(self):
        worker = LiveWorker(
            rank=0,
            n_workers=1,
            algorithm=TinyAlgorithm(),
            endpoint=None,
            switch_addr=(LOOPBACK, 1),
        )
        with pytest.raises(RuntimeError, match="join"):
            worker.train(1)

    def test_worker_rejects_bad_recovery_timeout(self):
        with pytest.raises(ValueError, match="recovery_timeout"):
            LiveWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=None,
                switch_addr=(LOOPBACK, 1),
                recovery_timeout=0.0,
            )

    def test_worker_gives_up_after_max_attempts(self):
        """A dead switch: the watchdog must abandon the round, not hang."""
        with UdpEndpoint() as endpoint, UdpEndpoint() as blackhole:
            worker = LiveWorker(
                rank=0,
                n_workers=1,
                algorithm=TinyAlgorithm(),
                endpoint=endpoint,
                switch_addr=blackhole.address,  # bound but never served
                recovery_timeout=0.01,
                max_recovery_attempts=2,
            )
            worker.threshold = 1  # pretend the join happened
            with pytest.raises(RuntimeError, match="abandoned"):
                worker.train(1)
            assert worker.counters["watchdog_timeouts"] >= 2

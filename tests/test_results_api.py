"""Regression tests for the PR-6 API redesign.

* ``run_sync``/``run_async`` are deprecated wrappers over
  ``run(ExperimentConfig(...))`` and must stay bit-identical.
* ``TrainingResult.extras`` is a deprecated alias over typed fields.
"""

import numpy as np
import pytest

from repro.distributed import ExperimentConfig, run
from repro.distributed.results import TrainingResult
from repro.distributed.runner import run_async, run_sync


def _weights(result):
    return [w.algorithm.get_weights() for w in result.workers]


class TestDeprecatedRunners:
    def test_run_sync_warns(self):
        with pytest.warns(DeprecationWarning, match="run_sync"):
            run_sync("isw", "synth", n_workers=2, n_iterations=2, seed=3)

    def test_run_async_warns(self):
        with pytest.warns(DeprecationWarning, match="run_async"):
            run_async("isw", "synth", n_workers=2, n_updates=4, seed=3)

    def test_run_sync_bit_identical_to_config(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_sync("isw", "synth", n_workers=3, n_iterations=4, seed=11)
        modern = run(
            ExperimentConfig(
                strategy="isw",
                workload="synth",
                mode="sync",
                n_workers=3,
                iterations=4,
                seed=11,
                telemetry=False,
            )
        )
        assert legacy.elapsed == modern.elapsed
        for old, new in zip(_weights(legacy), _weights(modern)):
            assert np.array_equal(old, new)

    def test_run_async_bit_identical_to_config(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_async(
                "isw", "synth", n_workers=3, n_updates=6, seed=11,
                staleness_bound=2,
            )
        modern = run(
            ExperimentConfig(
                strategy="isw",
                workload="synth",
                mode="async",
                n_workers=3,
                iterations=6,
                seed=11,
                staleness_bound=2,
                telemetry=False,
            )
        )
        assert legacy.elapsed == modern.elapsed
        assert legacy.mean_staleness == modern.mean_staleness
        for old, new in zip(_weights(legacy), _weights(modern)):
            assert np.array_equal(old, new)

    def test_run_sync_rejects_unknown_strategy(self):
        with pytest.raises(KeyError):
            with pytest.warns(DeprecationWarning):
                run_sync("nope", "synth")


def _result(**kwargs):
    return TrainingResult(
        strategy="isw",
        workload="synth",
        n_workers=2,
        iterations=2,
        elapsed=1.0,
        **kwargs,
    )


class TestExtrasAlias:
    def test_access_warns(self):
        result = _result()
        with pytest.warns(DeprecationWarning, match="extras is deprecated"):
            result.extras

    def test_typed_field_readable_through_alias(self):
        result = _result(mean_staleness=1.5, commits=7)
        with pytest.warns(DeprecationWarning):
            extras = result.extras
        assert extras["mean_staleness"] == 1.5
        assert extras["commits"] == 7

    def test_alias_write_updates_typed_field(self):
        result = _result()
        with pytest.warns(DeprecationWarning):
            result.extras["mean_staleness"] = 2.5
        assert result.mean_staleness == 2.5

    def test_none_typed_field_is_absent_key(self):
        result = _result()
        with pytest.warns(DeprecationWarning):
            extras = result.extras
        assert "mean_staleness" not in extras
        with pytest.raises(KeyError):
            extras["mean_staleness"]

    def test_unknown_keys_round_trip(self):
        result = _result()
        with pytest.warns(DeprecationWarning):
            result.extras["custom_note"] = "hello"
        with pytest.warns(DeprecationWarning):
            assert result.extras["custom_note"] == "hello"

    def test_dict_assignment_replaces_contents(self):
        result = _result(commits=3)
        with pytest.warns(DeprecationWarning):
            result.extras = {"mean_staleness": 9.0}
        assert result.mean_staleness == 9.0
        assert result.commits is None

    def test_typed_fields_preferred_spelling(self):
        result = run(
            ExperimentConfig(
                strategy="isw",
                workload="synth",
                mode="async",
                n_workers=2,
                iterations=4,
                seed=0,
                telemetry=False,
            )
        )
        assert result.backend == "sim"
        assert result.mean_staleness is not None
        assert result.commits is not None


class TestJobIdConfig:
    def test_job_id_range_validated(self):
        with pytest.raises(ValueError, match="job_id"):
            ExperimentConfig(strategy="isw", workload="synth", job_id=128)
        with pytest.raises(ValueError, match="job_id"):
            ExperimentConfig(strategy="isw", workload="synth", job_id=-1)

    def test_job_id_requires_iswitch(self):
        config = ExperimentConfig(
            strategy="ar",
            workload="synth",
            n_workers=2,
            iterations=2,
            job_id=3,
            telemetry=False,
        )
        with pytest.raises(ValueError, match="iSwitch"):
            run(config)

    def test_nonzero_job_id_trains(self):
        base = dict(
            strategy="isw",
            workload="synth",
            mode="sync",
            n_workers=2,
            iterations=3,
            seed=5,
            telemetry=False,
        )
        tagged = run(ExperimentConfig(job_id=7, **base))
        plain = run(ExperimentConfig(**base))
        # The wire-carried job id must not perturb the numerics.
        for old, new in zip(_weights(plain), _weights(tagged)):
            assert np.array_equal(old, new)

"""Edge cases across the distributed layer: tiny clusters, odd configs."""

import numpy as np
import pytest

from repro.core.accelerator import AggregationEngine
from repro.core.protocol import DataSegment
from repro.distributed import (
    AsyncISwitch,
    build_cluster,
    run_async,
    run_sync,
)
from repro.workloads import get_profile


class TestTinyClusters:
    def test_single_worker_sync_isw(self):
        result = run_sync("isw", "ppo", n_workers=1, n_iterations=3, seed=0)
        assert result.iterations == 3
        assert result.workers[0].algorithm.updates_applied == 3

    def test_single_worker_sync_ps(self):
        result = run_sync("ps", "ppo", n_workers=1, n_iterations=3, seed=0)
        assert result.iterations == 3

    def test_single_worker_ar_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            run_sync("ar", "ppo", n_workers=1, n_iterations=3, seed=0)

    def test_single_worker_async_isw(self):
        result = run_async("isw", "ppo", n_workers=1, n_updates=5, seed=0)
        assert result.iterations == 5
        # With one worker, every gradient is its own round: staleness <= 1.
        assert result.extras["max_staleness"] <= 1

    def test_single_worker_async_ps(self):
        result = run_async("ps", "ppo", n_workers=1, n_updates=5, seed=0)
        assert result.iterations == 5
        assert result.extras["mean_staleness"] == 0.0

    def test_two_worker_cluster(self):
        result = run_sync("isw", "a2c", n_workers=2, n_iterations=4, seed=0)
        assert result.n_workers == 2
        np.testing.assert_allclose(
            result.workers[0].algorithm.get_weights(),
            result.workers[1].algorithm.get_weights(),
            atol=1e-5,
        )


class TestOddClusterSizes:
    @pytest.mark.parametrize("n_workers", [5, 7, 10])
    def test_irregular_rack_fills(self, n_workers):
        result = run_sync(
            "isw", "ppo", n_workers=n_workers, n_iterations=2, seed=0
        )
        assert result.n_workers == n_workers
        assert all(w.iterations_done == 2 for w in result.workers)


class TestEngineCornerCases:
    def test_renumber_with_dedup(self):
        engine = AggregationEngine(threshold=2, dedup=True)
        engine.arrival_renumber = 1
        # Same (sender, commit) twice: dedup keys on the renumbered seg,
        # so the duplicate within one round is dropped.
        engine.contribute(
            DataSegment(seg=0, data=np.ones(1, dtype=np.float32), sender="a", commit_id=1)
        )
        result = engine.contribute(
            DataSegment(seg=0, data=np.ones(1, dtype=np.float32), sender="a", commit_id=1)
        )
        assert result is None
        assert engine.stats.duplicates_dropped == 1

    def test_threshold_change_midstream(self):
        engine = AggregationEngine(threshold=4)
        engine.contribute(DataSegment(seg=0, data=np.ones(1, dtype=np.float32)))
        engine.contribute(DataSegment(seg=0, data=np.ones(1, dtype=np.float32)))
        engine.set_threshold(2)
        # The next contribution sees the lowered bar.
        result = engine.contribute(
            DataSegment(seg=0, data=np.ones(1, dtype=np.float32))
        )
        assert result is not None
        assert result.data[0] == pytest.approx(3.0)

    def test_zero_length_never_occurs_but_empty_data_is_safe(self):
        engine = AggregationEngine(threshold=1)
        result = engine.contribute(
            DataSegment(seg=0, data=np.zeros(0, dtype=np.float32))
        )
        assert result is not None
        assert result.data.size == 0


class TestAsyncISwitchConfig:
    def test_threshold_on_tree_rejected(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            6, profile, with_server=False, use_iswitch=True, workload="ppo"
        )
        with pytest.raises(ValueError, match="single-switch"):
            AsyncISwitch(net, workers, profile, threshold=2)

    def test_invalid_threshold(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            4, profile, with_server=False, use_iswitch=True, workload="ppo"
        )
        with pytest.raises(ValueError, match="H must be >= 1"):
            AsyncISwitch(net, workers, profile, threshold=0)


class TestDeterminism:
    def test_same_seed_same_simulated_timeline(self):
        a = run_sync("isw", "ppo", n_workers=4, n_iterations=5, seed=42)
        b = run_sync("isw", "ppo", n_workers=4, n_iterations=5, seed=42)
        assert a.elapsed == b.elapsed
        np.testing.assert_array_equal(
            a.workers[0].algorithm.get_weights(),
            b.workers[0].algorithm.get_weights(),
        )

    def test_different_seed_different_gradients(self):
        a = run_sync("isw", "ppo", n_workers=2, n_iterations=3, seed=1)
        b = run_sync("isw", "ppo", n_workers=2, n_iterations=3, seed=2)
        assert not np.allclose(
            a.workers[0].algorithm.get_weights(),
            b.workers[0].algorithm.get_weights(),
        )

    def test_async_same_seed_same_staleness(self):
        a = run_async("isw", "ppo", n_workers=4, n_updates=20, seed=9)
        b = run_async("isw", "ppo", n_workers=4, n_updates=20, seed=9)
        assert a.extras["mean_staleness"] == b.extras["mean_staleness"]
        assert a.elapsed == b.elapsed

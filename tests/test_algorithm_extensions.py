"""Tests for the algorithm extensions: Double DQN, n-step TD, PPO epochs."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.rl import DQN, PPO, GridPong, Hopper1D


class TestDoubleDQN:
    def test_flag_changes_targets(self):
        """Double DQN must bootstrap differently once online and target
        nets disagree on the argmax."""
        vanilla = DQN(GridPong(seed=0), seed=0, warmup=64, init_seed=1)
        double = DQN(
            GridPong(seed=0), seed=0, warmup=64, init_seed=1, double_dqn=True
        )
        # Make the two algorithms' online nets drift from their targets.
        for algo in (vanilla, double):
            for _ in range(10):
                algo.apply_update(algo.compute_gradient().astype(np.float64))
        # Freeze both on the same replay contents & sampling rng.
        state = np.random.default_rng(3)
        vanilla.buffer.rng = np.random.default_rng(42)
        double.buffer.rng = np.random.default_rng(42)
        g_vanilla = vanilla.compute_gradient()
        g_double = double.compute_gradient()
        assert not np.allclose(g_vanilla, g_double)

    def test_double_dqn_learns(self):
        algo = DQN(
            GridPong(seed=1), seed=1, warmup=64, double_dqn=True,
            epsilon_decay_updates=200,
        )
        for _ in range(300):
            algo.apply_update(algo.compute_gradient().astype(np.float64))
        assert len(algo.episode_rewards) > 5


class TestNStepDQN:
    def test_invalid_n_step(self):
        with pytest.raises(ValueError, match="n_step"):
            DQN(GridPong(seed=0), n_step=0)

    def test_transitions_carry_summed_rewards(self):
        algo = DQN(GridPong(seed=0), seed=0, warmup=1, n_step=3, gamma=0.5)
        # Drive the env manually through the accumulator.
        obs = np.zeros(5)
        algo._accumulate_n_step(obs, 0, 1.0, obs, False)
        assert len(algo.buffer) == 0  # not matured yet
        algo._accumulate_n_step(obs, 1, 1.0, obs, False)
        algo._accumulate_n_step(obs, 2, 1.0, obs, False)
        assert len(algo.buffer) == 1
        transition = algo.buffer._storage[0]
        # r + gamma*r + gamma^2*r = 1 + 0.5 + 0.25
        assert transition.reward == pytest.approx(1.75)
        assert transition.action == 0

    def test_episode_end_flushes_pending(self):
        algo = DQN(GridPong(seed=0), seed=0, warmup=1, n_step=5, gamma=1.0)
        obs = np.zeros(5)
        algo._accumulate_n_step(obs, 0, 1.0, obs, False)
        algo._accumulate_n_step(obs, 1, 2.0, obs, True)  # terminal
        assert len(algo.buffer) == 2
        first, second = algo.buffer._storage
        assert first.reward == pytest.approx(3.0)
        assert first.done
        assert second.reward == pytest.approx(2.0)

    def test_n_step_training_runs(self):
        algo = DQN(GridPong(seed=0), seed=0, warmup=64, n_step=3)
        for _ in range(30):
            algo.apply_update(algo.compute_gradient().astype(np.float64))
        assert algo.updates_applied == 30


class TestPPOEpochs:
    def test_invalid_epochs(self):
        with pytest.raises(ValueError, match="epochs"):
            PPO(Hopper1D(seed=0), epochs=0)

    def test_rollout_reused_across_epochs(self):
        algo = PPO(Hopper1D(seed=0), seed=0, epochs=3, rollout_steps=16)
        env_steps_before = algo.env._steps
        algo.compute_gradient()
        rollout_a = algo._stored_rollout
        algo.compute_gradient()
        algo.compute_gradient()
        # Same stored rollout: no new environment interaction happened.
        assert algo._stored_rollout is rollout_a
        assert algo._epochs_used == 3
        # The 4th call collects fresh data.
        algo.compute_gradient()
        assert algo._stored_rollout is not rollout_a
        assert algo._epochs_used == 1

    def test_epoch_gradients_differ_after_updates(self):
        """Within one rollout, applying updates changes the ratio term, so
        successive epoch gradients differ — that is PPO's whole point."""
        algo = PPO(Hopper1D(seed=0), seed=0, epochs=2, rollout_steps=32)
        g1 = algo.compute_gradient()
        algo.apply_update(g1.astype(np.float64))
        g2 = algo.compute_gradient()
        assert not np.allclose(g1, g2)

    def test_multi_epoch_training_improves(self):
        algo = PPO(Hopper1D(seed=2), seed=2, epochs=4, rollout_steps=64)
        for _ in range(60):
            algo.apply_update(algo.compute_gradient().astype(np.float64))
        assert len(algo.episode_rewards) >= 4
        early = np.mean(algo.episode_rewards[:2])
        late = np.mean(algo.episode_rewards[-2:])
        assert late >= early - 5.0  # not diverging

"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, RMSProp


def quadratic_steps(optimizer_factory, steps=200):
    """Minimize f(x) = (x - 3)^2 from x = 0; return final x."""
    param = Parameter(np.array([0.0]))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        param.grad = 2.0 * (param.data - 3.0)
        optimizer.step()
    return float(param.data[0])


class TestSGD:
    def test_single_step(self):
        param = Parameter(np.array([1.0]))
        SGD([param], lr=0.1).step_if_grad = None
        optimizer = SGD([param], lr=0.1)
        param.grad = np.array([2.0])
        optimizer.step()
        assert param.data[0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: SGD(p, lr=0.1))
        assert final == pytest.approx(3.0, abs=1e-4)

    def test_momentum_accelerates(self):
        slow = quadratic_steps(lambda p: SGD(p, lr=0.01), steps=50)
        fast = quadratic_steps(lambda p: SGD(p, lr=0.01, momentum=0.9), steps=50)
        assert abs(fast - 3.0) < abs(slow - 3.0)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_params_without_grad_skipped(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()  # no grad — no movement, no crash
        assert param.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: Adam(p, lr=0.1), steps=500)
        assert final == pytest.approx(3.0, abs=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, |Δx| of the first step equals lr.
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=0.05)
        param.grad = np.array([123.0])
        optimizer.step()
        assert abs(param.data[0]) == pytest.approx(0.05, rel=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_state_is_per_parameter(self):
        a = Parameter(np.array([0.0]))
        b = Parameter(np.array([0.0]))
        optimizer = Adam([a, b], lr=0.1)
        a.grad = np.array([1.0])
        b.grad = np.array([-1.0])
        optimizer.step()
        assert a.data[0] < 0 < b.data[0]


class TestRMSProp:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: RMSProp(p, lr=0.05), steps=500)
        assert final == pytest.approx(3.0, abs=1e-2)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], alpha=1.0)


class TestCommon:
    def test_positive_lr_required(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.zero_grad()
        assert param.grad is None

    def test_identical_update_sequences_identical_weights(self):
        """The determinism contract decentralized weight storage needs."""
        runs = []
        for _ in range(2):
            param = Parameter(np.full(4, 0.5))
            optimizer = Adam([param], lr=0.01)
            for step in range(20):
                param.grad = np.full(4, np.sin(step))
                optimizer.step()
            runs.append(param.data.copy())
        np.testing.assert_array_equal(runs[0], runs[1])

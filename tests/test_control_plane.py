"""Unit tests for the membership table."""

import pytest

from repro.core.control_plane import MembershipTable, MemberType


class TestJoinLeave:
    def test_join_assigns_unique_ids(self):
        table = MembershipTable()
        a = table.join("w0", 9999)
        b = table.join("w1", 9999)
        assert a.member_id != b.member_id
        assert len(table) == 2

    def test_join_idempotent_on_address(self):
        table = MembershipTable()
        first = table.join("w0", 9999)
        second = table.join("w0", 9999)
        assert first is second
        assert len(table) == 1

    def test_leave(self):
        table = MembershipTable()
        table.join("w0", 9999)
        assert table.leave("w0") is True
        assert table.leave("w0") is False
        assert len(table) == 0
        assert "w0" not in table

    def test_contains_and_get(self):
        table = MembershipTable()
        table.join("w0", 9999)
        assert "w0" in table
        assert table.get("w0").address == "w0"
        assert table.get("nope") is None

    def test_invalid_member_type(self):
        with pytest.raises(ValueError, match="member type"):
            MembershipTable().join("x", 1, member_type="router")


class TestQueries:
    def test_workers_filter(self):
        table = MembershipTable()
        table.join("w0", 1, MemberType.WORKER)
        table.join("tor1", 1, MemberType.SWITCH)
        table.join("w1", 1, MemberType.WORKER)
        assert {e.address for e in table.workers} == {"w0", "w1"}

    def test_children_of(self):
        table = MembershipTable()
        root = table.join("root", 1, MemberType.SWITCH)
        table.join("w0", 1, parent=root.member_id)
        table.join("w1", 1, parent=root.member_id)
        table.join("w2", 1, parent=None)
        children = table.children_of(root.member_id)
        assert {e.address for e in children} == {"w0", "w1"}

    def test_addresses_in_join_order(self):
        table = MembershipTable()
        for name in ("c", "a", "b"):
            table.join(name, 1)
        assert table.addresses == ["c", "a", "b"]

    def test_ids_not_reused_after_leave(self):
        table = MembershipTable()
        first = table.join("w0", 1)
        table.leave("w0")
        second = table.join("w1", 1)
        assert second.member_id > first.member_id

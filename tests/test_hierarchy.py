"""Tests for the aggregation-hierarchy configurator."""

import pytest

from repro.core import ISwitch, configure_aggregation, iswitch_factory
from repro.core.hierarchy import _port_toward, aggregation_switches
from repro.netsim import Simulator, build_rack_tree, build_star
from repro.netsim.switch import EthernetSwitch


class TestConfigure:
    def test_flat_star_has_no_parents(self):
        net = build_star(Simulator(), 3, switch_factory=iswitch_factory)
        switches = configure_aggregation(net)
        assert len(switches) == 1
        assert switches[0].parent_address is None
        assert switches[0].engine.threshold == 3

    def test_two_layer_parents(self):
        net = build_rack_tree(Simulator(), 6, switch_factory=iswitch_factory)
        configure_aggregation(net)
        by_name = {s.name: s for s in net.switches}
        assert by_name["tor0"].parent_address == "root"
        assert by_name["tor1"].parent_address == "root"
        assert by_name["root"].parent_address is None
        # Root's members are the ToRs, not workers.
        assert set(by_name["root"].members.addresses) == {"tor0", "tor1"}

    def test_plain_switch_rejected(self):
        net = build_star(Simulator(), 2)
        with pytest.raises(TypeError, match="plain"):
            configure_aggregation(net)

    def test_mixed_fabric_rejected(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, switch_factory=iswitch_factory)
        # Sneak a plain switch in as one ToR.
        net.switches[0] = EthernetSwitch(sim, "fake")
        with pytest.raises(TypeError):
            configure_aggregation(net)

    def test_aggregation_switches_validates(self):
        net = build_star(Simulator(), 2, switch_factory=iswitch_factory)
        assert len(aggregation_switches(net)) == 1
        plain = build_star(Simulator(), 2)
        with pytest.raises(TypeError):
            aggregation_switches(plain)

    def test_missing_uplink_detected(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, switch_factory=iswitch_factory)
        # Remove the first ToR's default route: the hierarchy can no
        # longer be inferred.
        net.switches[0]._default_route = None
        with pytest.raises(ValueError, match="no uplink"):
            configure_aggregation(net)


class TestPortToward:
    def test_finds_the_connecting_port(self):
        net = build_rack_tree(Simulator(), 6, switch_factory=iswitch_factory)
        root = net.root
        tor = net.switches[0]
        port = _port_toward(root, tor)
        assert port.peer.device is tor

    def test_unconnected_devices_raise(self):
        net_a = build_star(Simulator(), 2, switch_factory=iswitch_factory)
        net_b = build_star(Simulator(), 2, switch_factory=iswitch_factory)
        with pytest.raises(ValueError, match="no link"):
            _port_toward(net_a.switches[0], net_b.switches[0])

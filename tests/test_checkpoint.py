"""Tests for model/algorithm checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    load_algorithm,
    load_model,
    mlp,
    save_algorithm,
    save_model,
)
from repro.rl import DQN, PPO, GridPong, Hopper1D


class TestModelCheckpoint:
    def test_roundtrip(self, tmp_path):
        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_model(net, path)
        other = mlp([4, 8, 2], rng=np.random.default_rng(99))
        load_model(other, path)
        x = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        np.testing.assert_array_equal(net(x).numpy(), other(x).numpy())

    def test_architecture_mismatch_rejected(self, tmp_path):
        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_model(net, path)
        wrong_depth = mlp([4, 8, 8, 2], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="does not match"):
            load_model(wrong_depth, path)

    def test_shape_mismatch_rejected(self, tmp_path):
        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_model(net, path)
        wrong_width = mlp([4, 16, 2], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="shape|does not match"):
            load_model(wrong_width, path)

    def test_empty_module_rejected(self, tmp_path):
        from repro.nn.layers import Module

        with pytest.raises(ValueError, match="no parameters"):
            save_model(Module(), tmp_path / "x.npz")


class TestAlgorithmCheckpoint:
    def test_roundtrip_resumes_state(self, tmp_path):
        algo = DQN(GridPong(seed=0), seed=0, warmup=64)
        for _ in range(20):
            algo.apply_update(algo.compute_gradient().astype(np.float64))
        path = tmp_path / "dqn.npz"
        save_algorithm(algo, path)

        fresh = DQN(GridPong(seed=5), seed=5, warmup=64)
        load_algorithm(fresh, path)
        np.testing.assert_allclose(
            fresh.get_weights(), algo.get_weights(), rtol=1e-6
        )
        assert fresh.updates_applied == algo.updates_applied
        assert fresh.episode_rewards == algo.episode_rewards

    def test_epsilon_resumes_from_update_count(self, tmp_path):
        algo = DQN(GridPong(seed=0), seed=0, warmup=64, epsilon_decay_updates=10)
        algo.updates_applied = 10
        path = tmp_path / "dqn.npz"
        save_algorithm(algo, path)
        fresh = DQN(GridPong(seed=1), seed=1, warmup=64, epsilon_decay_updates=10)
        load_algorithm(fresh, path)
        assert fresh.epsilon == pytest.approx(algo.epsilon)

    def test_wrong_algorithm_rejected(self, tmp_path):
        dqn = DQN(GridPong(seed=0), seed=0, warmup=64)
        path = tmp_path / "dqn.npz"
        save_algorithm(dqn, path)
        ppo = PPO(Hopper1D(seed=0), seed=0)
        with pytest.raises(ValueError, match="checkpoint is for"):
            load_algorithm(ppo, path)

    def test_wrong_size_rejected(self, tmp_path):
        small = DQN(GridPong(seed=0), seed=0, warmup=64, hidden=(8,))
        path = tmp_path / "dqn.npz"
        save_algorithm(small, path)
        big = DQN(GridPong(seed=0), seed=0, warmup=64, hidden=(64, 64))
        with pytest.raises(ValueError, match="parameters"):
            load_algorithm(big, path)

"""Cross-module integration tests: whole-system behaviours."""

import numpy as np
import pytest

from repro.core import (
    AggregationClient,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
)
from repro.distributed import run_async, run_sync
from repro.netsim import Packet, Simulator, build_rack_tree, build_star


class TestDistributedVsSingleNode:
    def test_sync_cluster_equals_local_mean_gradient_training(self):
        """A 2-worker synchronous iSwitch run must produce exactly the
        weights of a local loop applying the same mean gradients."""
        from repro.distributed.runner import make_algorithm

        result = run_sync("isw", "ppo", n_workers=2, n_iterations=4, seed=11)
        distributed = result.workers[0].algorithm.get_weights()

        # Replay locally: two replicas, mean gradient, same update order.
        replicas = [make_algorithm("ppo", seed=11 + i) for i in range(2)]
        for _ in range(4):
            gradients = [r.compute_gradient() for r in replicas]
            mean = np.mean([g.astype(np.float64) for g in gradients], axis=0)
            # Match the wire's float32 rounding of the aggregated sum.
            mean = np.sum(
                [g.astype(np.float32) for g in gradients], axis=0, dtype=np.float32
            ).astype(np.float64) / 2
            for replica in replicas:
                replica.apply_update(mean)
        np.testing.assert_allclose(
            distributed, replicas[0].get_weights(), atol=1e-5
        )


class TestLearningAcrossTheSwitch:
    def test_a2c_learns_through_in_switch_aggregation(self):
        """End-to-end: real rewards improve when every gradient crosses
        the simulated switch accelerator."""
        result = run_sync("isw", "a2c", n_workers=4, n_iterations=250, seed=5)
        algo = result.workers[0].algorithm
        assert len(algo.episode_rewards) >= 20
        early = np.mean(algo.episode_rewards[:10])
        late = np.mean(algo.episode_rewards[-10:])
        assert late > early


class TestHierarchicalAsync:
    def test_async_isw_on_two_racks(self):
        result = run_async("isw", "ppo", n_workers=6, n_updates=25, seed=3)
        assert result.iterations == 25
        assert result.extras["mean_staleness"] <= 3


class TestCoexistence:
    def test_background_traffic_during_aggregation(self):
        """iSwitch 'does not affect the regular network functions': plain
        traffic flows through the same switch while it aggregates."""
        sim = Simulator()
        net = build_star(sim, 3, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(2000)
        done = {}
        clients = [
            AggregationClient(
                w,
                "tor0",
                plan,
                on_round_complete=lambda rnd, vec, n=w.name: done.__setitem__(n, vec),
            )
            for w in net.workers
        ]
        background = []
        net.workers[2].bind(8080, background.append)
        for client in clients:
            client.send_gradient(np.ones(2000, dtype=np.float32), 0)
        for i in range(10):
            net.workers[0].send(
                Packet(
                    src="worker0",
                    dst="worker2",
                    payload_size=500,
                    dst_port=8080,
                )
            )
        sim.run()
        assert len(done) == 3
        assert len(background) == 10
        np.testing.assert_allclose(done["worker0"], 3.0)


class TestScaleInvariantCorrectness:
    @pytest.mark.parametrize("n_workers", [2, 4, 6, 9])
    def test_aggregated_mean_identical_at_any_scale(self, n_workers):
        sim = Simulator()
        if n_workers <= 4:
            net = build_star(sim, n_workers, switch_factory=iswitch_factory)
        else:
            net = build_rack_tree(sim, n_workers, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(777)
        results = {}
        clients = [
            AggregationClient(
                w,
                net.tor_of_worker[i].name,
                plan,
                on_round_complete=lambda rnd, vec, n=w.name: results.__setitem__(
                    n, vec
                ),
            )
            for i, w in enumerate(net.workers)
        ]
        rng = np.random.default_rng(n_workers)
        vectors = [
            rng.standard_normal(777).astype(np.float32) for _ in clients
        ]
        # Snapshot first: the engine adopts a first writable contribution
        # as its accumulation buffer, so senders' arrays may be summed into.
        expected = np.sum(vectors, axis=0)
        for client, vector in zip(clients, vectors):
            client.send_gradient(vector, 0)
        sim.run()
        assert len(results) == n_workers
        for got in results.values():
            np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)


class TestFaultTolerance:
    def test_sync_training_survives_downlink_loss_with_recovery(self):
        """Failure injection: drop ~20% of one worker's packets and verify
        the Help/retransmission path still completes every round."""
        sim = Simulator()

        def factory(s, name):
            from repro.core.switch import ISwitch

            return ISwitch(s, name, dedup=True)

        net = build_star(sim, 3, switch_factory=factory)
        configure_aggregation(net)
        net.links[1].loss_rate = 0.2
        net.links[1].loss_rng = np.random.default_rng(13)
        plan = SegmentPlan(3000)
        completions = {w.name: set() for w in net.workers}
        clients = [
            AggregationClient(
                w,
                "tor0",
                plan,
                on_round_complete=lambda rnd, vec, n=w.name: completions[n].add(rnd),
                recovery_timeout=0.3e-3,
            )
            for w in net.workers
        ]
        for round_index in range(3):
            for client in clients:
                client.send_gradient(
                    np.full(3000, 1.0 + round_index, dtype=np.float32),
                    round_index,
                )
        sim.run(until=0.5)
        for rounds in completions.values():
            assert rounds == {0, 1, 2}

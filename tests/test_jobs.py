"""Tests for multi-job (multi-tenant) switch support."""

import numpy as np
import pytest

from repro.core import (
    Action,
    AggregationClient,
    ControlMessage,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
    make_control_packet,
)
from repro.core.jobs import DEFAULT_JOB, JobState, JobTable
from repro.netsim import Simulator, build_star


class TestJobTable:
    def test_default_job_always_exists(self):
        table = JobTable()
        assert DEFAULT_JOB in table
        assert len(table) == 1

    def test_jobs_created_on_demand(self):
        table = JobTable()
        state = table.get(7)
        assert state.job_id == 7
        assert len(table) == 2
        assert table.get(7) is state  # idempotent

    def test_peek_does_not_create(self):
        table = JobTable()
        assert table.peek(9) is None
        assert len(table) == 1

    def test_remove(self):
        table = JobTable()
        table.get(3)
        assert table.remove(3) is True
        assert table.remove(3) is False
        assert 3 not in table

    def test_default_job_never_removed(self):
        table = JobTable()
        assert table.remove(DEFAULT_JOB) is False
        assert DEFAULT_JOB in table

    def test_capacity_enforced(self):
        table = JobTable(max_jobs=2)
        table.get(1)
        with pytest.raises(RuntimeError, match="full"):
            table.get(2)

    def test_job_id_range(self):
        with pytest.raises(ValueError):
            JobState(-1)
        with pytest.raises(ValueError):
            JobState(0x10000)

    def test_engines_are_independent(self):
        table = JobTable()
        table.get(1).engine.set_threshold(4)
        assert table.get(DEFAULT_JOB).engine.threshold == 1


class TestTwoConcurrentJobs:
    def _cluster(self):
        sim = Simulator()
        net = build_star(sim, 4, switch_factory=iswitch_factory)
        switch = net.switches[0]
        plan = SegmentPlan(500)
        # Job 1: workers 0, 1.  Job 2: workers 2, 3.
        for index in (0, 1):
            switch.add_member(net.workers[index].name, job=1)
        for index in (2, 3):
            switch.add_member(net.workers[index].name, job=2)
        return sim, net, switch, plan

    def test_jobs_aggregate_independently(self):
        sim, net, switch, plan = self._cluster()
        results = {}

        def client(index, job):
            worker = net.workers[index]
            return AggregationClient(
                worker,
                "tor0",
                plan,
                job=job,
                on_round_complete=lambda rnd, vec, n=worker.name: results.__setitem__(
                    n, vec
                ),
            )

        clients = [client(0, 1), client(1, 1), client(2, 2), client(3, 2)]
        # Job 1 aggregates ones; job 2 aggregates tens.  Identical Seg
        # numbers on purpose — the job id must keep them apart.
        for c in clients[:2]:
            c.send_gradient(np.full(500, 1.0, dtype=np.float32), 0)
        for c in clients[2:]:
            c.send_gradient(np.full(500, 10.0, dtype=np.float32), 0)
        sim.run()
        np.testing.assert_allclose(results["worker0"], 2.0)
        np.testing.assert_allclose(results["worker1"], 2.0)
        np.testing.assert_allclose(results["worker2"], 20.0)
        np.testing.assert_allclose(results["worker3"], 20.0)

    def test_results_broadcast_only_to_own_job(self):
        sim, net, switch, plan = self._cluster()
        deliveries = {w.name: [] for w in net.workers}
        clients = [
            AggregationClient(
                net.workers[i],
                "tor0",
                plan,
                job=1 if i < 2 else 2,
                on_round_complete=lambda rnd, vec, n=net.workers[i].name: deliveries[
                    n
                ].append(rnd),
            )
            for i in range(4)
        ]
        for c in clients[:2]:
            c.send_gradient(np.ones(500, dtype=np.float32), 0)
        sim.run()
        # Only job 1's workers received the round.
        assert deliveries["worker0"] == [0]
        assert deliveries["worker1"] == [0]
        assert deliveries["worker2"] == []
        assert deliveries["worker3"] == []

    def test_seth_is_per_job(self):
        sim, net, switch, plan = self._cluster()
        net.workers[0].send(
            make_control_packet(
                "worker0", "tor0", ControlMessage(Action.SETH, 1, job=1)
            )
        )
        sim.run()
        assert switch.jobs.get(1).engine.threshold == 1
        assert switch.jobs.get(2).engine.threshold == 2

    def test_reset_is_per_job(self):
        sim, net, switch, plan = self._cluster()
        from repro.core.protocol import DataSegment

        switch.jobs.get(1).engine.contribute(
            DataSegment(seg=0, data=np.ones(2, dtype=np.float32), job=1)
        )
        switch.jobs.get(2).engine.contribute(
            DataSegment(seg=0, data=np.ones(2, dtype=np.float32), job=2)
        )
        net.workers[0].send(
            make_control_packet(
                "worker0", "tor0", ControlMessage(Action.RESET, job=1)
            )
        )
        sim.run()
        assert switch.jobs.get(1).engine.live_segments == 0
        assert switch.jobs.get(2).engine.live_segments == 1

    def test_last_leave_drops_job_state(self):
        sim, net, switch, plan = self._cluster()
        for name in ("worker2", "worker3"):
            host = net.hosts[name]
            host.send(
                make_control_packet(
                    name, "tor0", ControlMessage(Action.LEAVE, job=2)
                )
            )
        sim.run()
        assert switch.jobs.peek(2) is None

    def test_shared_host_two_jobs(self):
        """One worker participating in two jobs via two clients."""
        sim = Simulator()
        net = build_star(sim, 2, switch_factory=iswitch_factory)
        switch = net.switches[0]
        plan = SegmentPlan(100)
        switch.add_member("worker0", job=1)
        switch.add_member("worker1", job=1)
        switch.add_member("worker0", job=2)
        got = {}
        c_job1 = AggregationClient(
            net.workers[0], "tor0", plan, job=1,
            on_round_complete=lambda r, v: got.__setitem__("job1", v),
        )
        c_job2 = AggregationClient(
            net.workers[0], "tor0", plan, job=2,
            on_round_complete=lambda r, v: got.__setitem__("job2", v),
        )
        c_peer = AggregationClient(net.workers[1], "tor0", plan, job=1)
        c_job1.send_gradient(np.full(100, 1.0, dtype=np.float32), 0)
        c_peer.send_gradient(np.full(100, 2.0, dtype=np.float32), 0)
        c_job2.send_gradient(np.full(100, 7.0, dtype=np.float32), 0)
        sim.run()
        np.testing.assert_allclose(got["job1"], 3.0)
        np.testing.assert_allclose(got["job2"], 7.0)


class TestBackwardCompatibility:
    def test_engine_property_is_job_zero(self):
        sim = Simulator()
        net = build_star(sim, 2, switch_factory=iswitch_factory)
        switch = net.switches[0]
        switch.add_member("worker0")
        assert switch.engine is switch.jobs.get(DEFAULT_JOB).engine
        assert len(switch.members) == 1

    def test_single_job_default_path_unchanged(self):
        sim = Simulator()
        net = build_star(sim, 3, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(200)
        results = {}
        clients = [
            AggregationClient(
                w, "tor0", plan,
                on_round_complete=lambda r, v, n=w.name: results.__setitem__(n, v),
            )
            for w in net.workers
        ]
        for c in clients:
            c.send_gradient(np.ones(200, dtype=np.float32), 0)
        sim.run()
        assert len(results) == 3
        for got in results.values():
            np.testing.assert_allclose(got, 3.0)


class TestJobRegistration:
    """The control-plane register() spelling (fabric submission path)."""

    def test_register_rejects_duplicates(self):
        table = JobTable()
        state = table.register(5)
        assert state.job_id == 5
        with pytest.raises(ValueError, match="already registered"):
            table.register(5)

    def test_register_job_zero_is_always_a_duplicate(self):
        # Job 0 pre-exists on every switch; registering it is a tenant error.
        table = JobTable()
        with pytest.raises(ValueError, match="already registered"):
            table.register(DEFAULT_JOB)

    def test_register_then_get_share_state(self):
        table = JobTable()
        state = table.register(9)
        assert table.get(9) is state

    def test_register_respects_capacity(self):
        table = JobTable(max_jobs=2)
        table.register(1)
        with pytest.raises(RuntimeError, match="full"):
            table.register(2)

    def test_register_max_job_id_bounds(self):
        from repro.core.jobs import MAX_JOB_ID

        table = JobTable()
        assert table.register(MAX_JOB_ID).job_id == MAX_JOB_ID
        with pytest.raises(ValueError):
            table.get(MAX_JOB_ID + 1)
        with pytest.raises(ValueError):
            table.get(-1)

    def test_remove_then_register_succeeds(self):
        table = JobTable()
        table.register(3)
        assert table.remove(3) is True
        assert table.register(3).job_id == 3


class TestMidRoundLeave:
    """A worker leaving while a round is partially aggregated."""

    def _cluster(self, n_workers=3, job=1):
        sim = Simulator()
        net = build_star(sim, n_workers, switch_factory=iswitch_factory)
        switch = net.switches[0]
        for worker in net.workers:
            switch.add_member(worker.name, job=job)
        return sim, net, switch

    def test_leave_shrinks_threshold_and_completes_round(self):
        sim, net, switch = self._cluster(n_workers=3, job=1)
        plan = SegmentPlan(100)
        got = {}
        clients = [
            AggregationClient(
                w, "tor0", plan, job=1,
                on_round_complete=lambda r, v, n=w.name: got.__setitem__(n, v),
            )
            for w in net.workers[:2]
        ]
        for c in clients:
            c.send_gradient(np.ones(100, dtype=np.float32), 0)
        sim.run()
        assert got == {}  # threshold 3, only 2 contributions: round pending
        # The third worker leaves mid-round: threshold drops to 2 and the
        # waiting segment must complete for the remaining members.
        net.workers[2].send(
            make_control_packet(
                "worker2", "tor0", ControlMessage(Action.LEAVE, job=1)
            )
        )
        sim.run()
        assert switch.jobs.get(1).engine.threshold == 2
        np.testing.assert_allclose(got["worker0"], 2.0)
        np.testing.assert_allclose(got["worker1"], 2.0)

    def test_last_leave_mid_round_evicts_partial_state(self):
        sim, net, switch = self._cluster(n_workers=2, job=4)
        plan = SegmentPlan(100)
        client = AggregationClient(net.workers[0], "tor0", plan, job=4)
        client.send_gradient(np.ones(100, dtype=np.float32), 0)
        sim.run()
        assert switch.jobs.get(4).engine.live_segments == 1  # partial live
        for worker in net.workers:
            worker.send(
                make_control_packet(
                    worker.name, "tor0", ControlMessage(Action.LEAVE, job=4)
                )
            )
        sim.run()
        # The whole job state — including the in-flight partial — is gone.
        assert switch.jobs.peek(4) is None
        assert 4 not in switch.jobs

"""Tests for environment wrappers."""

import numpy as np
import pytest

from repro.rl.envs import (
    FrameStack,
    GridPong,
    Hopper1D,
    NormalizeObservation,
    ScaleReward,
)


class TestNormalizeObservation:
    def test_running_stats_converge(self):
        env = NormalizeObservation(GridPong(seed=0))
        rng = np.random.default_rng(0)
        obs = env.reset()
        for _ in range(500):
            obs, _, done, _ = env.step(env.action_space.sample(rng))
            if done:
                obs = env.reset()
        # After many samples, normalized observations are roughly standard.
        samples = []
        obs = env.reset()
        for _ in range(200):
            obs, _, done, _ = env.step(env.action_space.sample(rng))
            samples.append(obs)
            if done:
                obs = env.reset()
        stacked = np.stack(samples)
        assert np.abs(stacked.mean(axis=0)).max() < 1.0
        assert stacked.std(axis=0).max() < 3.0

    def test_observation_size_preserved(self):
        env = NormalizeObservation(GridPong(seed=0))
        assert env.observation_size == GridPong.observation_size
        assert env.reset().shape == (env.observation_size,)

    def test_running_accessors(self):
        env = NormalizeObservation(Hopper1D(seed=0))
        env.reset()
        assert env.running_mean.shape == (4,)
        assert env.running_std.shape == (4,)


class TestFrameStack:
    def test_observation_size_scales(self):
        env = FrameStack(GridPong(seed=0), k=4)
        assert env.observation_size == 4 * GridPong.observation_size
        assert env.reset().shape == (env.observation_size,)

    def test_reset_repeats_first_frame(self):
        env = FrameStack(GridPong(seed=0), k=3)
        obs = env.reset()
        size = GridPong.observation_size
        for frame in range(1, 3):
            np.testing.assert_array_equal(
                obs[:size], obs[frame * size : (frame + 1) * size]
            )

    def test_history_slides(self):
        env = FrameStack(GridPong(seed=0), k=2)
        first = env.reset()
        second, _, _, _ = env.step(1)
        size = GridPong.observation_size
        # The older half of the new stack is the newest half of reset.
        np.testing.assert_array_equal(second[:size], first[size:])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FrameStack(GridPong(seed=0), k=0)


class TestScaleReward:
    def test_scales(self):
        env = ScaleReward(Hopper1D(seed=0), scale=0.1)
        raw = Hopper1D(seed=0)
        env.reset()
        raw.reset()
        action = np.array([0.5])
        _, scaled, _, _ = env.step(action)
        _, original, _, _ = raw.step(action)
        assert scaled == pytest.approx(0.1 * original)

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            ScaleReward(Hopper1D(seed=0), scale=0.0)


class TestWrapperPlumbing:
    def test_action_space_forwarded(self):
        env = FrameStack(GridPong(seed=0), k=2)
        assert env.action_space is GridPong.action_space

    def test_done_propagates(self):
        env = NormalizeObservation(GridPong(seed=0, max_steps=3))
        env.reset()
        done = False
        for _ in range(3):
            _, _, done, _ = env.step(1)
        assert done

    def test_wrappers_compose(self):
        env = NormalizeObservation(FrameStack(GridPong(seed=0), k=2))
        obs = env.reset()
        assert obs.shape == (2 * GridPong.observation_size,)

    def test_seed_forwarded(self):
        env = FrameStack(GridPong(seed=0), k=2)
        env.seed(42)
        first = env.reset()
        env.seed(42)
        second = env.reset()
        np.testing.assert_array_equal(first, second)

    def test_dqn_trains_on_wrapped_env(self):
        from repro.rl import DQN

        env = FrameStack(GridPong(seed=0), k=2)
        algo = DQN(env, seed=0, warmup=64)
        gradient = algo.compute_gradient()
        assert gradient.shape == (algo.n_params,)

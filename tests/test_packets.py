"""Unit tests for the packet model and wire-size accounting."""

import pytest

from repro.netsim.packets import (
    ETHERNET_OVERHEAD,
    IP_HEADER,
    MAX_FRAME,
    MAX_UDP_PAYLOAD,
    MTU,
    UDP_HEADER,
    VLAN_TAG,
    Packet,
)


class TestWireSizes:
    def test_header_constants_match_standards(self):
        assert ETHERNET_OVERHEAD == 18
        assert VLAN_TAG == 4
        assert IP_HEADER == 20
        assert UDP_HEADER == 8
        assert MTU == 1500
        assert MAX_FRAME == 1522  # the paper's quoted max frame size

    def test_max_udp_payload(self):
        assert MAX_UDP_PAYLOAD == MTU - IP_HEADER - UDP_HEADER == 1472

    def test_wire_size_adds_all_headers(self):
        packet = Packet(src="a", dst="b", payload_size=100)
        assert packet.wire_size == 100 + 18 + 4 + 20 + 8

    def test_full_frame_hits_max(self):
        packet = Packet(src="a", dst="b", payload_size=MAX_UDP_PAYLOAD)
        assert packet.wire_size == MAX_FRAME

    def test_empty_payload_allowed(self):
        packet = Packet(src="a", dst="b", payload_size=0)
        assert packet.wire_size == 50


class TestFrameTrains:
    def test_single_frame_overflow_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            Packet(src="a", dst="b", payload_size=MAX_UDP_PAYLOAD + 1)

    def test_train_wire_size_counts_per_frame_headers(self):
        packet = Packet(
            src="a", dst="b", payload_size=3 * MAX_UDP_PAYLOAD, frame_count=3
        )
        assert packet.wire_size == 3 * MAX_FRAME

    def test_train_capacity_validated(self):
        with pytest.raises(ValueError, match="does not fit"):
            Packet(
                src="a",
                dst="b",
                payload_size=2 * MAX_UDP_PAYLOAD + 1,
                frame_count=2,
            )

    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError, match="frame_count"):
            Packet(src="a", dst="b", payload_size=10, frame_count=0)


class TestValidation:
    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Packet(src="a", dst="b", payload_size=-1)

    def test_tos_must_be_one_byte(self):
        with pytest.raises(ValueError, match="ToS"):
            Packet(src="a", dst="b", payload_size=1, tos=256)
        with pytest.raises(ValueError, match="ToS"):
            Packet(src="a", dst="b", payload_size=1, tos=-1)

    def test_packet_ids_unique(self):
        a = Packet(src="a", dst="b", payload_size=1)
        b = Packet(src="a", dst="b", payload_size=1)
        assert a.packet_id != b.packet_id


class TestCopyFor:
    def test_copy_changes_destination_only(self):
        original = Packet(
            src="a",
            dst="b",
            payload_size=77,
            tos=8,
            payload={"k": 1},
            src_port=5,
            dst_port=6,
            frame_count=1,
        )
        clone = original.copy_for("c")
        assert clone.dst == "c"
        assert clone.src == original.src
        assert clone.payload is original.payload
        assert clone.payload_size == original.payload_size
        assert clone.tos == original.tos
        assert clone.packet_id != original.packet_id

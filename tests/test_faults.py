"""Tests for the fault-injection subsystem (repro.faults).

Covers the plan schema + JSON round trip, the Gilbert–Elliott burst-loss
model, seed-derivation determinism (pinned contract), injector unit
behaviour, and the acceptance scenario: the demo plan (worker crash +
rejoin, switch Reset, 2% burst-loss window) completing on every
registered strategy with structured recovery and telemetry.
"""

import json

import numpy as np
import pytest

from repro.distributed import ExperimentConfig, run
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultReport,
    clone_training_state,
    demo_plan,
)
from repro.faults.report import FaultRecord
from repro.netsim.events import Simulator
from repro.netsim.link import GBPS, GilbertElliott
from repro.netsim.topology import build_star

ALL_STRATEGIES = [
    ("sync", "ps"),
    ("sync", "ar"),
    ("sync", "ar-hd"),
    ("sync", "isw"),
    ("sync", "ps-shard"),
    ("async", "ps"),
    ("async", "isw"),
]

PAUSE_STRATEGIES = [
    ("sync", "ps"),
    ("sync", "ar"),
    ("sync", "ar-hd"),
    ("sync", "ps-shard"),
]


def run_cfg(mode, strategy, plan=None, telemetry=False, iterations=12, **kw):
    return run(
        ExperimentConfig(
            strategy=strategy,
            mode=mode,
            workload="dqn",
            n_workers=4,
            iterations=iterations,
            seed=0,
            fault_plan=plan,
            telemetry=telemetry,
            **kw,
        )
    )


# ---------------------------------------------------------------------------
# FaultPlan / FaultEvent schema
# ---------------------------------------------------------------------------
class TestPlanSchema:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            [
                FaultEvent(0.5, "switch-reset", "root"),
                FaultEvent(0.1, "worker-crash", "worker0", {"down_for": 0.01}),
            ]
        )
        assert [e.time for e in plan] == [0.1, 0.5]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(0.0, "meteor-strike", "earth").validate()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(-1.0, "switch-reset", "root").validate()

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(0.0, "switch-reset", "").validate()

    def test_worker_crash_requires_down_for(self):
        with pytest.raises(ValueError, match="down_for"):
            FaultEvent(0.0, "worker-crash", "worker0").validate()

    def test_link_burst_requires_valid_loss(self):
        with pytest.raises(ValueError, match="loss"):
            FaultEvent(
                0.0, "link-burst", "*", {"loss": 0.9, "loss_bad": 0.5}
            ).validate()

    def test_link_burst_requires_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(0.0, "link-burst", "*", {"loss": 0.02}).validate()

    def test_link_degrade_requires_factor_above_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(
                0.0, "link-degrade", "*", {"factor": 0.5, "duration": 1.0}
            ).validate()

    def test_straggler_requires_slowdown_above_one(self):
        with pytest.raises(ValueError, match="slowdown"):
            FaultEvent(
                0.0, "straggler", "worker0", {"slowdown": 1.0, "duration": 1.0}
            ).validate()

    def test_json_round_trip(self, tmp_path):
        plan = demo_plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert [e.to_dict() for e in loaded] == [e.to_dict() for e in plan]

    def test_round_trip_preserves_version(self, tmp_path):
        path = str(tmp_path / "plan.json")
        demo_plan().save(path)
        with open(path) as handle:
            assert json.load(handle)["version"] == 1

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({"version": 99, "events": []})

    def test_unknown_event_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-event keys"):
            FaultEvent.from_dict(
                {"time": 0.0, "kind": "switch-reset", "target": "root",
                 "frobnicate": True}
            )

    def test_example_plan_file_is_loadable(self):
        plan = FaultPlan.load("examples/chaos_demo.json")
        assert [e.kind for e in plan] == [
            "worker-crash", "switch-reset", "link-burst"
        ]


# ---------------------------------------------------------------------------
# Gilbert–Elliott burst-loss model
# ---------------------------------------------------------------------------
class TestGilbertElliott:
    def test_from_mean_loss_hits_target_rate(self):
        model = GilbertElliott.from_mean_loss(0.02)
        assert model.mean_loss_rate() == pytest.approx(0.02)

    def test_empirical_rate_matches_mean(self):
        model = GilbertElliott.from_mean_loss(0.05)
        rng = np.random.default_rng(0)
        n = 200_000
        drops = sum(model.should_drop(rng) for _ in range(n))
        assert drops / n == pytest.approx(0.05, rel=0.15)

    def test_losses_are_bursty(self):
        """Drops cluster: P(drop | previous dropped) >> mean rate."""
        model = GilbertElliott.from_mean_loss(0.02)
        rng = np.random.default_rng(1)
        outcomes = [model.should_drop(rng) for _ in range(200_000)]
        pairs = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a and b
        )
        drops = sum(outcomes)
        conditional = pairs / drops
        assert conditional > 5 * (drops / len(outcomes))

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliott.from_mean_loss(0.6, loss_bad=0.5)

    def test_link_burst_window_drops_packets(self):
        """A loss_model on a lossless link drops packets while installed."""
        from repro.netsim.link import Link
        from repro.netsim.node import Device, Host
        from repro.netsim.packets import Packet

        class Sink(Device):
            def __init__(self, sim, name="sink"):
                super().__init__(sim, name)
                self.received = []

            def handle_packet(self, packet, in_port):
                self.received.append(packet)

        sim = Simulator()
        src, dst = Host(sim, "src"), Sink(sim, "dst")
        link = Link(sim, bandwidth=10 * GBPS)
        link.attach(src, dst)
        link.loss_model = GilbertElliott.from_mean_loss(0.3)
        for _ in range(300):
            src.send(Packet(src="src", dst="dst", payload_size=100))
        sim.run()
        assert link.dropped_packets > 0
        assert len(dst.received) + link.dropped_packets == 300
        # Removing the model restores lossless behaviour.
        link.loss_model = None
        dst.received.clear()
        link.dropped_packets = 0
        for _ in range(50):
            src.send(Packet(src="src", dst="dst", payload_size=100))
        sim.run()
        assert len(dst.received) == 50


# ---------------------------------------------------------------------------
# Loss-seed derivation (pinned contract — referenced from docstrings in
# netsim/link.py and netsim/topology.py)
# ---------------------------------------------------------------------------
class TestLossSeedDerivation:
    def test_loss_seed_derivation_is_deterministic(self):
        """Link i's rng is seeded ``loss_seed + i`` in creation order, so
        two identically-built topologies drop exactly the same packets."""

        def sequences(seed):
            net = build_star(
                Simulator(), 4, with_server=False, loss_rate=0.1, loss_seed=seed
            )
            return [link.loss_rng.random(16).tolist() for link in net.links]

        assert sequences(42) == sequences(42)
        assert sequences(42) != sequences(43)

    def test_link_seeds_offset_by_creation_index(self):
        net = build_star(
            Simulator(), 4, with_server=False, loss_rate=0.1, loss_seed=7
        )
        for index, link in enumerate(net.links):
            expected = np.random.default_rng(7 + index).random(8)
            np.testing.assert_array_equal(link.loss_rng.random(8), expected)


# ---------------------------------------------------------------------------
# Injector unit behaviour
# ---------------------------------------------------------------------------
class TestInjectorUnits:
    def _cluster(self):
        from repro.distributed.runner import build_cluster
        from repro.workloads import get_profile

        return build_cluster(
            2, get_profile("dqn"), with_server=False, use_iswitch=True
        )

    def test_install_twice_rejected(self):
        net, workers = self._cluster()
        injector = FaultInjector(net, workers, object(), demo_plan())
        injector.install()
        with pytest.raises(RuntimeError, match="already installed"):
            injector.install()

    def test_unknown_worker_target_is_skipped(self):
        net, workers = self._cluster()
        plan = FaultPlan(
            [FaultEvent(1e-4, "worker-crash", "worker99", {"down_for": 1e-3})]
        )
        injector = FaultInjector(net, workers, object(), plan)
        injector.install()
        net.sim.run()
        report = injector.finalize()
        assert report.records[0].status == "skipped"
        assert "no worker matches" in report.records[0].detail

    def test_missing_hooks_skip_with_reason(self):
        net, workers = self._cluster()
        plan = FaultPlan(
            [FaultEvent(1e-4, "worker-crash", "worker0", {"down_for": 1e-3})]
        )
        injector = FaultInjector(net, workers, object(), plan)
        injector.install()
        net.sim.run()
        report = injector.finalize()
        assert report.records[0].status == "skipped"
        assert "hook" in report.records[0].detail

    def test_finalize_settles_pending_to_skipped(self):
        net, workers = self._cluster()
        plan = FaultPlan([FaultEvent(1e9, "switch-reset", "root")])
        injector = FaultInjector(net, workers, object(), plan)
        injector.install()
        report = injector.finalize()  # run never happened
        assert report.records[0].status == "skipped"
        assert not report.ok or report.records[0].status == "skipped"

    def test_burst_skipped_without_loss_tolerance(self):
        net, workers = self._cluster()
        plan = FaultPlan(
            [FaultEvent(1e-4, "link-burst", "*",
                        {"loss": 0.02, "duration": 1e-3})]
        )
        injector = FaultInjector(
            net, workers, object(), plan, loss_tolerant=False
        )
        injector.install()
        net.sim.run()
        report = injector.finalize()
        assert report.records[0].status == "skipped"
        assert "no loss recovery" in report.records[0].detail

    def test_report_ok_semantics(self):
        ok = FaultReport(
            records=[
                FaultRecord(FaultEvent(0, "switch-reset", "r"), "recovered"),
                FaultRecord(FaultEvent(0, "switch-reset", "r"), "skipped"),
            ]
        )
        bad = FaultReport(
            records=[FaultRecord(FaultEvent(0, "switch-reset", "r"), "failed")]
        )
        assert ok.ok and not bad.ok
        assert bad.counts() == {"failed": 1}
        assert len(ok.summary()) == 2


# ---------------------------------------------------------------------------
# Replica resynchronization
# ---------------------------------------------------------------------------
class TestCloneTrainingState:
    def test_clone_matches_weights_and_optimizer(self):
        from repro.distributed.runner import make_algorithm

        src = make_algorithm("dqn", seed=0)
        dst = make_algorithm("dqn", seed=1)
        for _ in range(3):
            src.apply_update(src.compute_gradient())
        clone_training_state(src, dst)
        np.testing.assert_array_equal(src.get_weights(), dst.get_weights())
        assert dst.updates_applied == src.updates_applied
        # One more identical update keeps them identical only if optimizer
        # state (momenta etc.) was carried over too.
        grad = np.ones(src.n_params, dtype=np.float32)
        src.apply_update(grad.copy())
        dst.apply_update(grad.copy())
        np.testing.assert_array_equal(src.get_weights(), dst.get_weights())

    def test_type_mismatch_rejected(self):
        from repro.distributed.runner import make_algorithm

        src = make_algorithm("dqn", seed=0)
        dst = make_algorithm("a2c", seed=0)
        with pytest.raises(TypeError):
            clone_training_state(src, dst)


# ---------------------------------------------------------------------------
# ExperimentConfig / CLI plumbing
# ---------------------------------------------------------------------------
class TestConfigPlumbing:
    def test_resolved_fault_plan_from_path(self, tmp_path):
        path = str(tmp_path / "plan.json")
        demo_plan().save(path)
        config = ExperimentConfig(fault_plan=path)
        assert len(config.resolved_fault_plan()) == 3

    def test_resolved_fault_plan_passthrough(self):
        plan = demo_plan()
        assert ExperimentConfig(fault_plan=plan).resolved_fault_plan() is plan

    def test_resolved_fault_plan_rejects_other_types(self):
        with pytest.raises(ValueError, match="fault_plan"):
            ExperimentConfig(fault_plan=123).resolved_fault_plan()

    def test_fault_plan_arms_recovery_timeout(self):
        assert ExperimentConfig().resolved_recovery_timeout() is None
        assert (
            ExperimentConfig(fault_plan=demo_plan()).resolved_recovery_timeout()
            is not None
        )

    def test_cli_fault_plan_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train", "--strategy", "isw", "--workload", "dqn",
                "--workers", "4", "--iterations", "8",
                "--fault-plan", "examples/chaos_demo.json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[recovered]" in out
        assert "worker-crash" in out

    def test_cli_missing_plan_file_errors_cleanly(self, capsys):
        from repro.cli import main

        code = main(
            ["train", "--strategy", "isw", "--fault-plan", "/nonexistent.json"]
        )
        assert code == 2


# ---------------------------------------------------------------------------
# Acceptance scenario: the demo plan on every registered strategy
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def demo_runs():
    """Demo fault plan (crash+rejoin, Reset, burst window) everywhere."""
    return {
        (mode, strategy): run_cfg(mode, strategy, plan=demo_plan(),
                                  telemetry=True)
        for mode, strategy in ALL_STRATEGIES
    }


@pytest.fixture(scope="module")
def clean_runs():
    """Fault-free twins of ``demo_runs`` for convergence comparison."""
    return {
        (mode, strategy): run_cfg(mode, strategy)
        for mode, strategy in ALL_STRATEGIES
    }


class TestDemoPlanAcceptance:
    @pytest.mark.parametrize("mode,strategy", ALL_STRATEGIES)
    def test_completes_with_structured_report(self, demo_runs, mode, strategy):
        result = demo_runs[(mode, strategy)]
        report = result.fault_report
        assert report is not None
        assert report.ok, report.summary()
        assert len(report.records) == 3

    @pytest.mark.parametrize("mode,strategy", ALL_STRATEGIES)
    def test_worker_crash_recovers_everywhere(self, demo_runs, mode, strategy):
        report = demo_runs[(mode, strategy)].fault_report
        crash = next(
            r for r in report.records if r.event.kind == "worker-crash"
        )
        assert crash.status == "recovered"
        assert crash.recovery_latency > 0

    @pytest.mark.parametrize("mode,strategy", ALL_STRATEGIES)
    def test_reset_and_burst_recover_on_iswitch_only(
        self, demo_runs, mode, strategy
    ):
        report = demo_runs[(mode, strategy)].fault_report
        by_kind = {r.event.kind: r for r in report.records}
        expected = "recovered" if strategy == "isw" else "skipped"
        assert by_kind["switch-reset"].status == expected
        assert by_kind["link-burst"].status == expected

    @pytest.mark.parametrize("mode,strategy", PAUSE_STRATEGIES)
    def test_pause_strategies_reach_bit_identical_weights(
        self, demo_runs, clean_runs, mode, strategy
    ):
        """Barrier strategies defer the crashed worker at an iteration
        boundary, so the numerical trajectory is untouched."""
        faulted = demo_runs[(mode, strategy)].workers[0].algorithm.get_weights()
        clean = clean_runs[(mode, strategy)].workers[0].algorithm.get_weights()
        np.testing.assert_array_equal(faulted, clean)

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_iswitch_weights_within_convergence_tolerance(
        self, demo_runs, clean_runs, mode
    ):
        faulted = demo_runs[(mode, "isw")].workers[0].algorithm.get_weights()
        clean = clean_runs[(mode, "isw")].workers[0].algorithm.get_weights()
        assert np.all(np.isfinite(faulted))
        # Real Leave/Join changes membership for a few rounds, so allow a
        # small drift relative to the weight scale.
        assert np.max(np.abs(faulted - clean)) < 0.05 * np.linalg.norm(clean)

    @pytest.mark.parametrize("mode,strategy", ALL_STRATEGIES)
    def test_telemetry_marks_injections_and_recoveries(
        self, demo_runs, mode, strategy
    ):
        snap = demo_runs[(mode, strategy)].telemetry
        injected = len(snap.events_named("fault.injected"))
        recovered = len(snap.events_named("fault.recovered"))
        assert injected >= 1
        assert recovered == injected
        assert snap.value("fault.injected_total") == injected
        assert len(snap.spans_named("fault.recovery")) >= 1

    def test_faulted_run_is_reproducible(self):
        a = run_cfg("sync", "isw", plan=demo_plan(), iterations=8)
        b = run_cfg("sync", "isw", plan=demo_plan(), iterations=8)
        np.testing.assert_array_equal(
            a.workers[0].algorithm.get_weights(),
            b.workers[0].algorithm.get_weights(),
        )
        assert a.elapsed == b.elapsed


# ---------------------------------------------------------------------------
# Strategy-level recovery: burst loss + Leave mid-round (iSwitch modes)
# ---------------------------------------------------------------------------
class TestISwitchRecoveryScenarios:
    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_help_recovery_under_long_burst(self, mode):
        """A burst window spanning several rounds: Help/FBcast-driven
        retransmission must still finish every iteration."""
        plan = FaultPlan(
            [
                FaultEvent(
                    5e-3, "link-burst", "*",
                    {"loss": 0.05, "duration": 60e-3},
                )
            ]
        )
        result = run_cfg(mode, "isw", plan=plan, telemetry=True, iterations=10)
        assert result.fault_report.ok
        weights = result.workers[0].algorithm.get_weights()
        assert np.all(np.isfinite(weights))
        if mode == "sync":
            assert all(w.iterations_done == 10 for w in result.workers)
        # Recovery machinery actually fired: the switch saw duplicate
        # retransmissions (dedup'd) or clients resent after Help.
        snap = result.telemetry
        assert snap.value("link.packets_dropped") > 0

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_worker_leave_mid_round(self, mode):
        """A crash that lands mid-round drives real Leave/Join + SetH;
        the remaining members must finish the round via the sweep."""
        # A sync-isw iteration is ~90 ms wall (wire transfers dominate the
        # 11.5 ms LGC), and a pending crash is consumed at the target's own
        # iteration boundary — so the crash lands during iteration 1 and
        # the restore arrives well after the Leave has taken effect.
        plan = FaultPlan(
            [FaultEvent(100e-3, "worker-crash", "worker2",
                        {"down_for": 200e-3})]
        )
        result = run_cfg(mode, "isw", plan=plan, telemetry=True, iterations=12)
        report = result.fault_report
        assert report.records[0].status == "recovered"
        weights = result.workers[2].algorithm.get_weights()
        assert np.all(np.isfinite(weights))
        # The rejoined worker resynced: its weights agree with a live one.
        # Sync replicas march in lockstep after the Join; async replicas
        # always differ by whatever in-flight rounds each had applied when
        # the run drained, so the rejoined one only has to sit inside that
        # natural envelope.
        reference = result.workers[0].algorithm.get_weights()
        atol = 1e-3 if mode == "sync" else 2e-2
        np.testing.assert_allclose(weights, reference, atol=atol)

    def test_sync_isw_crashed_worker_misses_iterations(self):
        # Crash consumed at worker1's ~180 ms boundary; the 250 ms outage
        # then spans two-plus full iterations before the Join.
        plan = FaultPlan(
            [FaultEvent(100e-3, "worker-crash", "worker1",
                        {"down_for": 250e-3})]
        )
        result = run_cfg("sync", "isw", plan=plan, iterations=12)
        done = [w.iterations_done for w in result.workers]
        assert done[1] < 12  # crashed worker skipped rounds while down
        assert max(done) == 12

    def test_straggler_slows_only_the_window(self):
        plan = FaultPlan(
            [FaultEvent(10e-3, "straggler", "worker0",
                        {"slowdown": 5.0, "duration": 30e-3})]
        )
        slow = run_cfg("sync", "isw", plan=plan, iterations=10)
        fast = run_cfg("sync", "isw", iterations=10)
        assert slow.fault_report.records[0].status == "recovered"
        assert slow.elapsed > fast.elapsed

    def test_link_degrade_applies_to_any_strategy(self):
        plan = FaultPlan(
            [FaultEvent(5e-3, "link-degrade", "*",
                        {"factor": 4.0, "duration": 40e-3})]
        )
        degraded = run_cfg("sync", "ps", plan=plan, iterations=10)
        clean = run_cfg("sync", "ps", iterations=10)
        assert degraded.fault_report.records[0].status == "recovered"
        assert degraded.elapsed > clean.elapsed
        np.testing.assert_array_equal(
            degraded.workers[0].algorithm.get_weights(),
            clean.workers[0].algorithm.get_weights(),
        )

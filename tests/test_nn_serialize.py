"""Unit tests for parameter/gradient flattening."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    flatten_grads,
    flatten_params,
    load_flat_grads,
    load_flat_params,
    mlp,
    model_wire_bytes,
    param_vector_size,
)


def make_net(seed=0):
    return mlp([3, 8, 2], rng=np.random.default_rng(seed))


class TestFlattenParams:
    def test_roundtrip(self):
        net = make_net()
        vector = flatten_params(net)
        other = make_net(seed=99)
        load_flat_params(other, vector)
        np.testing.assert_allclose(
            flatten_params(other), vector, rtol=1e-6
        )

    def test_vector_is_float32(self):
        assert flatten_params(make_net()).dtype == np.float32

    def test_size_matches_param_count(self):
        net = make_net()
        assert flatten_params(net).shape == (param_vector_size(net),)
        assert model_wire_bytes(net) == param_vector_size(net) * 4

    def test_wrong_size_rejected(self):
        net = make_net()
        with pytest.raises(ValueError, match="flat vector"):
            load_flat_params(net, np.zeros(3, dtype=np.float32))


class TestFlattenGrads:
    def test_missing_grads_become_zeros(self):
        net = make_net()
        vector = flatten_grads(net)
        assert vector.shape == (net.n_parameters,)
        np.testing.assert_array_equal(vector, 0.0)

    def test_grads_roundtrip(self):
        net = make_net()
        net(Tensor(np.ones((2, 3)))).sum().backward()
        vector = flatten_grads(net)
        assert np.abs(vector).sum() > 0
        other = make_net(seed=1)
        load_flat_grads(other, vector)
        np.testing.assert_allclose(flatten_grads(other), vector, rtol=1e-6)

    def test_load_grads_overwrites_not_accumulates(self):
        net = make_net()
        load_flat_grads(net, np.ones(net.n_parameters, dtype=np.float32))
        load_flat_grads(net, np.full(net.n_parameters, 2.0, dtype=np.float32))
        np.testing.assert_array_equal(flatten_grads(net), 2.0)

    def test_layout_stable_across_calls(self):
        net = make_net()
        net(Tensor(np.ones((2, 3)))).sum().backward()
        first = flatten_grads(net)
        second = flatten_grads(net)
        np.testing.assert_array_equal(first, second)

"""Integration-level tests for the iSwitch data and control planes."""

import numpy as np
import pytest

from repro.core import (
    Action,
    AggregationClient,
    ControlMessage,
    ISwitch,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
    make_control_packet,
)
from repro.netsim import Packet, Simulator, build_rack_tree, build_star


def star_cluster(n_workers=4, n_elements=1000, **plan_kwargs):
    sim = Simulator()
    net = build_star(sim, n_workers, switch_factory=iswitch_factory)
    configure_aggregation(net)
    plan = SegmentPlan(n_elements, **plan_kwargs)
    results = {}
    clients = []
    for worker in net.workers:
        clients.append(
            AggregationClient(
                worker,
                "tor0",
                plan,
                on_round_complete=lambda rnd, vec, n=worker.name: results.setdefault(
                    n, {}
                ).__setitem__(rnd, vec),
            )
        )
    return sim, net, plan, clients, results


class TestSingleSwitchAggregation:
    def test_all_workers_receive_exact_sum(self):
        sim, net, plan, clients, results = star_cluster()
        rng = np.random.default_rng(0)
        vectors = [rng.standard_normal(1000).astype(np.float32) for _ in clients]
        # Snapshot first: the engine adopts a first writable contribution
        # as its accumulation buffer, so senders' arrays may be summed into.
        expected = np.sum(vectors, axis=0)
        for client, vector in zip(clients, vectors):
            client.send_gradient(vector, round_index=0)
        sim.run()
        assert len(results) == 4
        for chunks in results.values():
            np.testing.assert_allclose(chunks[0], expected, rtol=1e-5)

    def test_multiple_rounds_do_not_mix(self):
        sim, net, plan, clients, results = star_cluster(n_elements=400)
        for round_index in range(3):
            for i, client in enumerate(clients):
                vector = np.full(400, float(round_index * 10 + 1), dtype=np.float32)
                client.send_gradient(vector, round_index=round_index)
        sim.run()
        for chunks in results.values():
            for round_index in range(3):
                expected = 4.0 * (round_index * 10 + 1)
                np.testing.assert_allclose(chunks[round_index], expected)

    def test_two_hops_for_aggregation(self):
        """The headline claim: worker->switch, switch->worker (Figure 1c).

        The uplink contribution crosses one hop to the switch; the switch
        emits a fresh result packet that crosses one hop back — two network
        hops total, versus four for PS and 4N−4 for Ring-AllReduce.
        """
        sim, net, plan, clients, results = star_cluster(n_elements=10)
        received_packets = []
        original = net.workers[0]._handlers[9999]

        def spy(packet):
            received_packets.append(packet)
            original(packet)

        net.workers[0]._handlers[9999] = spy
        for client in clients:
            client.send_gradient(np.ones(10, dtype=np.float32), 0)
        sim.run()
        switch = net.switches[0]
        # Downstream result packets each crossed exactly one hop...
        assert received_packets and all(p.hops == 1 for p in received_packets)
        # ...and the uplink contributions crossed exactly one hop, so the
        # full aggregation took two.  The switch never forwarded tagged
        # traffic through the regular (multi-hop) pipeline.
        assert switch.forwarded_packets == 0
        assert switch.result_broadcasts == plan.n_chunks

    def test_aggregation_latency_close_to_two_serializations(self):
        sim, net, plan, clients, results = star_cluster(
            n_elements=366 * 64  # 64 full frames
        )
        for client in clients:
            client.send_gradient(
                np.ones(366 * 64, dtype=np.float32), round_index=0
            )
        sim.run()
        one_way = 64 * 1522 * 8 / 10e9
        # On-the-fly pipelining: strictly less than a store-and-forward
        # round trip (2x), and at least one serialization.
        assert one_way < sim.now < 2.2 * one_way

    def test_regular_traffic_unaffected(self):
        sim, net, plan, clients, results = star_cluster()
        got = []
        net.workers[1].bind(80, got.append)
        net.workers[0].send(
            Packet(src="worker0", dst="worker1", payload_size=100, dst_port=80)
        )
        sim.run()
        assert len(got) == 1
        assert got[0].tos == 0


class TestControlPlaneMessages:
    def make(self):
        sim = Simulator()
        net = build_star(sim, 2, switch_factory=iswitch_factory)
        switch = net.switches[0]
        return sim, net, switch

    def test_join_registers_member_and_grows_h(self):
        sim, net, switch = self.make()
        for worker in net.workers:
            worker.send(
                make_control_packet(
                    worker.name, "tor0", ControlMessage(Action.JOIN, "worker")
                )
            )
        sim.run()
        assert len(switch.members) == 2
        assert switch.engine.threshold == 2

    def test_join_acked(self):
        sim, net, switch = self.make()
        acks = []
        AggregationClient(
            net.workers[0],
            "tor0",
            SegmentPlan(10),
            on_control=lambda m: acks.append(m),
        )
        net.workers[0].send(
            make_control_packet("worker0", "tor0", ControlMessage(Action.JOIN))
        )
        sim.run()
        assert len(acks) == 1
        assert acks[0].action == Action.ACK
        assert acks[0].value is True

    def test_leave_removes_member(self):
        sim, net, switch = self.make()
        switch.add_member("worker0")
        switch.add_member("worker1")
        net.workers[0].send(
            make_control_packet("worker0", "tor0", ControlMessage(Action.LEAVE))
        )
        sim.run()
        assert len(switch.members) == 1
        assert switch.engine.threshold == 1

    def test_seth_overrides_threshold(self):
        sim, net, switch = self.make()
        switch.add_member("worker0")
        switch.add_member("worker1")
        net.workers[0].send(
            make_control_packet("worker0", "tor0", ControlMessage(Action.SETH, 1))
        )
        sim.run()
        assert switch.engine.threshold == 1

    def test_reset_clears_engine(self):
        sim, net, switch = self.make()
        switch.add_member("worker0")
        switch.add_member("worker1")
        from repro.core.protocol import DataSegment

        switch.engine.contribute(
            DataSegment(seg=0, data=np.ones(4, dtype=np.float32))
        )
        net.workers[0].send(
            make_control_packet("worker0", "tor0", ControlMessage(Action.RESET))
        )
        sim.run()
        assert switch.engine.live_segments == 0

    def test_halt_relayed_to_members(self):
        sim, net, switch = self.make()
        halts = []
        for worker in net.workers:
            AggregationClient(
                worker,
                "tor0",
                SegmentPlan(10),
                on_control=lambda m: halts.append(m.action),
            )
            worker.send(
                make_control_packet(worker.name, "tor0", ControlMessage(Action.JOIN))
            )
        sim.run()
        net.workers[0].send(
            make_control_packet("worker0", "tor0", ControlMessage(Action.HALT))
        )
        sim.run()
        assert halts.count(Action.HALT) == 2

    def test_fbcast_forces_partial_result(self):
        sim = Simulator()
        net = build_star(sim, 2, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(10)
        results = {}
        clients = [
            AggregationClient(
                w,
                "tor0",
                plan,
                on_round_complete=lambda rnd, vec, n=w.name: results.__setitem__(
                    n, vec
                ),
            )
            for w in net.workers
        ]
        # Only one of two workers contributes; then force the broadcast.
        clients[0].send_gradient(np.full(10, 3.0, dtype=np.float32), 0)
        sim.run()
        assert not results
        net.workers[0].send(
            make_control_packet("worker0", "tor0", ControlMessage(Action.FBCAST, 0))
        )
        sim.run()
        assert len(results) == 2
        np.testing.assert_allclose(results["worker1"], 3.0)


class TestHierarchicalAggregation:
    @pytest.mark.parametrize("n_workers", [6, 9, 12])
    def test_tree_sum_correct(self, n_workers):
        sim = Simulator()
        net = build_rack_tree(sim, n_workers, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(2000, frames_per_chunk=2)
        results = {}
        clients = []
        for i, worker in enumerate(net.workers):
            clients.append(
                AggregationClient(
                    worker,
                    net.tor_of_worker[i].name,
                    plan,
                    on_round_complete=lambda rnd, vec, n=worker.name: results.__setitem__(
                        n, vec
                    ),
                )
            )
        rng = np.random.default_rng(42)
        vectors = [
            rng.standard_normal(2000).astype(np.float32) for _ in clients
        ]
        expected = np.sum(vectors, axis=0)
        for client, vector in zip(clients, vectors):
            client.send_gradient(vector, 0)
        sim.run()
        assert len(results) == n_workers
        for got in results.values():
            np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    def test_root_aggregates_per_rack_partials(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, switch_factory=iswitch_factory)
        configure_aggregation(net)
        root = net.root
        tors = [s for s in net.switches if s is not root]
        assert root.engine.threshold == len(tors)
        for tor in tors:
            assert tor.parent_address == "root"
            assert tor.engine.threshold == 3

    def test_upstream_traffic_counted(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(100)
        clients = [
            AggregationClient(w, net.tor_of_worker[i].name, plan)
            for i, w in enumerate(net.workers)
        ]
        for client in clients:
            client.send_gradient(np.ones(100, dtype=np.float32), 0)
        sim.run()
        tors = [s for s in net.switches if s is not net.root]
        assert all(t.upstream_forwards == plan.n_chunks for t in tors)
        assert net.root.result_broadcasts == plan.n_chunks


class TestMixedEngineErrors:
    def test_non_iswitch_topology_rejected(self):
        sim = Simulator()
        net = build_star(sim, 2)  # plain switches
        with pytest.raises(TypeError, match="plain"):
            configure_aggregation(net)

    def test_data_packet_with_bad_payload_raises(self):
        sim = Simulator()
        net = build_star(sim, 2, switch_factory=iswitch_factory)
        from repro.core.protocol import TOS_DATA_UP

        net.workers[0].send(
            Packet(
                src="worker0",
                dst="tor0",
                payload_size=10,
                tos=TOS_DATA_UP,
                payload="not a segment",
            )
        )
        with pytest.raises(TypeError, match="DataSegment"):
            sim.run()

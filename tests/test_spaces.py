"""Unit tests for action-space descriptors."""

import numpy as np
import pytest

from repro.rl.spaces import Box, Discrete


class TestDiscrete:
    def test_sample_in_range(self):
        space = Discrete(5)
        rng = np.random.default_rng(0)
        samples = [space.sample(rng) for _ in range(100)]
        assert all(0 <= s < 5 for s in samples)
        assert len(set(samples)) > 1

    def test_contains(self):
        space = Discrete(3)
        assert space.contains(0)
        assert space.contains(np.int64(2))
        assert not space.contains(3)
        assert not space.contains(-1)
        assert not space.contains(1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Discrete(0)


class TestBox:
    def test_sample_within_bounds(self):
        space = Box(dim=3, low=-2.0, high=2.0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            sample = space.sample(rng)
            assert space.contains(sample)

    def test_contains_checks_shape_and_bounds(self):
        space = Box(dim=2)
        assert space.contains(np.zeros(2))
        assert not space.contains(np.zeros(3))
        assert not space.contains(np.array([0.0, 2.0]))

    def test_clip(self):
        space = Box(dim=2, low=-1.0, high=1.0)
        clipped = space.clip(np.array([5.0, -5.0]))
        np.testing.assert_array_equal(clipped, [1.0, -1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            Box(dim=0)
        with pytest.raises(ValueError):
            Box(dim=1, low=1.0, high=-1.0)

"""Unit tests for the replay buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl.legacy import LegacyReplayBuffer
from repro.rl.replay import ReplayBuffer, Transition


def make_transition(i):
    return Transition(
        state=np.array([float(i)]),
        action=i % 3,
        reward=float(i),
        next_state=np.array([float(i + 1)]),
        done=i % 5 == 0,
    )


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        for i in range(5):
            buf.push(make_transition(i))
        assert len(buf) == 5

    def test_capacity_ring(self):
        buf = ReplayBuffer(3, np.random.default_rng(0))
        for i in range(7):
            buf.push(make_transition(i))
        assert len(buf) == 3
        rewards = {t.reward for t in buf._storage}
        assert rewards == {4.0, 5.0, 6.0}

    def test_sample_shapes(self):
        buf = ReplayBuffer(100, np.random.default_rng(0))
        for i in range(50):
            buf.push(make_transition(i))
        batch = buf.sample(16)
        assert batch.states.shape == (16, 1)
        assert batch.actions.shape == (16,)
        assert batch.rewards.shape == (16,)
        assert batch.next_states.shape == (16, 1)
        assert batch.dones.shape == (16,)

    def test_sample_without_replacement_when_possible(self):
        buf = ReplayBuffer(100, np.random.default_rng(0))
        for i in range(20):
            buf.push(make_transition(i))
        batch = buf.sample(20)
        assert len(set(batch.rewards.tolist())) == 20

    def test_sample_with_replacement_when_small(self):
        buf = ReplayBuffer(100, np.random.default_rng(0))
        buf.push(make_transition(0))
        batch = buf.sample(4)
        assert batch.states.shape == (4, 1)

    def test_sample_empty_raises(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        with pytest.raises(ValueError, match="empty"):
            buf.sample(1)

    def test_invalid_batch_size(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        buf.push(make_transition(0))
        with pytest.raises(ValueError):
            buf.sample(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, np.random.default_rng(0))

    def test_dones_as_float(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        buf.push(make_transition(0))  # done=True
        batch = buf.sample(1)
        assert batch.dones.dtype == np.float64
        assert batch.dones[0] == 1.0


class TestRingProperties:
    """Property tests (hypothesis) for the PR 10 preallocated ring.

    The legacy list-of-tuples buffer is the executable spec: for any
    push/sample schedule the ring must hold the same transitions in the
    same slot order and draw the same batches from the same rng stream.
    """

    @given(capacity=st.integers(1, 25), n_pushes=st.integers(0, 80))
    @settings(max_examples=60, deadline=None)
    def test_wraparound_keeps_newest_in_slot_order(self, capacity, n_pushes):
        ring = ReplayBuffer(capacity, np.random.default_rng(0))
        legacy = LegacyReplayBuffer(capacity, np.random.default_rng(0))
        for i in range(n_pushes):
            ring.push(make_transition(i))
            legacy.push(make_transition(i))
        assert [t.reward for t in ring._storage] == [
            t.reward for t in legacy._storage
        ]
        if n_pushes > capacity:
            # Every survivor is one of the newest `capacity` transitions.
            survivors = {t.reward for t in ring._storage}
            assert survivors == {float(i) for i in range(n_pushes - capacity, n_pushes)}

    @given(capacity=st.integers(1, 25), n_pushes=st.integers(0, 80))
    @settings(max_examples=60, deadline=None)
    def test_len_saturates_at_capacity(self, capacity, n_pushes):
        ring = ReplayBuffer(capacity, np.random.default_rng(0))
        for i in range(n_pushes):
            ring.push(make_transition(i))
        assert len(ring) == min(capacity, n_pushes)

    @given(
        capacity=st.integers(2, 30),
        n_pushes=st.integers(1, 60),
        batch_size=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_sample_indices_cover_only_live_slots(
        self, capacity, n_pushes, batch_size
    ):
        ring = ReplayBuffer(capacity, np.random.default_rng(1))
        for i in range(n_pushes):
            ring.push(make_transition(i))
        batch = ring.sample(batch_size)
        live = {t.reward for t in ring._storage}
        assert set(batch.rewards.tolist()) <= live
        if batch_size <= len(ring):
            # Drawn without replacement: no slot repeats.
            assert len(set(batch.rewards.tolist())) == batch_size

    @given(
        capacity=st.integers(1, 25),
        schedule=st.lists(
            st.tuples(st.integers(1, 6), st.integers(1, 8)), max_size=8
        ),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_rng_stream_matches_legacy(self, capacity, schedule, seed):
        """Interleaved push/sample: both buffers stay on one rng stream."""
        ring = ReplayBuffer(capacity, np.random.default_rng(seed))
        legacy = LegacyReplayBuffer(capacity, np.random.default_rng(seed))
        i = 0
        for n_push, batch_size in schedule:
            for _ in range(n_push):
                ring.push(make_transition(i))
                legacy.push(make_transition(i))
                i += 1
            a = ring.sample(batch_size)
            b = legacy.sample(batch_size)
            assert a.states.tobytes() == b.states.tobytes()
            assert a.actions.tolist() == b.actions.tolist()
            assert a.rewards.tobytes() == b.rewards.tobytes()
            assert a.next_states.tobytes() == b.next_states.tobytes()
            assert a.dones.tobytes() == b.dones.tobytes()

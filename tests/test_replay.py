"""Unit tests for the replay buffer."""

import numpy as np
import pytest

from repro.rl.replay import ReplayBuffer, Transition


def make_transition(i):
    return Transition(
        state=np.array([float(i)]),
        action=i % 3,
        reward=float(i),
        next_state=np.array([float(i + 1)]),
        done=i % 5 == 0,
    )


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        for i in range(5):
            buf.push(make_transition(i))
        assert len(buf) == 5

    def test_capacity_ring(self):
        buf = ReplayBuffer(3, np.random.default_rng(0))
        for i in range(7):
            buf.push(make_transition(i))
        assert len(buf) == 3
        rewards = {t.reward for t in buf._storage}
        assert rewards == {4.0, 5.0, 6.0}

    def test_sample_shapes(self):
        buf = ReplayBuffer(100, np.random.default_rng(0))
        for i in range(50):
            buf.push(make_transition(i))
        batch = buf.sample(16)
        assert batch.states.shape == (16, 1)
        assert batch.actions.shape == (16,)
        assert batch.rewards.shape == (16,)
        assert batch.next_states.shape == (16, 1)
        assert batch.dones.shape == (16,)

    def test_sample_without_replacement_when_possible(self):
        buf = ReplayBuffer(100, np.random.default_rng(0))
        for i in range(20):
            buf.push(make_transition(i))
        batch = buf.sample(20)
        assert len(set(batch.rewards.tolist())) == 20

    def test_sample_with_replacement_when_small(self):
        buf = ReplayBuffer(100, np.random.default_rng(0))
        buf.push(make_transition(0))
        batch = buf.sample(4)
        assert batch.states.shape == (4, 1)

    def test_sample_empty_raises(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        with pytest.raises(ValueError, match="empty"):
            buf.sample(1)

    def test_invalid_batch_size(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        buf.push(make_transition(0))
        with pytest.raises(ValueError):
            buf.sample(0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, np.random.default_rng(0))

    def test_dones_as_float(self):
        buf = ReplayBuffer(10, np.random.default_rng(0))
        buf.push(make_transition(0))  # done=True
        batch = buf.sample(1)
        assert batch.dones.dtype == np.float64
        assert batch.dones[0] == 1.0

"""Differential property tests: calendar queue vs the reference heap.

The calendar scheduler (`repro.netsim.events.CalendarSimulator`) promises
*identical dispatch order* to the reference heap `Simulator` — same
``(time, seq)`` total order, same tie-breaking, same lazy-cancel
semantics — differing only in queue cost.  These tests drive both
schedulers through the same seeded operation scripts (ties, cancels,
nested scheduling from inside callbacks, partial runs) and assert the
observable traces are equal, including with pathological wheel
geometries that force constant overflow and rebasing.
"""

import random

import pytest

from repro.netsim.events import (
    DEFAULT_BUCKET_WIDTH,
    DEFAULT_N_BUCKETS,
    CalendarSimulator,
    SimError,
    Simulator,
    make_simulator,
)

#: Delays are drawn from a coarse grid so exact-tie timestamps are common
#: (tie-breaking by insertion seq is exactly what we need to exercise).
GRID = 1e-6


def _drive(sim, seed):
    """Run one seeded script on ``sim``; return the full observable trace.

    The script mixes every scheduling entry point (relative/absolute,
    cancellable/fire-and-forget), cancels a fraction of pending events,
    and lets callbacks schedule follow-ups and cancel peers mid-run.  All
    randomness comes from a private ``random.Random(seed)`` consumed in
    dispatch order, so two simulators that dispatch identically replay
    the identical script.
    """
    rng = random.Random(seed)
    log = []
    cancellable = []

    def make_cb(label):
        def fire():
            log.append((sim.now, label))
            roll = rng.random()
            if roll < 0.20:
                sim.schedule_fire(
                    GRID * rng.randrange(0, 40), make_cb(label + "f")
                )
            elif roll < 0.35:
                cancellable.append(
                    sim.schedule(
                        GRID * rng.randrange(0, 40), make_cb(label + "e")
                    )
                )
            elif roll < 0.45 and cancellable:
                cancellable.pop(rng.randrange(len(cancellable))).cancel()

        return fire

    # Wave 1: a burst across every entry point, heavy on ties.
    for i in range(250):
        delay = GRID * rng.randrange(0, 120)
        kind = rng.randrange(4)
        label = f"s{i}"
        if kind == 0:
            sim.schedule_fire(delay, make_cb(label))
        elif kind == 1:
            cancellable.append(sim.schedule(delay, make_cb(label)))
        elif kind == 2:
            sim.schedule_fire_at(sim.now + delay, make_cb(label))
        else:
            cancellable.append(sim.schedule_at(sim.now + delay, make_cb(label)))
    for _ in range(40):
        if cancellable:
            # Some targets already fired; cancel() must be a harmless
            # no-op for those, exactly like on the heap.
            cancellable.pop(rng.randrange(len(cancellable))).cancel()

    # Partial run: stop mid-burst, observe, then continue.
    sim.run(until=GRID * 40)
    checkpoint = (sim.now, sim.processed_events, len(log))

    # Wave 2 from the advanced clock, reaching far past the first wave.
    for i in range(120):
        delay = GRID * rng.randrange(0, 400)
        label = f"t{i}"
        if rng.randrange(2):
            sim.schedule_fire(delay, make_cb(label))
        else:
            cancellable.append(sim.schedule(delay, make_cb(label)))
    for _ in range(20):
        if cancellable:
            cancellable.pop(rng.randrange(len(cancellable))).cancel()
    sim.run(max_events=150)
    checkpoint2 = (sim.now, sim.processed_events, len(log))
    sim.run()
    return {
        "log": log,
        "checkpoint": checkpoint,
        "checkpoint2": checkpoint2,
        "final_now": sim.now,
        "processed": sim.processed_events,
        "pending": sim.pending_events,
    }


class TestDifferentialDispatchOrder:
    @pytest.mark.parametrize("seed", range(8))
    def test_calendar_matches_heap_trace(self, seed):
        assert _drive(CalendarSimulator(), seed) == _drive(Simulator(), seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_tiny_wheel_forces_rebase_and_still_matches(self, seed):
        # 2 buckets x 1 µs: nearly everything lands in overflow and the
        # wheel rebases continuously — the worst case for the cursor /
        # rebase / horizon-edge logic.
        tiny = CalendarSimulator(bucket_width=GRID, n_buckets=2)
        assert _drive(tiny, seed) == _drive(Simulator(), seed)

    @pytest.mark.parametrize("seed", range(4))
    def test_wide_buckets_still_match(self, seed):
        # Buckets much wider than the tie grid: whole bursts pile into
        # one bucket heap, exercising intra-bucket ordering.
        wide = CalendarSimulator(bucket_width=64 * GRID, n_buckets=16)
        assert _drive(wide, seed) == _drive(Simulator(), seed)


class TestSameTimestampTies:
    def test_exact_ties_dispatch_in_insertion_order(self):
        for sim in (Simulator(), CalendarSimulator()):
            order = []
            for i in range(20):
                sim.schedule_fire(5e-6, lambda i=i: order.append(i))
            sim.run()
            assert order == list(range(20))

    def test_ties_across_entry_points_interleave_by_seq(self):
        traces = []
        for sim in (Simulator(), CalendarSimulator()):
            order = []
            sim.schedule_fire(1e-6, lambda: order.append("fire0"))
            sim.schedule(1e-6, lambda: order.append("event0"))
            sim.schedule_fire_at(1e-6, lambda: order.append("fire_at"))
            sim.schedule_at(1e-6, lambda: order.append("event_at"))
            sim.run()
            traces.append(order)
        assert traces[0] == traces[1] == [
            "fire0", "event0", "fire_at", "event_at",
        ]


class TestCancellation:
    def test_cancelled_events_skipped_and_accounting_matches(self):
        for sim in (Simulator(), CalendarSimulator()):
            fired = []
            keep = sim.schedule(2e-6, lambda: fired.append("keep"))
            drop = sim.schedule(1e-6, lambda: fired.append("drop"))
            drop.cancel()
            drop.cancel()  # idempotent
            assert sim.pending_events == 1
            sim.run()
            assert fired == ["keep"]
            assert keep.cancelled is False

    def test_mass_cancel_triggers_sweep_without_losing_live_events(self):
        for sim in (Simulator(), CalendarSimulator()):
            fired = []
            doomed = [
                sim.schedule(GRID * (i % 7), lambda: fired.append("x"))
                for i in range(300)
            ]
            sim.schedule(GRID * 3, lambda: fired.append("live"))
            for event in doomed:
                event.cancel()
            # Scheduling after heavy cancellation is what trips the sweep.
            sim.schedule(GRID * 4, lambda: fired.append("live2"))
            sim.run()
            assert fired == ["live", "live2"]


class TestCalendarSpecifics:
    def test_make_simulator_selects_backend(self):
        assert type(make_simulator("heap")) is Simulator
        assert type(make_simulator("calendar")) is CalendarSimulator
        with pytest.raises(ValueError, match="scheduler"):
            make_simulator("wheel-of-fortune")

    def test_defaults_are_sane(self):
        sim = CalendarSimulator()
        assert sim._width == DEFAULT_BUCKET_WIDTH
        assert sim._n_buckets == DEFAULT_N_BUCKETS

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError, match="bucket_width"):
            CalendarSimulator(bucket_width=0.0)
        with pytest.raises(ValueError, match="n_buckets"):
            CalendarSimulator(n_buckets=1)

    def test_past_scheduling_rejected_like_heap(self):
        sim = CalendarSimulator()
        sim.schedule_fire(1e-6, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.schedule(-1e-9, lambda: None)
        with pytest.raises(SimError):
            sim.schedule_at(sim.now - 1e-6, lambda: None)

    def test_reset_clears_wheel_and_overflow(self):
        sim = CalendarSimulator(bucket_width=GRID, n_buckets=2)
        for i in range(50):
            sim.schedule(GRID * i * 10, lambda: None)
        sim.reset()
        assert sim.pending_events == 0
        assert sim.now == 0.0
        fired = []
        sim.schedule(GRID, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_far_future_event_survives_in_overflow(self):
        sim = CalendarSimulator(bucket_width=GRID, n_buckets=4)
        fired = []
        # Far beyond the 4 µs wheel horizon.
        sim.schedule_fire(1.0, lambda: fired.append(sim.now))
        sim.schedule_fire(GRID, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [GRID, 1.0]

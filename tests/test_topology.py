"""Unit tests for the topology builders."""

import pytest

from repro.netsim.events import Simulator
from repro.netsim.packets import Packet
from repro.netsim.topology import build_rack_tree, build_star


class TestStar:
    def test_worker_names_and_count(self):
        net = build_star(Simulator(), 4)
        assert [w.name for w in net.workers] == [f"worker{i}" for i in range(4)]
        assert net.server is None
        assert len(net.switches) == 1

    def test_server_host_added(self):
        net = build_star(Simulator(), 2, with_server=True)
        assert net.server is not None
        assert net.server.name == "server"
        assert "server" in net.hosts

    def test_any_to_any_connectivity(self):
        sim = Simulator()
        net = build_star(sim, 3, with_server=True)
        got = []
        net.server.bind(9, lambda p: got.append(p.src))
        for worker in net.workers:
            worker.send(
                Packet(src=worker.name, dst="server", payload_size=10, dst_port=9)
            )
        sim.run()
        assert sorted(got) == ["worker0", "worker1", "worker2"]

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            build_star(Simulator(), 0)

    def test_tor_of_worker_parallel_to_workers(self):
        net = build_star(Simulator(), 4)
        assert len(net.tor_of_worker) == 4
        assert all(t is net.switches[0] for t in net.tor_of_worker)


class TestRackTree:
    def test_rack_count(self):
        net = build_rack_tree(Simulator(), 12, workers_per_rack=3)
        # 4 ToRs + 1 root
        assert len(net.switches) == 5
        assert net.root.name == "root"
        assert len(net.workers) == 12

    def test_partial_last_rack(self):
        net = build_rack_tree(Simulator(), 7, workers_per_rack=3)
        assert len(net.switches) == 4  # 3 ToRs + root
        assert len(net.workers) == 7

    def test_cross_rack_connectivity(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, workers_per_rack=3)
        got = []
        net.workers[5].bind(9, lambda p: got.append(p.src))
        net.workers[0].send(
            Packet(src="worker0", dst="worker5", payload_size=10, dst_port=9)
        )
        sim.run()
        assert got == ["worker0"]

    def test_same_rack_stays_local(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, workers_per_rack=3)
        root = net.root
        before = root.rx_packets
        got = []
        net.workers[1].bind(9, lambda p: got.append(p.src))
        net.workers[0].send(
            Packet(src="worker0", dst="worker1", payload_size=10, dst_port=9)
        )
        sim.run()
        assert got == ["worker0"]
        assert root.rx_packets == before  # never crossed the root

    def test_server_reachable_from_all_racks(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, workers_per_rack=3, with_server=True)
        got = []
        net.server.bind(9, lambda p: got.append(p.src))
        for worker in net.workers:
            worker.send(
                Packet(src=worker.name, dst="server", payload_size=10, dst_port=9)
            )
        sim.run()
        assert len(got) == 6

    def test_server_to_worker_direction(self):
        sim = Simulator()
        net = build_rack_tree(sim, 6, workers_per_rack=3, with_server=True)
        got = []
        net.workers[4].bind(9, lambda p: got.append(p.src))
        net.server.send(
            Packet(src="server", dst="worker4", payload_size=10, dst_port=9)
        )
        sim.run()
        assert got == ["server"]

    def test_invalid_workers_per_rack(self):
        with pytest.raises(ValueError, match="workers_per_rack"):
            build_rack_tree(Simulator(), 4, workers_per_rack=0)

"""Unit tests for measurement helpers."""

import math

import pytest

from repro.netsim.trace import LatencyStats, TimeSeries


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_single_sample(self):
        stats = LatencyStats()
        stats.record(2.0)
        assert stats.mean == 2.0
        assert stats.min == 2.0
        assert stats.max == 2.0

    def test_mean_and_extremes(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.record(v)
        assert stats.mean == pytest.approx(2.5)
        assert stats.min == 1.0
        assert stats.max == 4.0

    def test_std(self):
        stats = LatencyStats()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.record(v)
        assert stats.std == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record(-0.1)

    def test_merge(self):
        a = LatencyStats()
        b = LatencyStats()
        for v in (1.0, 2.0):
            a.record(v)
        for v in (3.0, 4.0):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.mean == pytest.approx(2.5)
        assert a.max == 4.0


class TestTimeSeries:
    def test_record_and_accessors(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert series.times == [0.0, 1.0]
        assert series.values == [1.0, 2.0]

    def test_time_must_not_go_backwards(self):
        series = TimeSeries("s")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            series.record(4.0, 2.0)

    def test_value_at_step_interpolates(self):
        series = TimeSeries("s")
        series.record(0.0, 1.0)
        series.record(10.0, 5.0)
        assert series.value_at(0.0) == 1.0
        assert series.value_at(9.9) == 1.0
        assert series.value_at(10.0) == 5.0
        assert series.value_at(100.0) == 5.0

    def test_value_at_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TimeSeries("s").value_at(0.0)

    def test_time_to_reach(self):
        series = TimeSeries("s")
        series.record(0.0, 0.0)
        series.record(5.0, 3.0)
        series.record(9.0, 7.0)
        assert series.time_to_reach(3.0) == 5.0
        assert series.time_to_reach(7.0) == 9.0
        assert series.time_to_reach(100.0) == math.inf

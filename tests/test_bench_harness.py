"""Tests for the wall-clock benchmark harness (repro.bench).

Everything here runs shrunken scenarios so tier-1 stays fast; the one
test that exercises the real smoke matrix end to end is marked ``bench``
and excluded from the default pytest run (CI has a dedicated job).
"""

import json
import time

import pytest

from repro import bench
from repro.bench import (
    SCHEMA,
    Scenario,
    bench_scenarios,
    host_info,
    run_benchmark,
    validate_report,
)


class TestScenarioStats:
    def test_median_and_p90_over_repeats(self):
        def fake():
            # Long enough that the 6-decimal rounding of median_s keeps a
            # meaningful value on a fast machine.
            time.sleep(0.002)
            return {"events": 10}

        scenario = Scenario(name="fake", kind="micro", fn=fake)
        record = scenario.run(repeats=3)
        assert record["repeats"] == 3
        assert len(record["wall_s"]) == 3
        assert min(record["wall_s"]) <= record["median_s"] <= max(record["wall_s"])
        assert record["median_s"] <= record["p90_s"] <= max(record["wall_s"])
        assert record["events"] == 10
        assert record["events_per_s"] == pytest.approx(
            10 / record["median_s"], rel=0.01
        )

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_benchmark(repeats=0)


class TestMicrobenchmarks:
    def test_event_dispatch_counts_events(self):
        scenario = bench._micro_event_dispatch(500)
        record = scenario.run(repeats=1)
        assert record["events"] == 500
        assert record["events_per_s"] > 0

    def test_link_tx_delivers_every_packet(self):
        scenario = bench._micro_link_tx(200)
        record = scenario.run(repeats=1)
        assert record["packets"] == 200
        assert record["packets_per_s"] > 0

    def test_accel_agg_completes_every_round(self):
        scenario = bench._micro_accel_agg(1, n_senders=4)
        record = scenario.run(repeats=1)
        assert record["segments"] == 4 * record["n_chunks"]
        assert record["segments_per_s"] > 0

    @pytest.mark.parametrize("legacy", [False, True])
    def test_env_step_micro_counts_batched_steps(self, legacy):
        scenario = bench._micro_env_step(5, num_envs=4, legacy=legacy)
        assert scenario.name == "micro-env-step" + ("-legacy" if legacy else "")
        record = scenario.run(repeats=2)
        assert record["env_steps"] == 20

    @pytest.mark.parametrize("legacy", [False, True])
    def test_replay_sample_micro_counts_samples(self, legacy):
        scenario = bench._micro_replay_sample(50, 10, 8, legacy=legacy)
        assert scenario.name == "micro-replay-sample" + (
            "-legacy" if legacy else ""
        )
        record = scenario.run(repeats=2)
        assert record["samples"] == 80

    @pytest.mark.parametrize("legacy", [False, True])
    def test_optim_step_micro_counts_param_updates(self, legacy):
        scenario = bench._micro_optim_step(3, legacy=legacy)
        record = scenario.run(repeats=2)
        # 3 steps over the fixed [64, 128, 128, 8] MLP.
        expected_params = 64 * 128 + 128 + 128 * 128 + 128 + 128 * 8 + 8
        assert record["param_updates"] == 3 * expected_params


class TestTrainingScenario:
    def test_smallest_training_scenario_reports_counts(self):
        scenario = bench._training_scenario("sync", "isw", 4, 2)
        record = scenario.run(repeats=1)
        record.update(scenario.fn.counted())
        assert record["sim_time_s"] > 0
        assert record["events"] > 0
        assert record["packets"] > 0


class TestMatrix:
    def test_full_matrix_covers_every_strategy_at_4_and_8(self):
        from repro.distributed.runner import ASYNC_STRATEGIES, SYNC_STRATEGIES

        names = {s.name for s in bench_scenarios(smoke=False)}
        for n_workers in (4, 8):
            for strategy in SYNC_STRATEGIES:
                assert f"sync-{strategy}-n{n_workers}" in names
            for strategy in ASYNC_STRATEGIES:
                assert f"async-{strategy}-n{n_workers}" in names
        assert "chaos-isw-n4" in names
        assert {
            "micro-event-dispatch",
            "micro-link-tx",
            "micro-accel-agg",
        } <= names

    def test_smoke_matrix_is_a_small_subset_of_kinds(self):
        smoke = bench_scenarios(smoke=True)
        assert len(smoke) < len(bench_scenarios(smoke=False))
        assert {s.kind for s in smoke} == {"training", "chaos", "micro"}

    COMPUTE_TWINS = [
        "micro-env-step",
        "micro-replay-sample",
        "micro-optim-step",
    ]

    @pytest.mark.parametrize("smoke", [False, True])
    def test_compute_micros_have_legacy_twins(self, smoke):
        names = {s.name for s in bench_scenarios(smoke=smoke)}
        for base in self.COMPUTE_TWINS:
            assert base in names
            assert f"{base}-legacy" in names

    def test_full_matrix_has_dqn_compute_twins(self):
        names = {s.name for s in bench_scenarios(smoke=False)}
        for n_workers in (4, 8):
            assert f"dqn-sync-isw-n{n_workers}" in names
            assert f"dqn-sync-isw-n{n_workers}-legacy" in names


class TestReportSchema:
    def _tiny_report(self, monkeypatch, **kwargs):
        def tiny(smoke=False):
            return [
                bench._micro_event_dispatch(200),
                bench._micro_accel_agg(1, n_senders=2),
            ]

        monkeypatch.setattr(bench, "bench_scenarios", tiny)
        return run_benchmark(repeats=2, **kwargs)

    def test_report_validates(self, monkeypatch):
        report = self._tiny_report(monkeypatch)
        validate_report(report)
        assert report["schema"] == SCHEMA
        assert report["config"]["repeats"] == 2
        assert set(report["host"]) >= {"python", "platform", "numpy"}

    def test_baseline_embedding_adds_speedups(self, monkeypatch, tmp_path):
        first = self._tiny_report(monkeypatch)
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(json.dumps(first))
        second = self._tiny_report(
            monkeypatch, baseline_path=str(baseline_file)
        )
        validate_report(second)
        assert set(second["speedups"]) == set(first["scenarios"])
        for value in second["speedups"].values():
            assert value > 0
        assert second["baseline"]["scenarios"] == first["scenarios"]

    def test_baseline_schema_mismatch_rejected(self, monkeypatch, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError, match="schema"):
            self._tiny_report(monkeypatch, baseline_path=str(bad))

    def test_validate_rejects_missing_sections(self):
        with pytest.raises(ValueError, match="schema"):
            validate_report({})
        report = {
            "schema": SCHEMA,
            "generated": "now",
            "host": host_info(),
            "config": {},
            "total_wall_s": 0.0,
            "scenarios": {"x": {"kind": "micro", "repeats": 1}},
        }
        with pytest.raises(ValueError, match="missing"):
            validate_report(report)

    def test_validate_requires_rates_on_training_scenarios(self):
        report = {
            "schema": SCHEMA,
            "generated": "now",
            "host": host_info(),
            "config": {},
            "total_wall_s": 0.0,
            "scenarios": {
                "sync-isw-n8": {
                    "kind": "training",
                    "repeats": 1,
                    "wall_s": [0.1],
                    "median_s": 0.1,
                    "p90_s": 0.1,
                    # events/packets rates missing
                }
            },
        }
        with pytest.raises(ValueError, match="sim_time_s"):
            validate_report(report)


class TestCli:
    def test_repro_bench_subcommand_writes_report(self, tmp_path, monkeypatch):
        def tiny(smoke=False):
            return [bench._micro_event_dispatch(100)]

        monkeypatch.setattr(bench, "bench_scenarios", tiny)
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(["bench", "--repeats", "1", "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        validate_report(report)

    def test_budget_overrun_fails(self, tmp_path, monkeypatch):
        def tiny(smoke=False):
            return [bench._micro_event_dispatch(100)]

        monkeypatch.setattr(bench, "bench_scenarios", tiny)
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(
            ["bench", "--repeats", "1", "--out", str(out), "--budget", "0.0"]
        )
        assert code == 1


class TestRegressionGate:
    @staticmethod
    def _report(samples, baseline_samples=None):
        def entry(ws):
            return {"wall_s": list(ws), "median_s": sorted(ws)[len(ws) // 2]}

        report = {"scenarios": {bench.GATE_SCENARIO: entry(samples)}}
        if baseline_samples is not None:
            report["baseline"] = {
                "scenarios": {bench.GATE_SCENARIO: entry(baseline_samples)}
            }
        return report

    def test_compares_best_samples_not_medians(self):
        # Median regressed 2x (cold samples dominate) but the best sample
        # matches the baseline's best: the gate must pass.
        report = self._report([0.30, 0.25, 0.10], baseline_samples=[0.10, 0.12, 0.14])
        assert bench.check_regression(report, 0.50) == 0

    def test_fails_on_structural_regression(self):
        report = self._report([0.31, 0.30, 0.32], baseline_samples=[0.10, 0.12, 0.14])
        assert bench.check_regression(report, 0.50) == 1

    def test_missing_baseline_passes(self):
        assert bench.check_regression(self._report([0.1]), 0.50) == 0

    def test_missing_scenario_passes(self):
        report = self._report([0.1], baseline_samples=[0.1])
        report["baseline"]["scenarios"] = {}
        assert bench.check_regression(report, 0.50) == 0

    def test_falls_back_to_median_without_samples(self):
        report = self._report([0.2], baseline_samples=[0.1])
        del report["scenarios"][bench.GATE_SCENARIO]["wall_s"]
        del report["baseline"]["scenarios"][bench.GATE_SCENARIO]["wall_s"]
        assert bench.check_regression(report, 0.50) == 1
        assert bench.check_regression(report, 1.50) == 0

    def test_default_gate_covers_all_gate_scenarios(self):
        """scenario=None sweeps GATE_SCENARIOS; any one regression fails."""

        def entry(ws):
            return {"wall_s": list(ws), "median_s": sorted(ws)[len(ws) // 2]}

        assert "micro-replay-sample" in bench.GATE_SCENARIOS
        report = {
            "scenarios": {name: entry([0.10]) for name in bench.GATE_SCENARIOS},
            "baseline": {
                "scenarios": {
                    name: entry([0.10]) for name in bench.GATE_SCENARIOS
                }
            },
        }
        assert bench.check_regression(report, 0.50) == 0
        # Regress only the replay micro: the combined gate must trip even
        # though the training scenario is clean.
        report["scenarios"]["micro-replay-sample"] = entry([0.30])
        assert bench.check_regression(report, 0.50) == 1
        assert bench.check_regression(report, 0.50, bench.GATE_SCENARIO) == 0


class TestComputeSpeedups:
    def test_report_pairs_fast_and_legacy_twins(self, monkeypatch):
        def tiny(smoke=False):
            return [
                bench._micro_replay_sample(50, 10, 8),
                bench._micro_replay_sample(50, 10, 8, legacy=True),
                bench._micro_event_dispatch(100),  # twin-less: no entry
            ]

        monkeypatch.setattr(bench, "bench_scenarios", tiny)
        report = run_benchmark(repeats=2)
        validate_report(report)
        speedups = report["compute_speedups"]
        assert set(speedups) == {"micro-replay-sample"}
        assert speedups["micro-replay-sample"] > 0


@pytest.mark.bench
class TestSmokeMatrixEndToEnd:
    def test_smoke_run_validates_and_recovers_faults(self, tmp_path):
        report = run_benchmark(repeats=1, smoke=True)
        validate_report(report)
        assert report["scenarios"]["chaos-isw-n4"]["fault_ok"] is True

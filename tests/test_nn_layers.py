"""Unit tests for modules, layers and the MLP builder."""

import numpy as np
import pytest

from repro.nn import Activation, Linear, Module, Parameter, Sequential, Tensor, mlp


class TestModule:
    def test_parameters_collected_in_order(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Parameter(np.zeros(2))
                self.b = Parameter(np.zeros(3))

        params = Net().parameters()
        assert [p.size for p in params] == [2, 3]

    def test_nested_modules_collected(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(4))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.p = Parameter(np.zeros(1))
                self.inner = Inner()

        assert [p.size for p in Outer().parameters()] == [1, 4]

    def test_named_parameters_paths(self):
        net = mlp([2, 3, 1], rng=np.random.default_rng(0))
        names = [name for name, _ in net.named_parameters()]
        assert "layer0.weight" in names
        assert "layer0.bias" in names

    def test_n_parameters(self):
        net = Linear(4, 5, rng=np.random.default_rng(0))
        assert net.n_parameters == 4 * 5 + 5

    def test_zero_grad_clears_all(self):
        net = Linear(2, 2, rng=np.random.default_rng(0))
        out = net(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert net.weight.grad is not None
        net.zero_grad()
        assert net.weight.grad is None
        assert net.bias.grad is None


class TestLinear:
    def test_forward_matches_numpy(self):
        net = Linear(3, 2, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).standard_normal((5, 3))
        out = net(Tensor(x)).numpy()
        expected = x @ net.weight.numpy() + net.bias.numpy()
        np.testing.assert_allclose(out, expected)

    def test_no_bias(self):
        net = Linear(3, 2, rng=np.random.default_rng(1), bias=False)
        assert net.bias is None
        assert net.n_parameters == 6

    def test_init_bound_kaiming(self):
        net = Linear(100, 50, rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / 100)
        assert np.abs(net.weight.numpy()).max() <= bound

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            Linear(0, 5)

    def test_deterministic_init_with_seed(self):
        a = Linear(4, 4, rng=np.random.default_rng(7))
        b = Linear(4, 4, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.numpy(), b.weight.numpy())


class TestActivation:
    @pytest.mark.parametrize("kind", ["relu", "tanh", "sigmoid"])
    def test_kinds(self, kind):
        act = Activation(kind)
        x = Tensor(np.array([-1.0, 0.5]))
        out = act(x).numpy()
        expected = {
            "relu": np.maximum(x.numpy(), 0),
            "tanh": np.tanh(x.numpy()),
            "sigmoid": 1 / (1 + np.exp(-x.numpy())),
        }[kind]
        np.testing.assert_allclose(out, expected)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown activation"):
            Activation("swish")


class TestSequentialAndMLP:
    def test_sequential_applies_in_order(self):
        double = Linear(1, 1, rng=np.random.default_rng(0), bias=False)
        double.weight.data[:] = 2.0
        triple = Linear(1, 1, rng=np.random.default_rng(0), bias=False)
        triple.weight.data[:] = 3.0
        seq = Sequential(double, triple)
        out = seq(Tensor(np.array([[1.0]])))
        assert out.numpy()[0, 0] == pytest.approx(6.0)

    def test_len_and_iter(self):
        seq = mlp([2, 4, 2], rng=np.random.default_rng(0))
        assert len(seq) == 3  # linear, act, linear
        assert len(list(seq)) == 3

    def test_mlp_shapes(self):
        net = mlp([5, 16, 8, 3], rng=np.random.default_rng(0))
        out = net(Tensor(np.zeros((7, 5))))
        assert out.shape == (7, 3)

    def test_mlp_output_activation(self):
        net = mlp([2, 4, 2], output_activation="tanh", rng=np.random.default_rng(0))
        out = net(Tensor(np.full((1, 2), 100.0))).numpy()
        assert np.all(np.abs(out) <= 1.0)

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ValueError):
            mlp([4])

    def test_mlp_gradient_flows_to_all_layers(self):
        net = mlp([3, 8, 2], rng=np.random.default_rng(0))
        net(Tensor(np.ones((4, 3)))).sum().backward()
        assert all(p.grad is not None for p in net.parameters())

"""Unit tests for the baseline vector transport."""

import numpy as np
import pytest

from repro.distributed.transport import VectorReceiver, _chunk_shapes, send_vector
from repro.netsim import Link, Simulator, Host
from repro.netsim.packets import MAX_UDP_PAYLOAD


def linked_pair():
    sim = Simulator()
    a = Host(sim, "a")
    b = Host(sim, "b")
    Link(sim).attach(a, b)
    return sim, a, b


class TestChunkShapes:
    def test_total_bytes_preserved(self):
        shapes = _chunk_shapes(1_000_000, max_chunks=64)
        assert sum(p for p, _ in shapes) == 1_000_000
        assert len(shapes) <= 64

    def test_small_vector_single_chunk(self):
        shapes = _chunk_shapes(100, max_chunks=64)
        assert shapes == [(100, 1)]

    def test_frames_cover_payload(self):
        for size in (1, 1472, 1473, 123_456):
            for payload, frames in _chunk_shapes(size, 16):
                assert payload <= frames * MAX_UDP_PAYLOAD

    def test_one_byte_vector(self):
        assert _chunk_shapes(1, max_chunks=64) == [(1, 1)]

    def test_exact_payload_multiples(self):
        # Sizes landing exactly on frame boundaries must not grow a
        # zero-byte trailing chunk.
        for multiple in (1, 2, 64, 1000):
            size = multiple * MAX_UDP_PAYLOAD
            shapes = _chunk_shapes(size, max_chunks=8)
            assert sum(p for p, _ in shapes) == size
            assert sum(f for _, f in shapes) == multiple
            assert all(p >= 1 for p, _ in shapes)
            assert len(shapes) <= 8

    def test_max_chunks_one_collapses_to_single_train(self):
        shapes = _chunk_shapes(10 * MAX_UDP_PAYLOAD + 3, max_chunks=1)
        assert len(shapes) == 1
        payload, frames = shapes[0]
        assert payload == 10 * MAX_UDP_PAYLOAD + 3
        assert frames == 11


class TestSendReceive:
    def test_vector_delivered_once_complete(self):
        sim, a, b = linked_pair()
        got = []
        VectorReceiver(b, lambda src, tag, vec, meta: got.append((src, tag, vec, meta)))
        vector = np.arange(10.0, dtype=np.float32)
        n = send_vector(a, "b", tag="g1", vector=vector, wire_bytes=500_000, meta=7)
        assert n > 1
        sim.run()
        assert len(got) == 1
        src, tag, vec, meta = got[0]
        assert (src, tag, meta) == ("a", "g1", 7)
        np.testing.assert_array_equal(vec, vector)

    def test_interleaved_flows_do_not_mix(self):
        sim, a, b = linked_pair()
        got = {}
        VectorReceiver(b, lambda src, tag, vec, meta: got.__setitem__(tag, vec))
        send_vector(a, "b", tag=1, vector=np.ones(3), wire_bytes=100_000)
        send_vector(a, "b", tag=2, vector=np.zeros(3), wire_bytes=100_000)
        sim.run()
        np.testing.assert_array_equal(got[1], np.ones(3))
        np.testing.assert_array_equal(got[2], np.zeros(3))

    def test_timing_only_flow_carries_none(self):
        sim, a, b = linked_pair()
        got = []
        VectorReceiver(b, lambda src, tag, vec, meta: got.append(vec))
        send_vector(a, "b", tag=0, vector=None, wire_bytes=10_000)
        sim.run()
        assert got == [None]

    def test_transfer_time_matches_wire_bytes(self):
        sim, a, b = linked_pair()
        done = []
        VectorReceiver(b, lambda *args: done.append(sim.now))
        wire = 1_000_000
        send_vector(a, "b", tag=0, vector=None, wire_bytes=wire)
        sim.run()
        # Wire bytes plus per-frame headers at 10 Gb/s.
        n_frames = -(-wire // MAX_UDP_PAYLOAD)
        expected = (wire + n_frames * 50) * 8 / 10e9
        assert done[0] == pytest.approx(expected, rel=0.01)

    def test_invalid_wire_bytes(self):
        _, a, _ = linked_pair()
        with pytest.raises(ValueError):
            send_vector(a, "b", tag=0, vector=None, wire_bytes=0)

    def test_one_byte_flow_delivers(self):
        sim, a, b = linked_pair()
        got = []
        VectorReceiver(b, lambda src, tag, vec, meta: got.append(vec))
        vector = np.array([42.0], dtype=np.float32)
        n = send_vector(a, "b", tag=0, vector=vector, wire_bytes=1)
        assert n == 1
        sim.run()
        np.testing.assert_array_equal(got[0], vector)

    def test_max_chunks_one_delivers_data_on_single_packet(self):
        sim, a, b = linked_pair()
        got = []
        VectorReceiver(b, lambda src, tag, vec, meta: got.append((vec, meta)))
        vector = np.ones(5, dtype=np.float32)
        n = send_vector(
            a, "b", tag=0, vector=vector, wire_bytes=500_000, max_chunks=1, meta="m"
        )
        assert n == 1
        sim.run()
        assert len(got) == 1
        np.testing.assert_array_equal(got[0][0], vector)
        assert got[0][1] == "m"

    def test_wrong_payload_type_raises(self):
        sim, a, b = linked_pair()
        VectorReceiver(b, lambda *args: None, port=7777)
        from repro.netsim.packets import Packet

        a.send(Packet(src="a", dst="b", payload_size=10, dst_port=7777, payload="junk"))
        with pytest.raises(TypeError, match="VectorChunk"):
            sim.run()

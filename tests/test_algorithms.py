"""Unit tests for the four RL algorithms (DQN, A2C, PPO, DDPG)."""

import numpy as np
import pytest

from repro.rl import A2C, DDPG, DQN, PPO, Cheetah1D, GridPong, GridQbert, Hopper1D


def make(workload, seed=0, **kw):
    if workload == "dqn":
        return DQN(GridPong(seed=seed), seed=seed, warmup=64, **kw)
    if workload == "a2c":
        return A2C(GridQbert(seed=seed), seed=seed, **kw)
    if workload == "ppo":
        return PPO(Hopper1D(seed=seed), seed=seed, rollout_steps=32, **kw)
    return DDPG(Cheetah1D(seed=seed), seed=seed, warmup=64, **kw)


ALL = ["dqn", "a2c", "ppo", "ddpg"]


@pytest.mark.parametrize("workload", ALL)
class TestAlgorithmContract:
    def test_gradient_is_flat_float32(self, workload):
        algo = make(workload)
        gradient = algo.compute_gradient()
        assert gradient.dtype == np.float32
        assert gradient.shape == (algo.n_params,)

    def test_gradient_nonzero(self, workload):
        algo = make(workload)
        gradient = algo.compute_gradient()
        assert np.abs(gradient).sum() > 0

    def test_apply_update_moves_weights(self, workload):
        algo = make(workload)
        before = algo.get_weights().copy()
        gradient = algo.compute_gradient()
        algo.apply_update(gradient.astype(np.float64))
        assert not np.array_equal(algo.get_weights(), before)
        assert algo.updates_applied == 1

    def test_weights_roundtrip(self, workload):
        algo = make(workload)
        weights = algo.get_weights()
        other = make(workload, seed=5)
        other.set_weights(weights)
        np.testing.assert_allclose(other.get_weights(), weights, rtol=1e-6)

    def test_same_init_seed_same_weights(self, workload):
        a = make(workload, seed=1, init_seed=77)
        b = make(workload, seed=2, init_seed=77)
        np.testing.assert_array_equal(a.get_weights(), b.get_weights())

    def test_decentralized_determinism(self, workload):
        """Replicas applying identical updates stay bit-identical —
        the invariant behind iSwitch's decentralized weight storage."""
        a = make(workload, seed=1, init_seed=3)
        b = make(workload, seed=2, init_seed=3)
        rng = np.random.default_rng(0)
        for _ in range(5):
            update = rng.standard_normal(a.n_params) * 1e-3
            a.apply_update(update)
            b.apply_update(update)
        np.testing.assert_array_equal(a.get_weights(), b.get_weights())

    def test_episode_rewards_accumulate(self, workload):
        algo = make(workload)
        # DDPG takes a single env step per iteration and Cheetah1D episodes
        # run 200 steps, so give it enough iterations to finish one.
        iterations = 160 if workload == "ddpg" else 40
        for _ in range(iterations):
            algo.apply_update(algo.compute_gradient().astype(np.float64))
        assert len(algo.episode_rewards) >= 1
        assert algo.final_average_reward() != float("-inf")

    def test_wire_bytes(self, workload):
        algo = make(workload)
        assert algo.wire_bytes == algo.n_params * 4


class TestDQNSpecifics:
    def test_epsilon_decays_with_updates(self):
        algo = make("dqn", epsilon_decay_updates=10)
        assert algo.epsilon == pytest.approx(1.0)
        algo.updates_applied = 5
        assert 0.05 < algo.epsilon < 1.0
        algo.updates_applied = 100
        assert algo.epsilon == pytest.approx(0.05)

    def test_greedy_action_is_argmax(self):
        algo = make("dqn")
        obs = algo.env.reset()
        from repro.nn import Tensor, no_grad

        with no_grad():
            q = algo.q_net(Tensor(obs[None, :])).numpy()[0]
        assert algo.act(obs, greedy=True) == int(np.argmax(q))

    def test_target_sync_cadence(self):
        algo = make("dqn", target_sync_every=2)
        from repro.nn import flatten_params

        gradient = algo.compute_gradient().astype(np.float64)
        algo.apply_update(gradient)
        # After 1 update targets differ from online.
        assert not np.allclose(
            flatten_params(algo.target_net), flatten_params(algo.q_net)
        )
        algo.apply_update(gradient)
        np.testing.assert_allclose(
            flatten_params(algo.target_net), flatten_params(algo.q_net)
        )

    def test_on_weights_pulled_syncs_target(self):
        algo = make("dqn", target_sync_every=10)
        from repro.nn import flatten_params

        new_weights = algo.get_weights() + 0.1
        algo.set_weights(new_weights)
        algo.on_weights_pulled(10)  # crosses the cadence boundary
        np.testing.assert_allclose(
            flatten_params(algo.target_net),
            flatten_params(algo.q_net),
            rtol=1e-6,
        )
        assert algo.updates_applied == 10

    def test_warmup_fills_buffer(self):
        algo = make("dqn")
        algo.compute_gradient()
        assert len(algo.buffer) >= algo.warmup


class TestA2CSpecifics:
    def test_discounted_returns(self):
        from repro.rl.a2c import discounted_returns

        returns = discounted_returns(
            np.array([1.0, 1.0, 1.0]),
            np.array([0.0, 0.0, 0.0]),
            bootstrap=10.0,
            gamma=0.5,
        )
        np.testing.assert_allclose(returns, [1 + 0.5 + 0.25 + 1.25, 1 + 0.5 + 2.5, 1 + 5.0])

    def test_dones_cut_bootstrap(self):
        from repro.rl.a2c import discounted_returns

        returns = discounted_returns(
            np.array([1.0, 1.0]),
            np.array([1.0, 0.0]),
            bootstrap=100.0,
            gamma=0.9,
        )
        assert returns[0] == pytest.approx(1.0)  # episode ended at t=0

    def test_policy_sampling_follows_logits(self):
        algo = make("a2c")
        counts = np.zeros(4)
        obs = algo.env.reset()
        for _ in range(200):
            counts[algo.act(obs)] += 1
        assert np.all(counts > 0)  # near-uniform at init


class TestPPOSpecifics:
    def test_gae_zero_when_values_exact(self):
        from repro.rl.ppo import gae_advantages

        rewards = np.array([1.0, 1.0, 1.0])
        # V(s_t) that exactly predicts discounted-to-bootstrap returns.
        gamma, lam = 0.9, 0.95
        bootstrap = 2.0
        values = np.zeros(3)
        values[2] = rewards[2] + gamma * bootstrap
        values[1] = rewards[1] + gamma * values[2]
        values[0] = rewards[0] + gamma * values[1]
        adv = gae_advantages(
            rewards, values, np.zeros(3), bootstrap, gamma, lam
        )
        np.testing.assert_allclose(adv, 0.0, atol=1e-12)

    def test_log_prob_matches_gaussian_formula(self):
        algo = make("ppo")
        from repro.nn import Tensor, no_grad

        states = np.random.default_rng(0).standard_normal((4, 4))
        actions = np.random.default_rng(1).standard_normal((4, 1))
        with no_grad():
            mean = algo.container.mean(Tensor(states)).numpy()
            logp = algo.container.log_prob(Tensor(states), actions).numpy()
        std = np.exp(algo.container.log_std.numpy())
        expected = (
            -0.5 * ((actions - mean) / std) ** 2
            - np.log(std)
            - 0.5 * np.log(2 * np.pi)
        ).sum(axis=1)
        np.testing.assert_allclose(logp, expected, rtol=1e-8)

    def test_actions_clipped_to_space(self):
        algo = make("ppo")
        obs = algo.env.reset()
        for _ in range(50):
            action = algo.act(obs)
            assert algo.env.action_space.contains(action)


class TestDDPGSpecifics:
    def test_ou_noise_is_temporally_correlated(self):
        from repro.rl.ddpg import OUNoise

        noise = OUNoise(1, np.random.default_rng(0))
        samples = np.array([noise.sample()[0] for _ in range(500)])
        lag1 = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert lag1 > 0.5

    def test_ou_noise_reset(self):
        from repro.rl.ddpg import OUNoise

        noise = OUNoise(2, np.random.default_rng(0))
        noise.sample()
        noise.reset()
        np.testing.assert_array_equal(noise.state, 0.0)

    def test_targets_soft_update(self):
        algo = make("ddpg", tau=0.5)
        from repro.nn import flatten_params

        online_before = flatten_params(algo.container).astype(np.float64)
        target_before = flatten_params(algo.targets).astype(np.float64)
        np.testing.assert_allclose(online_before, target_before, rtol=1e-6)
        gradient = algo.compute_gradient().astype(np.float64)
        algo.apply_update(gradient)
        online = flatten_params(algo.container).astype(np.float64)
        target = flatten_params(algo.targets).astype(np.float64)
        expected = 0.5 * online_before + 0.5 * online
        np.testing.assert_allclose(target, expected, atol=1e-5)

    def test_actor_gradient_leaves_critic_grads_intact(self):
        algo = make("ddpg")
        gradient = algo.compute_gradient()
        # The critic's share of the flat vector must equal the pure
        # critic-loss gradient (actor backprop must not leak into it).
        critic_params = set(id(p) for p in algo.container.critic.parameters())
        offset = 0
        for param in algo.container.parameters():
            if id(param) in critic_params:
                piece = gradient[offset : offset + param.size]
                assert np.abs(piece).sum() > 0
            offset += param.size

    def test_actions_bounded_by_tanh(self):
        algo = make("ddpg")
        obs = algo.env.reset()
        action = algo.act(obs, explore=False)
        assert np.all(np.abs(action) <= 1.0)

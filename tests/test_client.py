"""Unit tests for the worker-side aggregation client, including loss
recovery via the Help/result-cache path."""

import numpy as np
import pytest

from repro.core import (
    AggregationClient,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
)
from repro.netsim import Simulator, build_star


def cluster(n_workers=2, n_elements=1000, dedup=False, **client_kwargs):
    sim = Simulator()

    def factory(s, name):
        from repro.core.switch import ISwitch

        return ISwitch(s, name, dedup=dedup)

    net = build_star(sim, n_workers, switch_factory=factory)
    configure_aggregation(net)
    plan = SegmentPlan(n_elements)
    results = {}
    clients = [
        AggregationClient(
            w,
            "tor0",
            plan,
            on_round_complete=lambda rnd, vec, n=w.name: results.setdefault(
                n, {}
            ).__setitem__(rnd, vec),
            **client_kwargs,
        )
        for w in net.workers
    ]
    return sim, net, plan, clients, results


class TestRoundAssembly:
    def test_rounds_completed_counter(self):
        sim, net, plan, clients, results = cluster()
        for client in clients:
            client.send_gradient(np.ones(1000, dtype=np.float32), 0)
        sim.run()
        assert all(c.rounds_completed == 1 for c in clients)

    def test_commit_ids_increment(self):
        sim, net, plan, clients, results = cluster()
        first = clients[0].send_gradient(np.ones(1000, dtype=np.float32), 0)
        second = clients[0].send_gradient(np.ones(1000, dtype=np.float32), 1)
        assert second == first + 1

    def test_pending_rounds_tracked(self):
        sim, net, plan, clients, results = cluster()
        clients[0].send_gradient(np.ones(1000, dtype=np.float32), 0)
        sim.run()
        # Worker 1 never contributed, so the round never completes and no
        # results flow; nothing is pending at either client.
        assert clients[0].pending_rounds() == 0

    def test_out_of_order_rounds_complete_independently(self):
        sim, net, plan, clients, results = cluster(n_elements=3000)
        # Worker 0 commits rounds 0 and 1 back to back; worker 1 commits in
        # reverse order.  Both rounds must assemble correctly.
        v = np.ones(3000, dtype=np.float32)
        clients[0].send_gradient(v * 1, 0)
        clients[0].send_gradient(v * 2, 1)
        clients[1].send_gradient(v * 20, 1)
        clients[1].send_gradient(v * 10, 0)
        sim.run()
        for chunks in results.values():
            np.testing.assert_allclose(chunks[0], 11.0)
            np.testing.assert_allclose(chunks[1], 22.0)


class TestLossRecovery:
    def _lossy_cluster(self, loss_rate, n_elements=2000):
        """A 2-worker cluster whose *downlink* to worker0 drops packets."""
        sim, net, plan, clients, results = cluster(
            n_elements=n_elements,
            dedup=True,
            recovery_timeout=0.5e-3,
        )
        # Make worker0's link lossy only for switch->worker traffic by
        # injecting loss on the link and retransmitting via Help.
        link = net.links[0]
        link.loss_rate = loss_rate
        link.loss_rng = np.random.default_rng(5)
        return sim, net, plan, clients, results, link

    def test_help_recovers_lost_results(self):
        sim, net, plan, clients, results, link = self._lossy_cluster(0.3)
        vectors = [
            np.full(2000, 1.0, dtype=np.float32),
            np.full(2000, 2.0, dtype=np.float32),
        ]
        for client, vector in zip(clients, vectors):
            client.send_gradient(vector, 0)
        sim.run(until=0.2)  # several watchdog rounds
        assert link.dropped_packets > 0
        assert "worker0" in results and "worker1" in results
        np.testing.assert_allclose(results["worker0"][0], 3.0)
        np.testing.assert_allclose(results["worker1"][0], 3.0)
        assert clients[0].help_requests + clients[1].help_requests > 0

    def test_lossless_run_sends_no_help(self):
        sim, net, plan, clients, results, link = self._lossy_cluster(0.0)
        for client in clients:
            client.send_gradient(np.ones(2000, dtype=np.float32), 0)
        sim.run(until=0.2)
        assert clients[0].help_requests == 0
        assert clients[1].help_requests == 0

    def test_dedup_prevents_double_count_on_uplink_retransmit(self):
        """Retransmitting the same commit must not inflate the sum."""
        sim, net, plan, clients, results = cluster(dedup=True, n_elements=100)
        v = np.ones(100, dtype=np.float32)
        segments = plan.split(v, 0, sender="worker0", commit_id=1)
        from repro.core.protocol import make_data_packet

        # Worker 0 sends its chunk twice (simulated retransmission).
        for _ in range(2):
            for segment in plan.split(v, 0, sender="worker0", commit_id=1):
                net.workers[0].send(
                    make_data_packet("worker0", "tor0", segment, plan)
                )
        for segment in plan.split(v * 5, 0, sender="worker1", commit_id=1):
            net.workers[1].send(
                make_data_packet("worker1", "tor0", segment, plan)
            )
        sim.run()
        np.testing.assert_allclose(results["worker0"][0], 6.0)

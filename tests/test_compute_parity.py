"""Differential compute-parity suite (PR 10).

The compute fast path — ring-buffer replay, raw-NumPy inference forwards,
fused loss kernels, the closed-form DQN gradient, flat in-place optimizer
updates, and kernel vector envs — is **default-on**.  That is only sound
because every piece is bit-identical to the legacy implementation it
replaced.  This suite runs both paths side by side and asserts equality
at the byte level (``tobytes()``, which is stricter than
``np.array_equal`` — it distinguishes ``-0.0`` from ``0.0``):

* replay: ring vs ``LegacyReplayBuffer`` on the same rng stream,
* optimizers: ``step_flat`` vs the per-parameter legacy step,
* losses: fused kernels vs the composed-primitive graphs,
* ``fused_qnet_grad``: closed-form backward vs the autograd tape,
* envs: kernel ``VectorEnv`` vs the sequential reference over 1k steps,
* end to end: whole training runs, fast vs legacy, per algorithm.

DESIGN.md §13 documents the bit-identity argument each block asserts.
"""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    RMSProp,
    Tensor,
    flatten_params,
    fused_huber_loss,
    fused_mse_loss,
    fused_qnet_grad,
    huber_loss,
    load_flat_grads,
    mlp,
    mse_loss,
    no_grad,
    use_fast_compute,
    use_legacy_compute,
)
from repro.nn.layers import Module
from repro.rl import A2C, DDPG, DQN, PPO
from repro.rl.envs import Cheetah1D, GridPong, GridQbert, Hopper1D, make_vector_env
from repro.rl.envs.vector import VectorEnv
from repro.rl.envs.wrappers import FrameStack, NormalizeObservation, ScaleReward
from repro.rl.legacy import LegacyReplayBuffer
from repro.rl.replay import ReplayBuffer, Transition


def assert_bytes_equal(a: np.ndarray, b: np.ndarray, context: str = "") -> None:
    assert a.shape == b.shape, f"{context}: shape {a.shape} != {b.shape}"
    assert a.dtype == b.dtype, f"{context}: dtype {a.dtype} != {b.dtype}"
    assert a.tobytes() == b.tobytes(), f"{context}: values differ"


# ---------------------------------------------------------------------------
# Replay: ring vs legacy list-of-tuples
# ---------------------------------------------------------------------------


def _transition(rng: np.random.Generator, obs_dim: int = 4) -> Transition:
    return Transition(
        state=rng.standard_normal(obs_dim),
        action=int(rng.integers(0, 3)),
        reward=float(rng.standard_normal()),
        next_state=rng.standard_normal(obs_dim),
        done=bool(rng.random() < 0.1),
    )


class TestReplayParity:
    def test_same_rng_stream_same_batches(self):
        """Interleaved push/sample: both buffers draw identical batches."""
        ring = ReplayBuffer(50, np.random.default_rng(11))
        legacy = LegacyReplayBuffer(50, np.random.default_rng(11))
        feed = np.random.default_rng(99)
        for step in range(400):
            t = _transition(feed)
            ring.push(t)
            legacy.push(t)
            if step >= 8 and step % 7 == 0:
                a = ring.sample(8)
                b = legacy.sample(8)
                for field in ("states", "actions", "rewards", "next_states", "dones"):
                    assert_bytes_equal(
                        np.asarray(getattr(a, field)),
                        np.asarray(getattr(b, field)),
                        f"step {step} field {field}",
                    )

    def test_sample_with_replacement_parity(self):
        """batch > size flips ``replace`` identically on both buffers."""
        ring = ReplayBuffer(50, np.random.default_rng(3))
        legacy = LegacyReplayBuffer(50, np.random.default_rng(3))
        feed = np.random.default_rng(0)
        for _ in range(3):
            t = _transition(feed)
            ring.push(t)
            legacy.push(t)
        a = ring.sample(16)
        b = legacy.sample(16)
        assert_bytes_equal(a.states, b.states)
        assert_bytes_equal(a.rewards, b.rewards)

    def test_push_batch_matches_sequential_push(self):
        """Slice-writes across the wrap point == n scalar pushes."""
        rng = np.random.default_rng(5)
        scalar = ReplayBuffer(10, np.random.default_rng(1))
        batched = ReplayBuffer(10, np.random.default_rng(1))
        for _ in range(8):  # advance the cursor near the wrap point
            t = _transition(rng)
            scalar.push(t)
            batched.push(t)
        chunk = [_transition(rng) for _ in range(7)]
        states = np.stack([t.state for t in chunk])
        actions = np.asarray([t.action for t in chunk])
        rewards = np.asarray([t.reward for t in chunk])
        next_states = np.stack([t.next_state for t in chunk])
        dones = np.asarray([t.done for t in chunk], dtype=np.float64)
        for t in chunk:
            scalar.push(t)
        batched.push_batch(states, actions, rewards, next_states, dones)
        assert len(scalar) == len(batched) == 10
        assert scalar._cursor == batched._cursor
        assert_bytes_equal(scalar._states, batched._states)
        assert_bytes_equal(scalar._rewards, batched._rewards)
        assert_bytes_equal(scalar._dones, batched._dones)

    def test_push_batch_larger_than_capacity(self):
        """n >= capacity degenerates to sequential semantics, not garbage."""
        rng = np.random.default_rng(5)
        scalar = ReplayBuffer(6, np.random.default_rng(1))
        batched = ReplayBuffer(6, np.random.default_rng(1))
        chunk = [_transition(rng) for _ in range(9)]
        for t in chunk:
            scalar.push(t)
        batched.push_batch(
            np.stack([t.state for t in chunk]),
            np.asarray([t.action for t in chunk]),
            np.asarray([t.reward for t in chunk]),
            np.stack([t.next_state for t in chunk]),
            np.asarray([t.done for t in chunk], dtype=np.float64),
        )
        assert scalar._cursor == batched._cursor
        assert_bytes_equal(scalar._states, batched._states)


# ---------------------------------------------------------------------------
# Optimizers: flat in-place vs per-parameter legacy
# ---------------------------------------------------------------------------


def _optimizer_pair(factory):
    """Two identical models, one fast-path optimizer, one legacy."""
    fast_model = mlp([5, 16, 16, 3], rng=np.random.default_rng(21))
    legacy_model = mlp([5, 16, 16, 3], rng=np.random.default_rng(21))
    with use_fast_compute():
        fast_opt = factory(fast_model.parameters())
    with use_legacy_compute():
        legacy_opt = factory(legacy_model.parameters())
    assert fast_opt._use_flat and not legacy_opt._use_flat
    return fast_model, fast_opt, legacy_model, legacy_opt


OPTIMIZER_FACTORIES = [
    pytest.param(lambda ps: SGD(ps, lr=0.05), id="sgd"),
    pytest.param(lambda ps: SGD(ps, lr=0.05, momentum=0.9), id="sgd-momentum"),
    pytest.param(lambda ps: Adam(ps, lr=1e-3), id="adam"),
    pytest.param(lambda ps: RMSProp(ps, lr=1e-3), id="rmsprop"),
]


class TestOptimizerParity:
    @pytest.mark.parametrize("factory", OPTIMIZER_FACTORIES)
    def test_step_flat_matches_legacy_step(self, factory):
        fast_model, fast_opt, legacy_model, legacy_opt = _optimizer_pair(factory)
        total = fast_model.n_parameters
        rng = np.random.default_rng(7)
        for step in range(25):
            # The wire delivers float32 gradients; both paths cast to f64.
            grad = rng.standard_normal(total).astype(np.float32)
            fast_opt.step_flat(grad.astype(np.float64))
            load_flat_grads(legacy_model, grad)
            legacy_opt.step()
            for i, (fp, lp) in enumerate(
                zip(fast_model.parameters(), legacy_model.parameters())
            ):
                assert_bytes_equal(fp.data, lp.data, f"step {step} param {i}")

    @pytest.mark.parametrize("factory", OPTIMIZER_FACTORIES)
    def test_fast_step_gathers_grad_slots(self, factory):
        """``step()`` on the fast path gathers ``.grad`` == explicit flat."""
        fast_model, fast_opt, legacy_model, legacy_opt = _optimizer_pair(factory)
        rng = np.random.default_rng(13)
        for _ in range(5):
            grad = rng.standard_normal(fast_model.n_parameters).astype(np.float32)
            load_flat_grads(fast_model, grad)
            fast_opt.step()
            load_flat_grads(legacy_model, grad)
            legacy_opt.step()
        assert_bytes_equal(
            flatten_params(fast_model), flatten_params(legacy_model)
        )


# ---------------------------------------------------------------------------
# Fused losses and the closed-form DQN gradient vs the autograd tape
# ---------------------------------------------------------------------------


def _tape_grads(model) -> list:
    return [p.grad.copy() for p in model.parameters()]


class TestFusedLossParity:
    def _heads(self, seed):
        """Two identical tiny models producing the same prediction tensor."""
        a = mlp([4, 8, 1], rng=np.random.default_rng(seed))
        b = mlp([4, 8, 1], rng=np.random.default_rng(seed))
        return a, b

    @pytest.mark.parametrize("trial", range(5))
    def test_fused_mse(self, trial):
        fused_net, composed_net = self._heads(trial)
        rng = np.random.default_rng(trial + 40)
        x = rng.standard_normal((12, 4))
        target = rng.standard_normal(12)
        fused = fused_mse_loss(fused_net(Tensor(x)).reshape(-1), target)
        composed = mse_loss(composed_net(Tensor(x)).reshape(-1), Tensor(target))
        assert fused.numpy().tobytes() == composed.numpy().tobytes()
        fused.backward()
        composed.backward()
        for fg, cg in zip(_tape_grads(fused_net), _tape_grads(composed_net)):
            assert_bytes_equal(fg, cg)

    @pytest.mark.parametrize("trial", range(5))
    def test_fused_huber(self, trial):
        fused_net, composed_net = self._heads(trial)
        rng = np.random.default_rng(trial + 80)
        x = rng.standard_normal((12, 4))
        # Spread targets so some residuals land in the quadratic region,
        # some in the linear region, on both sides of zero.
        target = rng.standard_normal(12) * 3.0
        target[0] = float(fused_net.infer(x[:1])[0, 0])  # exact-zero residual
        fused = fused_huber_loss(fused_net(Tensor(x)).reshape(-1), target)
        composed = huber_loss(composed_net(Tensor(x)).reshape(-1), Tensor(target))
        assert fused.numpy().tobytes() == composed.numpy().tobytes()
        fused.backward()
        composed.backward()
        for fg, cg in zip(_tape_grads(fused_net), _tape_grads(composed_net)):
            assert_bytes_equal(fg, cg)

    def test_fused_huber_rejects_bad_delta(self):
        net, _ = self._heads(0)
        pred = net(Tensor(np.zeros((2, 4))))
        with pytest.raises(ValueError, match="delta"):
            fused_huber_loss(pred.reshape(-1), np.zeros(2), delta=0.0)


class TestFusedQNetGrad:
    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
    def test_matches_tape(self, activation):
        net = mlp([6, 32, 32, 3], activation=activation, rng=np.random.default_rng(9))
        rng = np.random.default_rng(17)
        for trial in range(10):
            states = rng.standard_normal((32, 6))
            actions = rng.integers(0, 3, size=32)
            targets = rng.standard_normal(32) * 3.0
            if trial % 3 == 0:  # exact-zero residuals hit the sign(0) edge
                q = net.infer(states)
                targets[:4] = q[np.arange(4), actions[:4]]

            for p in net.parameters():
                p.zero_grad()
            loss = fused_huber_loss(
                net(Tensor(states)).gather(actions.astype(np.int64)), targets
            )
            loss.backward()
            tape_loss = float(loss.numpy())
            tape = _tape_grads(net)

            for p in net.parameters():
                p.zero_grad()
            closed_loss = fused_qnet_grad(net, states, actions, targets)
            assert closed_loss == tape_loss
            for i, (tg, cg) in enumerate(zip(tape, _tape_grads(net))):
                assert_bytes_equal(tg, cg, f"{activation} trial {trial} param {i}")

    def test_rejects_unsupported_layer(self):
        class Opaque(Module):
            def forward(self, x):
                return x

        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        net._order.append("layerx")
        object.__setattr__(net, "layerx", Opaque())
        net._modules["layerx"] = net.layerx
        with pytest.raises(TypeError, match="Linear/Activation"):
            fused_qnet_grad(net, np.zeros((2, 4)), np.zeros(2, dtype=int), np.zeros(2))

    def test_rejects_bad_delta(self):
        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="delta"):
            fused_qnet_grad(
                net, np.zeros((2, 4)), np.zeros(2, dtype=int), np.zeros(2), delta=-1.0
            )


class TestInferParity:
    @pytest.mark.parametrize("activation", ["relu", "tanh", "sigmoid"])
    def test_sequential_infer_matches_graph_forward(self, activation):
        net = mlp(
            [5, 16, 4],
            activation=activation,
            output_activation=activation,
            rng=np.random.default_rng(2),
        )
        x = np.random.default_rng(3).standard_normal((20, 5))
        with no_grad():
            graph = net(Tensor(x)).numpy()
        assert_bytes_equal(net.infer(x), graph)


# ---------------------------------------------------------------------------
# Kernel vector envs vs the sequential reference (satellite S2)
# ---------------------------------------------------------------------------

ENV_NAMES = ["gridpong", "gridqbert", "hopper1d", "cheetah1d"]


def _action_batch(rng, space, num_envs):
    if hasattr(space, "n"):
        return rng.integers(0, space.n, size=num_envs)
    return rng.uniform(space.low, space.high, size=(num_envs, space.dim))


class TestVectorEnvDifferential:
    @pytest.mark.parametrize("name", ENV_NAMES)
    def test_kernel_matches_sequential_1k_steps(self, name):
        """1k steps, bit-identical obs/rewards/dones/terminal infos."""
        num_envs = 3
        kernel = make_vector_env(name, num_envs, seed=123, kernel=True)
        reference = make_vector_env(name, num_envs, seed=123, kernel=False)
        assert_bytes_equal(kernel.reset(), reference.reset(), f"{name} reset")
        action_rng = np.random.default_rng(77)
        episodes_k, episodes_r = [], []
        for step in range(1000):
            actions = _action_batch(action_rng, kernel.action_space, num_envs)
            ko, kr, kd, ki = kernel.step(actions)
            ro, rr, rd, ri = reference.step(actions.copy())
            ctx = f"{name} step {step}"
            assert_bytes_equal(ko, ro, ctx + " obs")
            assert_bytes_equal(kr, rr, ctx + " rewards")
            assert (kd == rd).all(), ctx + " dones"
            for i in range(num_envs):
                k_term = ki[i].get("terminal_observation")
                r_term = ri[i].get("terminal_observation")
                assert (k_term is None) == (r_term is None), ctx
                if k_term is not None:
                    assert_bytes_equal(
                        np.asarray(k_term), np.asarray(r_term), ctx + " terminal"
                    )
            episodes_k.extend((step, i) for i in np.nonzero(kd)[0])
            episodes_r.extend((step, i) for i in np.nonzero(rd)[0])
        assert episodes_k == episodes_r, f"{name}: episode boundaries moved"
        assert episodes_k, f"{name}: no episode ever terminated in 1k steps"

    @pytest.mark.parametrize("name", ENV_NAMES)
    def test_single_env_kernel_matches_scalar_env(self, name):
        """K = 1 kernel == a bare scalar env stepped by hand (with autoreset)."""
        scalar_cls = {
            "gridpong": GridPong,
            "gridqbert": GridQbert,
            "hopper1d": Hopper1D,
            "cheetah1d": Cheetah1D,
        }[name]
        kernel = make_vector_env(name, 1, seed=9, kernel=True)
        scalar = scalar_cls(seed=9)
        obs_k = kernel.reset()
        obs_s = scalar.reset()
        assert_bytes_equal(obs_k[0], np.asarray(obs_s, dtype=np.float64))
        rng = np.random.default_rng(31)
        for step in range(500):
            actions = _action_batch(rng, kernel.action_space, 1)
            ko, kr, kd, _ = kernel.step(actions)
            action = actions[0] if hasattr(kernel.action_space, "dim") else int(actions[0])
            so, sr, sd, _ = scalar.step(action)
            assert kd[0] == sd, f"{name} step {step}"
            assert kr[0].tobytes() == np.float64(sr).tobytes(), f"{name} step {step}"
            if sd:
                so = scalar.reset()
            assert_bytes_equal(ko[0], np.asarray(so, dtype=np.float64), f"{name} {step}")

    def test_wrapped_envs_through_generic_vector_env(self):
        """Wrappers ride the sequential VectorEnv; semantics match scalar."""

        def wrap(seed):
            return ScaleReward(
                NormalizeObservation(FrameStack(GridPong(seed=seed), k=2)), 0.5
            )

        venv = VectorEnv([wrap(40), wrap(41)])
        scalars = [wrap(40), wrap(41)]
        obs_v = venv.reset()
        obs_s = np.stack([env.reset() for env in scalars])
        assert_bytes_equal(obs_v, obs_s)
        assert venv.observation_size == GridPong.observation_size * 2
        rng = np.random.default_rng(8)
        for step in range(300):
            actions = rng.integers(0, 3, size=2)
            vo, vr, vd, vi = venv.step(actions)
            for i, env in enumerate(scalars):
                so, sr, sd, _ = env.step(int(actions[i]))
                assert vd[i] == sd
                assert vr[i].tobytes() == np.float64(sr).tobytes()
                if sd:
                    assert_bytes_equal(
                        np.asarray(vi[i]["terminal_observation"]),
                        np.asarray(so, dtype=np.float64),
                    )
                    so = env.reset()
                assert_bytes_equal(vo[i], np.asarray(so, dtype=np.float64), f"{step}")


# ---------------------------------------------------------------------------
# End to end: whole training runs, fast vs legacy, per algorithm
# ---------------------------------------------------------------------------


def _train(builder, compute: str, iterations: int) -> np.ndarray:
    ctx = use_fast_compute() if compute == "fast" else use_legacy_compute()
    with ctx:
        algo = builder()
        for _ in range(iterations):
            algo.apply_update(algo.compute_gradient())
        return flatten_params(algo.container)


ALGORITHM_BUILDERS = [
    pytest.param(lambda: DQN(GridPong(seed=3), seed=3, warmup=64), 15, id="dqn"),
    pytest.param(
        lambda: DQN(
            GridPong(seed=3), seed=3, warmup=64, n_step=3, double_dqn=True
        ),
        15,
        id="dqn-nstep-double",
    ),
    pytest.param(lambda: A2C(GridQbert(seed=3), seed=3), 12, id="a2c"),
    pytest.param(lambda: PPO(Hopper1D(seed=3), seed=3, epochs=2), 8, id="ppo"),
    pytest.param(lambda: DDPG(Cheetah1D(seed=3), seed=3, warmup=64), 12, id="ddpg"),
]


class TestAlgorithmParity:
    @pytest.mark.parametrize("builder,iterations", ALGORITHM_BUILDERS)
    def test_fast_path_is_bit_identical(self, builder, iterations):
        fast = _train(builder, "fast", iterations)
        legacy = _train(builder, "legacy", iterations)
        assert_bytes_equal(fast, legacy)
        assert np.isfinite(fast).all()


VENV_PAIRS = [
    pytest.param(
        lambda: DQN(make_vector_env("gridpong", 1, seed=5), seed=5, warmup=64),
        lambda: DQN(GridPong(seed=5), seed=5, warmup=64),
        12,
        id="dqn",
    ),
    pytest.param(
        lambda: A2C(make_vector_env("gridqbert", 1, seed=5), seed=5),
        lambda: A2C(GridQbert(seed=5), seed=5),
        10,
        id="a2c",
    ),
    pytest.param(
        lambda: PPO(make_vector_env("hopper1d", 1, seed=5), seed=5),
        lambda: PPO(Hopper1D(seed=5), seed=5),
        6,
        id="ppo",
    ),
    pytest.param(
        lambda: DDPG(make_vector_env("cheetah1d", 1, seed=5), seed=5, warmup=64),
        lambda: DDPG(Cheetah1D(seed=5), seed=5, warmup=64),
        10,
        id="ddpg",
    ),
]


class TestVectorEnvTraining:
    @pytest.mark.parametrize("venv_builder,scalar_builder,iterations", VENV_PAIRS)
    def test_k1_vector_env_matches_scalar(
        self, venv_builder, scalar_builder, iterations
    ):
        """One-env VectorEnv consumes the same rng stream as scalar stepping."""
        vec = _train(venv_builder, "fast", iterations)
        scalar = _train(scalar_builder, "fast", iterations)
        assert_bytes_equal(vec, scalar)

    @pytest.mark.parametrize("algorithm", ["dqn", "a2c", "ppo", "ddpg"])
    def test_k4_vector_env_trains(self, algorithm):
        """Multi-env batches run end to end and stay finite."""
        builders = {
            "dqn": lambda: DQN(
                make_vector_env("gridpong", 4, seed=5), seed=5, warmup=64
            ),
            "a2c": lambda: A2C(make_vector_env("gridqbert", 4, seed=5), seed=5),
            "ppo": lambda: PPO(
                make_vector_env("hopper1d", 4, seed=5), seed=5, rollout_steps=16
            ),
            "ddpg": lambda: DDPG(
                make_vector_env("cheetah1d", 4, seed=5), seed=5, warmup=64
            ),
        }
        weights = _train(builders[algorithm], "fast", 6)
        assert np.isfinite(weights).all()

    def test_k4_nstep_dqn_trains(self):
        """Per-env pending queues keep n-step folding correct under batching."""
        weights = _train(
            lambda: DQN(
                make_vector_env("gridpong", 4, seed=5), seed=5, warmup=64, n_step=3
            ),
            "fast",
            6,
        )
        assert np.isfinite(weights).all()

"""Tests for the ExperimentConfig facade, repro.distributed.run, and the
strategy registry — including exact-parity checks against the legacy
run_sync/run_async entry points."""

import numpy as np
import pytest

from repro.distributed import (
    ASYNC_STRATEGIES,
    SYNC_STRATEGIES,
    ExperimentConfig,
    get_strategy,
    register_strategy,
    run,
    run_async,
    run_sync,
    strategy_names,
    unregister_strategy,
)


class TestExperimentConfigValidation:
    def test_defaults_are_valid(self):
        config = ExperimentConfig()
        assert config.strategy == "isw"
        assert config.mode == "sync"

    def test_names_normalized_to_lowercase(self):
        config = ExperimentConfig(strategy="ISW", mode="SYNC", workload="DQN")
        assert (config.strategy, config.mode, config.workload) == (
            "isw",
            "sync",
            "dqn",
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "turbo"},
            {"workload": "alphago"},
            {"n_workers": 0},
            {"iterations": 0},
            {"staleness_bound": -1},
            {"loss_rate": 1.0},
            {"loss_rate": -0.1},
            {"recovery_timeout": 0.0},
            {"workers_per_rack": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_recovery_timeout_resolution(self):
        assert ExperimentConfig().resolved_recovery_timeout() is None
        assert (
            ExperimentConfig(loss_rate=1e-3).resolved_recovery_timeout()
            is not None
        )
        assert (
            ExperimentConfig(recovery_timeout=2e-3).resolved_recovery_timeout()
            == 2e-3
        )

    def test_with_overrides_revalidates(self):
        config = ExperimentConfig()
        assert config.with_overrides(n_workers=8).n_workers == 8
        with pytest.raises(ValueError):
            config.with_overrides(n_workers=0)


class TestRunFacadeParity:
    @pytest.mark.parametrize("strategy", ["ps", "ar", "isw"])
    def test_sync_matches_run_sync(self, strategy):
        new = run(
            ExperimentConfig(
                strategy=strategy,
                workload="dqn",
                n_workers=3,
                iterations=3,
                seed=7,
                telemetry=False,
            )
        )
        old = run_sync(strategy, "dqn", n_workers=3, n_iterations=3, seed=7)
        assert new.elapsed == old.elapsed
        assert new.iterations == old.iterations
        np.testing.assert_array_equal(
            new.workers[0].algorithm.get_weights(),
            old.workers[0].algorithm.get_weights(),
        )

    @pytest.mark.parametrize("strategy", ["ps", "isw"])
    def test_async_matches_run_async(self, strategy):
        new = run(
            ExperimentConfig(
                strategy=strategy,
                workload="dqn",
                mode="async",
                n_workers=3,
                iterations=4,
                seed=3,
                telemetry=False,
            )
        )
        old = run_async(strategy, "dqn", n_workers=3, n_updates=4, seed=3)
        assert new.elapsed == old.elapsed
        assert new.iterations == old.iterations

    def test_telemetry_does_not_change_results(self):
        base = ExperimentConfig(
            strategy="isw", workload="dqn", n_workers=3, iterations=3, seed=1
        )
        on = run(base)
        off = run(base.with_overrides(telemetry=False))
        assert on.elapsed == off.elapsed
        np.testing.assert_array_equal(
            on.workers[0].algorithm.get_weights(),
            off.workers[0].algorithm.get_weights(),
        )
        assert on.telemetry is not None
        assert off.telemetry is None

    def test_loss_rate_rejected_for_non_iswitch(self):
        for strategy, mode in (("ps", "sync"), ("ar", "sync"), ("ps", "async")):
            with pytest.raises(ValueError, match="loss recovery"):
                run(
                    ExperimentConfig(
                        strategy=strategy,
                        mode=mode,
                        iterations=2,
                        loss_rate=1e-3,
                    )
                )


class TestStrategyRegistry:
    def test_derived_tuples_match_registered_values(self):
        assert SYNC_STRATEGIES == ("ps", "ar", "ar-hd", "isw", "ps-shard")
        assert ASYNC_STRATEGIES == ("ps", "isw")
        assert strategy_names("sync") == SYNC_STRATEGIES
        assert strategy_names("async") == ASYNC_STRATEGIES

    def test_unknown_name_error_message_parity(self):
        with pytest.raises(KeyError) as err:
            get_strategy("sync", "bogus")
        assert "unknown sync strategy 'bogus'" in str(err.value)
        assert "'ps', 'ar'" in str(err.value)
        with pytest.raises(KeyError) as err:
            run(ExperimentConfig(strategy="bogus", mode="async"))
        assert "unknown async strategy 'bogus'" in str(err.value)
        assert "('ps', 'isw')" in str(err.value)

    def test_spec_requirements(self):
        assert get_strategy("sync", "ps").requires_server
        assert not get_strategy("sync", "ps").requires_iswitch
        assert get_strategy("sync", "isw").requires_iswitch
        assert get_strategy("async", "isw").requires_iswitch

    def test_custom_strategy_registration(self):
        from repro.distributed.sync import SyncISwitch

        try:

            @register_strategy("sync", "isw2", requires_iswitch=True)
            class Custom(SyncISwitch):
                name = "sync-isw2"

            assert "isw2" in strategy_names("sync")
            result = run(
                ExperimentConfig(
                    strategy="isw2",
                    workload="dqn",
                    n_workers=2,
                    iterations=2,
                    telemetry=False,
                )
            )
            assert result.strategy == "sync-isw2"
            assert result.iterations == 2
        finally:
            unregister_strategy("sync", "isw2")
        assert "isw2" not in strategy_names("sync")

    def test_duplicate_registration_rejected(self):
        from repro.distributed.sync import SyncISwitch, SyncParameterServer

        with pytest.raises(ValueError, match="already registered"):
            register_strategy("sync", "isw")(SyncParameterServer)
        # Re-registering the same class is idempotent.
        register_strategy("sync", "isw", requires_iswitch=True)(SyncISwitch)

    def test_class_without_create_rejected(self):
        with pytest.raises(TypeError, match="create"):
            register_strategy("sync", "nocreate")(object)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            register_strategy("turbo", "x")


class TestAcceptance:
    """The issue's acceptance scenario: a 4-worker iSwitch DQN run with
    telemetry enabled produces link counters and lifecycle spans."""

    def test_full_telemetry_snapshot(self):
        result = run(
            ExperimentConfig(
                strategy="isw", workload="dqn", n_workers=4, iterations=4
            )
        )
        snap = result.telemetry
        assert snap is not None
        # Link counters: tx always, drop series present even at zero.
        assert snap.value("link.tx_packets") > 0
        assert snap.value("link.tx_bytes") > 0
        assert snap.has_metric("link.packets_dropped")
        assert snap.value("link.packets_dropped") == 0.0
        # Segment lifecycle spans from the in-switch engine.
        agg_spans = snap.spans_named("segment.aggregate")
        assert len(agg_spans) > 0
        assert all(s.end >= s.start for s in agg_spans)
        # Per-iteration spans from the sync runner: one per worker per
        # iteration.
        assert len(snap.spans_named("iteration")) == 4 * 4
        assert len(snap.spans_named("compute.lgc")) == 4 * 4
        # Snapshot meta identifies the experiment.
        assert snap.meta["strategy"] == "sync-isw"
        assert snap.meta["n_workers"] == 4

    def test_lossy_run_recovers_and_counts_drops(self):
        result = run(
            ExperimentConfig(
                strategy="isw",
                workload="dqn",
                n_workers=3,
                iterations=2,
                loss_rate=2e-3,
                seed=2,
            )
        )
        assert result.iterations == 2
        snap = result.telemetry
        assert snap.value("link.packets_dropped") > 0

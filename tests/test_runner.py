"""Tests for the cluster/algorithm factories."""

import numpy as np
import pytest

from repro.distributed.runner import build_cluster, make_algorithm
from repro.rl import A2C, DDPG, DQN, PPO
from repro.workloads import get_profile


class TestMakeAlgorithm:
    @pytest.mark.parametrize(
        "name, cls", [("dqn", DQN), ("a2c", A2C), ("ppo", PPO), ("ddpg", DDPG)]
    )
    def test_workload_classes(self, name, cls):
        assert isinstance(make_algorithm(name, seed=0), cls)

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_algorithm("sac", seed=0)

    def test_shared_init_different_exploration(self):
        a = make_algorithm("ppo", seed=1)
        b = make_algorithm("ppo", seed=2)
        np.testing.assert_array_equal(a.get_weights(), b.get_weights())
        # Exploration diverges.
        obs = a.env.reset()
        b.env.reset()
        actions_a = [a.act(obs) for _ in range(5)]
        actions_b = [b.act(obs) for _ in range(5)]
        assert not np.allclose(np.stack(actions_a), np.stack(actions_b))

    def test_overrides_forwarded(self):
        algo = make_algorithm("dqn", seed=0, batch_size=8)
        assert algo.batch_size == 8


class TestBuildCluster:
    def test_small_cluster_is_star(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            4, profile, with_server=False, use_iswitch=False
        )
        assert len(net.switches) == 1
        assert len(workers) == 4

    def test_large_cluster_is_tree(self):
        profile = get_profile("ppo")
        net, workers = build_cluster(
            9, profile, with_server=False, use_iswitch=False
        )
        assert len(net.switches) == 4  # 3 ToRs + root
        assert len(workers) == 9

    def test_iswitch_factory_used(self):
        from repro.core import ISwitch

        profile = get_profile("ppo")
        net, _ = build_cluster(4, profile, with_server=False, use_iswitch=True)
        assert all(isinstance(s, ISwitch) for s in net.switches)

    def test_server_present_when_requested(self):
        profile = get_profile("ppo")
        net, _ = build_cluster(4, profile, with_server=True, use_iswitch=False)
        assert net.server is not None

    def test_workers_share_init(self):
        profile = get_profile("ppo")
        _, workers = build_cluster(
            3, profile, with_server=False, use_iswitch=False
        )
        reference = workers[0].algorithm.get_weights()
        for worker in workers[1:]:
            np.testing.assert_array_equal(
                worker.algorithm.get_weights(), reference
            )

"""Autograd correctness: every op's VJP checked against finite differences."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, is_grad_enabled, no_grad


def numeric_gradient(fn, x, eps=1e-6):
    """Central finite differences of a scalar fn at array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    out = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        out[i] = (up - down) / (2 * eps)
    return grad


def check_op(op, shape=(3, 4), seed=0, positive=False, atol=1e-5):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    if positive:
        data = np.abs(data) + 0.5
    tensor = Tensor(data.copy(), requires_grad=True)
    loss = op(tensor).sum()
    loss.backward()

    def scalar_fn(arr):
        return float(op(Tensor(arr)).sum().data)

    expected = numeric_gradient(scalar_fn, data.copy())
    np.testing.assert_allclose(tensor.grad, expected, atol=atol, rtol=1e-4)


class TestElementwiseOps:
    def test_add(self):
        check_op(lambda t: t + 3.0)

    def test_sub(self):
        check_op(lambda t: 5.0 - t)

    def test_mul(self):
        check_op(lambda t: t * 2.5)

    def test_div(self):
        check_op(lambda t: t / 2.0)

    def test_rdiv(self):
        check_op(lambda t: 1.0 / t, positive=True)

    def test_pow(self):
        check_op(lambda t: t**3.0)

    def test_sqrt(self):
        check_op(lambda t: t.sqrt(), positive=True)

    def test_neg(self):
        check_op(lambda t: -t)

    def test_exp(self):
        check_op(lambda t: t.exp())

    def test_log(self):
        check_op(lambda t: t.log(), positive=True)

    def test_tanh(self):
        check_op(lambda t: t.tanh())

    def test_sigmoid(self):
        check_op(lambda t: t.sigmoid())

    def test_relu(self):
        # Offset to keep inputs away from the kink.
        check_op(lambda t: (t + 0.05).relu(), seed=3)

    def test_abs(self):
        check_op(lambda t: (t + 0.05).abs(), seed=3)

    def test_clip(self):
        check_op(lambda t: t.clip(-0.5, 0.5), seed=4)


class TestReductionsAndShape:
    def test_sum_all(self):
        check_op(lambda t: t.sum() * 2.0)

    def test_sum_axis(self):
        check_op(lambda t: (t.sum(axis=0) ** 2.0))

    def test_sum_keepdims(self):
        check_op(lambda t: (t.sum(axis=1, keepdims=True) * t))

    def test_mean(self):
        check_op(lambda t: t.mean(axis=1) ** 2.0)

    def test_reshape(self):
        check_op(lambda t: (t.reshape(12) ** 2.0), shape=(3, 4))

    def test_transpose(self):
        check_op(lambda t: (t.transpose() @ Tensor(np.ones((3, 2)))))

    def test_getitem(self):
        check_op(lambda t: t[1] ** 2.0)

    def test_matmul_left(self):
        weight = np.random.default_rng(1).standard_normal((4, 2))
        check_op(lambda t: t @ Tensor(weight))

    def test_matmul_right(self):
        left = np.random.default_rng(2).standard_normal((2, 3))
        check_op(lambda t: Tensor(left) @ t)

    def test_gather(self):
        indices = np.array([1, 3, 0])
        check_op(lambda t: t.gather(indices) ** 2.0)

    def test_concat(self):
        other = np.random.default_rng(5).standard_normal((3, 2))
        check_op(lambda t: concat([t, Tensor(other)], axis=1).sum(axis=1) ** 2.0)


class TestSoftmaxFamily:
    def test_log_softmax(self):
        check_op(lambda t: t.log_softmax(axis=-1) ** 2.0)

    def test_softmax_sums_to_one(self):
        probs = Tensor(np.random.default_rng(0).standard_normal((5, 7))).softmax()
        np.testing.assert_allclose(probs.numpy().sum(axis=-1), 1.0, rtol=1e-10)

    def test_softmax_gradient(self):
        check_op(lambda t: (t.softmax(axis=-1) * Tensor(np.arange(4.0))))


class TestBroadcasting:
    def test_bias_broadcast(self):
        bias = Tensor(np.random.default_rng(0).standard_normal(4), requires_grad=True)
        x = Tensor(np.random.default_rng(1).standard_normal((3, 4)))
        ((x + bias) ** 2.0).sum().backward()
        expected = (2 * (x.numpy() + bias.numpy())).sum(axis=0)
        np.testing.assert_allclose(bias.grad, expected, atol=1e-10)

    def test_scalar_broadcast(self):
        scale = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(np.ones((3, 4)))
        (x * scale).sum().backward()
        assert scale.grad == pytest.approx(12.0)

    def test_row_times_matrix(self):
        row = Tensor(np.ones((1, 4)), requires_grad=True)
        x = Tensor(np.full((3, 4), 2.0))
        (row * x).sum().backward()
        np.testing.assert_allclose(row.grad, np.full((1, 4), 6.0))


class TestGraphMechanics:
    def test_gradient_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx 6x^2 = 12x
        assert x.grad[0] == pytest.approx(24.0)

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError, match="scalar"):
            (x * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_no_grad_disables_taping(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_zero_grad(self):
        x = Tensor(np.ones(1), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(1), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(1), requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(1.0)

    def test_float32_inputs_promoted(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        assert x.data.dtype == np.float64

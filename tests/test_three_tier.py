"""Tests for the three-tier (ToR -> AGG -> Core) topology and aggregation."""

import numpy as np
import pytest

from repro.core import (
    AggregationClient,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
)
from repro.netsim import Packet, Simulator
from repro.netsim.topology import build_three_tier


class TestTopologyShape:
    def test_switch_layers(self):
        net = build_three_tier(Simulator(), 12, workers_per_rack=3, racks_per_pod=2)
        names = [s.name for s in net.switches]
        assert names == ["tor0", "tor1", "tor2", "tor3", "agg0", "agg1", "core"]
        assert net.root.name == "core"

    def test_partial_layers(self):
        net = build_three_tier(Simulator(), 7, workers_per_rack=3, racks_per_pod=2)
        names = [s.name for s in net.switches]
        # 3 racks (3+3+1 workers), 2 pods.
        assert names == ["tor0", "tor1", "tor2", "agg0", "agg1", "core"]
        assert len(net.workers) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            build_three_tier(Simulator(), 0)
        with pytest.raises(ValueError):
            build_three_tier(Simulator(), 4, racks_per_pod=0)


class TestRouting:
    def test_cross_pod_connectivity(self):
        sim = Simulator()
        net = build_three_tier(sim, 12)
        got = []
        net.workers[11].bind(9, lambda p: got.append(p.src))
        net.workers[0].send(
            Packet(src="worker0", dst="worker11", payload_size=10, dst_port=9)
        )
        sim.run()
        assert got == ["worker0"]
        # The path crossed the core (different pods).
        assert net.root.forwarded_packets == 1

    def test_intra_pod_stays_below_core(self):
        sim = Simulator()
        net = build_three_tier(sim, 12)
        got = []
        # worker3 is in tor1 (same pod/agg0 as tor0's worker0).
        net.workers[3].bind(9, lambda p: got.append(p.src))
        net.workers[0].send(
            Packet(src="worker0", dst="worker3", payload_size=10, dst_port=9)
        )
        sim.run()
        assert got == ["worker0"]
        assert net.root.rx_packets == 0


class TestThreeLevelAggregation:
    def _build(self, n_workers):
        sim = Simulator()
        net = build_three_tier(sim, n_workers, switch_factory=iswitch_factory)
        configure_aggregation(net)
        return sim, net

    def test_hierarchy_inferred_from_uplinks(self):
        _, net = self._build(12)
        by_name = {s.name: s for s in net.switches}
        assert by_name["tor0"].parent_address == "agg0"
        assert by_name["tor3"].parent_address == "agg1"
        assert by_name["agg0"].parent_address == "core"
        assert by_name["core"].parent_address is None
        assert by_name["tor0"].engine.threshold == 3  # workers
        assert by_name["agg0"].engine.threshold == 2  # ToRs
        assert by_name["core"].engine.threshold == 2  # AGGs

    @pytest.mark.parametrize("n_workers", [6, 12])
    def test_sum_correct_across_three_levels(self, n_workers):
        sim, net = self._build(n_workers)
        plan = SegmentPlan(2000, frames_per_chunk=2)
        results = {}
        clients = [
            AggregationClient(
                w,
                net.tor_of_worker[i].name,
                plan,
                on_round_complete=lambda r, v, n=w.name: results.__setitem__(n, v),
            )
            for i, w in enumerate(net.workers)
        ]
        rng = np.random.default_rng(1)
        vectors = [
            rng.standard_normal(2000).astype(np.float32) for _ in clients
        ]
        # Snapshot first: the engine adopts a first writable contribution
        # as its accumulation buffer, so senders' arrays may be summed into.
        expected = np.sum(vectors, axis=0)
        for client, vector in zip(clients, vectors):
            client.send_gradient(vector, 0)
        sim.run()
        assert len(results) == n_workers
        for got in results.values():
            np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    def test_partial_sums_flow_through_aggs(self):
        sim, net = self._build(12)
        plan = SegmentPlan(500)
        clients = [
            AggregationClient(w, net.tor_of_worker[i].name, plan)
            for i, w in enumerate(net.workers)
        ]
        for client in clients:
            client.send_gradient(np.ones(500, dtype=np.float32), 0)
        sim.run()
        by_name = {s.name: s for s in net.switches}
        # Each ToR forwarded one partial sum per chunk; each AGG too.
        assert by_name["tor0"].upstream_forwards == plan.n_chunks
        assert by_name["agg0"].upstream_forwards == plan.n_chunks
        assert by_name["core"].result_broadcasts == plan.n_chunks

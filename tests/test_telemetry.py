"""Tests for the repro.telemetry subsystem: registry, tracer, exporters,
and the simulator/netsim instrumentation hooks."""

import json

import numpy as np
import pytest

from repro.core import (
    AggregationClient,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
)
from repro.netsim import Simulator, build_star
from repro.telemetry import (
    NULL_HUB,
    MetricsRegistry,
    SpanTracer,
    TelemetryHub,
    to_chrome_trace,
    to_json,
    to_prometheus,
)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("pkts").inc()
        reg.counter("pkts").inc(2)
        assert reg.counter("pkts").value == 3.0

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("pkts", link="a").inc(1)
        reg.counter("pkts", link="b").inc(5)
        assert reg.counter("pkts", link="a").value == 1.0
        assert reg.counter("pkts", link="b").value == 5.0
        assert len(reg) == 2

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("m", a="1", b="2").inc()
        assert reg.counter("m", b="2", a="1").value == 1.0
        assert len(reg) == 1

    def test_negative_counter_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("m").inc(-1)

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.set(3)
        assert g.value == 3.0
        assert g.max_value == 7.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        # Cumulative counts: <=1: 1, <=10: 2, <=100: 3, +Inf: 4.
        assert h.cumulative_counts() == [1, 2, 3, 4]

    def test_histogram_as_dict_has_inf_bucket(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0,)).observe(2.0)
        [d] = reg.as_dicts()
        les = [b["le"] for b in d["buckets"]]
        assert les[-1] == "+Inf"
        assert d["buckets"][-1]["count"] == 1

    def test_as_dicts_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c", x="1").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        json.dumps(reg.as_dicts())


class TestSpanTracer:
    def test_begin_end_records_duration(self):
        t = [0.0]
        tracer = SpanTracer(lambda: t[0])
        handle = tracer.begin("work", track="w0")
        t[0] = 2.5
        tracer.end(handle)
        [span] = tracer.spans
        assert span.name == "work"
        assert span.duration == pytest.approx(2.5)

    def test_span_at_rejects_negative_duration(self):
        tracer = SpanTracer(lambda: 0.0)
        with pytest.raises(ValueError):
            tracer.span_at("bad", 2.0, 1.0)

    def test_record_cap_counts_drops(self):
        tracer = SpanTracer(lambda: 0.0, max_records=2)
        for i in range(5):
            tracer.event(f"e{i}")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3


class TestTelemetryHub:
    def test_disabled_hub_is_inert(self):
        hub = TelemetryHub(enabled=False)
        hub.inc("m")
        hub.set_gauge("g", 1.0)
        hub.observe("h", 1.0)
        hub.event("e")
        handle = hub.begin_span("s")
        hub.end_span(handle)
        snap = hub.snapshot()
        assert snap.metrics == [] and snap.spans == [] and snap.events == []

    def test_null_hub_never_accumulates(self):
        NULL_HUB.inc("m")
        assert len(NULL_HUB.metrics) == 0

    def test_collector_runs_at_snapshot(self):
        hub = TelemetryHub()
        hub.add_collector(lambda h: h.metrics.counter("scraped").inc(9))
        snap = hub.snapshot()
        assert snap.value("scraped") == 9.0

    def test_snapshot_meta_merge(self):
        hub = TelemetryHub()
        snap = hub.snapshot(meta={"strategy": "isw"})
        assert snap.meta["strategy"] == "isw"
        assert "n_metrics" in snap.meta


class TestExporters:
    def _populated_hub(self):
        t = [0.0]
        hub = TelemetryHub(clock=lambda: t[0])
        hub.inc("pkts", 3, link="a")
        hub.observe("lat", 0.5)
        hub.span_at("agg", 0.0, 1.5e-3, cat="aggregation", track="tor0")
        t[0] = 2e-3
        hub.event("drop", track="tor0")
        return hub

    def test_chrome_trace_valid_and_monotone(self):
        doc = to_chrome_trace(self._populated_hub().snapshot())
        parsed = json.loads(json.dumps(doc))
        events = [e for e in parsed["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        phases = {e["ph"] for e in events}
        assert "X" in phases and "i" in phases
        # Spans carry microseconds of simulated time.
        [span] = [e for e in events if e["ph"] == "X"]
        assert span["dur"] == pytest.approx(1500.0)

    def test_chrome_trace_names_tracks(self):
        doc = to_chrome_trace(self._populated_hub().snapshot())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(m["args"]["name"] == "tor0" for m in meta)

    def test_prometheus_format(self):
        text = to_prometheus(self._populated_hub().snapshot())
        assert "# TYPE repro_pkts counter" in text
        assert 'repro_pkts{link="a"} 3.0' in text
        assert "repro_lat_count" in text and "repro_lat_sum" in text
        assert 'le="+Inf"' in text

    def test_json_round_trips(self):
        snap = self._populated_hub().snapshot()
        doc = json.loads(to_json(snap))
        assert doc["metrics"] and doc["spans"] and doc["events"]


class TestSimulatorIntegration:
    def _run_cluster(self, hub):
        sim = Simulator(telemetry=hub)
        net = build_star(sim, 3, switch_factory=iswitch_factory)
        configure_aggregation(net)
        plan = SegmentPlan(3000)
        clients = [AggregationClient(w, "tor0", plan) for w in net.workers]
        for client in clients:
            client.send_gradient(np.ones(3000, dtype=np.float32), 0)
        sim.run()
        return net

    def test_link_and_switch_metrics_recorded(self):
        hub = TelemetryHub()
        self._run_cluster(hub)
        snap = hub.snapshot()
        assert snap.value("link.tx_packets") > 0
        assert snap.value("switch.contributions", switch="tor0") > 0
        assert snap.value("switch.result_broadcasts") > 0
        assert len(snap.spans_named("segment.aggregate")) > 0

    def test_aggregate_spans_cover_first_arrival_to_complete(self):
        hub = TelemetryHub()
        self._run_cluster(hub)
        for span in hub.snapshot().spans_named("segment.aggregate"):
            assert span.end >= span.start >= 0.0

    def test_disabled_by_default(self):
        net = self._run_cluster(None)
        assert net.sim.telemetry is NULL_HUB
        assert len(NULL_HUB.metrics) == 0

    def test_event_counters_by_kind(self):
        hub = TelemetryHub()
        self._run_cluster(hub)
        snap = hub.snapshot()
        assert snap.value("sim.events_processed") > 0

"""Tests for the packet-capture tracer."""

import numpy as np
import pytest

from repro.core import (
    TOS_CONTROL,
    TOS_DATA_UP,
    AggregationClient,
    SegmentPlan,
    configure_aggregation,
    iswitch_factory,
)
from repro.netsim import PacketCapture, Packet, Simulator, build_star


def simple_pair():
    sim = Simulator()
    net = build_star(sim, 2)
    return sim, net


class TestCaptureBasics:
    def test_records_received_packets(self):
        sim, net = simple_pair()
        capture = PacketCapture(net.workers[1])
        net.workers[0].send(
            Packet(src="worker0", dst="worker1", payload_size=100, dst_port=9)
        )
        sim.run()
        assert len(capture) == 1
        record = capture.records[0]
        assert record.src == "worker0"
        assert record.wire_size == 150
        assert record.time == sim.now

    def test_filter(self):
        sim, net = simple_pair()
        capture = PacketCapture(
            net.workers[1], packet_filter=lambda p: p.dst_port == 7
        )
        for port in (7, 8, 7):
            net.workers[0].send(
                Packet(src="worker0", dst="worker1", payload_size=10, dst_port=port)
            )
        sim.run()
        assert len(capture) == 2

    def test_max_records(self):
        sim, net = simple_pair()
        capture = PacketCapture(net.workers[1], max_records=2)
        for _ in range(5):
            net.workers[0].send(
                Packet(src="worker0", dst="worker1", payload_size=10)
            )
        sim.run()
        assert len(capture) == 2
        assert capture.dropped_records == 3

    def test_detach_restores_handler(self):
        sim, net = simple_pair()
        capture = PacketCapture(net.workers[1])
        capture.detach()
        net.workers[0].send(
            Packet(src="worker0", dst="worker1", payload_size=10)
        )
        sim.run()
        assert len(capture) == 0
        assert net.workers[1].rx_packets == 1  # traffic still flows

    def test_device_still_processes_captured_packets(self):
        sim, net = simple_pair()
        got = []
        net.workers[1].bind(9, got.append)
        PacketCapture(net.workers[1])
        net.workers[0].send(
            Packet(src="worker0", dst="worker1", payload_size=10, dst_port=9)
        )
        sim.run()
        assert len(got) == 1


class TestTrafficAnalysis:
    def test_control_traffic_negligible_vs_gradient_data(self):
        """Attach a capture to the switch during one aggregation round:
        iSwitch's own control overhead is a rounding error next to the
        gradient payload, as a bump-in-the-wire extension should be."""
        sim = Simulator()
        net = build_star(sim, 4, switch_factory=iswitch_factory)
        capture = PacketCapture(net.switches[0])
        configure_aggregation(net)
        plan = SegmentPlan(20_000)
        clients = [AggregationClient(w, "tor0", plan) for w in net.workers]
        # One control exchange each (Join), then the data.
        for client in clients:
            client.join()
        for client in clients:
            client.send_gradient(
                np.ones(20_000, dtype=np.float32), round_index=0
            )
        sim.run()
        by_tos = capture.by_tos()
        assert by_tos[TOS_DATA_UP] > 100 * by_tos[TOS_CONTROL]

    def test_between_window(self):
        sim, net = simple_pair()
        capture = PacketCapture(net.workers[1])
        net.workers[0].send(Packet(src="worker0", dst="worker1", payload_size=10))
        sim.schedule(
            1.0,
            lambda: net.workers[0].send(
                Packet(src="worker0", dst="worker1", payload_size=10)
            ),
        )
        sim.run()
        assert len(capture.between(0.5, 2.0)) == 1

    def test_total_bytes(self):
        sim, net = simple_pair()
        capture = PacketCapture(net.workers[1])
        for _ in range(3):
            net.workers[0].send(
                Packet(src="worker0", dst="worker1", payload_size=100)
            )
        sim.run()
        assert capture.total_bytes() == 3 * 150

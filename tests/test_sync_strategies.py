"""Tests for the three synchronous distributed-training strategies."""

import numpy as np
import pytest

from repro.distributed import run_sync
from repro.workloads import CostModel, get_profile


@pytest.fixture(scope="module")
def results():
    """One small run per strategy on the PPO workload (cheap)."""
    return {
        strategy: run_sync(strategy, "ppo", n_workers=4, n_iterations=6, seed=3)
        for strategy in ("ps", "ar", "isw")
    }


class TestCommonBehaviour:
    @pytest.mark.parametrize("strategy", ["ps", "ar", "isw"])
    def test_all_workers_complete_all_iterations(self, results, strategy):
        result = results[strategy]
        assert all(w.iterations_done == 6 for w in result.workers)
        assert result.iterations == 6

    def test_identical_weight_trajectories(self, results):
        """The paper's equivalence: sync strategies differ only in timing."""
        weights = {
            s: results[s].workers[0].algorithm.get_weights()
            for s in ("ps", "ar", "isw")
        }
        np.testing.assert_allclose(weights["ps"], weights["ar"], atol=1e-4)
        np.testing.assert_allclose(weights["ps"], weights["isw"], atol=1e-4)

    def test_replicas_agree_within_strategy(self, results):
        for result in results.values():
            reference = result.workers[0].algorithm.get_weights()
            for worker in result.workers[1:]:
                np.testing.assert_allclose(
                    worker.algorithm.get_weights(), reference, atol=1e-4
                )

    @pytest.mark.parametrize("strategy", ["ps", "ar", "isw"])
    def test_breakdown_accounts_aggregation(self, results, strategy):
        breakdown = results[strategy].breakdown
        assert breakdown.totals["grad_aggregation"] > 0
        assert breakdown.totals["backward_pass"] > 0
        assert breakdown.iterations == 4 * 6

    def test_elapsed_positive_and_ordered(self, results):
        # For the small PPO model: iSwitch < PS < AR (paper's crossover).
        assert 0 < results["isw"].elapsed < results["ps"].elapsed
        assert results["ps"].elapsed < results["ar"].elapsed


class TestPerStrategyDetails:
    def test_ps_uses_server_topology(self, results):
        assert results["ps"].strategy == "sync-ps"

    def test_big_model_ordering_isw_ar_ps(self):
        measured = {
            s: run_sync(s, "dqn", n_workers=4, n_iterations=4, seed=1).per_iteration_time
            for s in ("ps", "ar", "isw")
        }
        assert measured["isw"] < measured["ar"] < measured["ps"]

    def test_projected_hours_uses_paper_iterations(self, results):
        profile = get_profile("ppo")
        result = results["isw"]
        hours = result.projected_hours(profile.paper_iterations)
        assert hours == pytest.approx(
            result.per_iteration_time * profile.paper_iterations / 3600.0
        )

    def test_invalid_strategy_rejected(self):
        with pytest.raises(KeyError, match="unknown sync strategy"):
            run_sync("nccl", "ppo")

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            run_sync("isw", "ppo", n_iterations=0)

    def test_custom_cost_model_changes_timing(self):
        slow = CostModel(allreduce_step_overhead=50e-3)
        fast = run_sync("ar", "ppo", n_workers=4, n_iterations=3, seed=1)
        slowed = run_sync(
            "ar", "ppo", n_workers=4, n_iterations=3, seed=1, cost_model=slow
        )
        assert slowed.per_iteration_time > fast.per_iteration_time

    def test_isw_carries_real_aggregated_data(self):
        """The iSwitch path sums actual gradient payloads in the switch."""
        result = run_sync("isw", "ppo", n_workers=2, n_iterations=2, seed=9)
        assert result.final_average_reward != float("-inf") or True
        # Weight movement proves aggregated (non-zero) gradients arrived.
        assert result.workers[0].algorithm.updates_applied == 2

    def test_rack_scale_sync(self):
        result = run_sync("isw", "ppo", n_workers=6, n_iterations=3, seed=1)
        assert result.n_workers == 6
        reference = result.workers[0].algorithm.get_weights()
        for worker in result.workers[1:]:
            np.testing.assert_allclose(
                worker.algorithm.get_weights(), reference, atol=1e-4
            )

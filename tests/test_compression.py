"""Tests for gradient wire codecs and compressed aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AggregationClient,
    Float16Codec,
    Float32Codec,
    Int8Codec,
    SegmentPlan,
    configure_aggregation,
    get_codec,
    iswitch_factory,
)
from repro.netsim import Simulator, build_star


class TestCodecs:
    def test_lookup(self):
        assert get_codec("fp32").bytes_per_element == 4
        assert get_codec("FP16").bytes_per_element == 2
        assert get_codec("int8").bytes_per_element == 1

    def test_unknown_codec(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("zfp")

    def test_fp32_is_identity(self):
        vector = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(Float32Codec().roundtrip(vector), vector)

    def test_fp16_error_bounded(self):
        vector = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
        out = Float16Codec().roundtrip(vector)
        rel = np.abs(out - vector) / np.maximum(np.abs(vector), 1e-6)
        assert rel.max() < 1e-3  # half precision: ~2^-11

    def test_int8_error_bounded_by_scale(self):
        rng = np.random.default_rng(1)
        vector = rng.standard_normal(1000).astype(np.float32)
        out = Int8Codec().roundtrip(vector)
        scale = np.abs(vector).max() / 127.0
        assert np.abs(out - vector).max() <= 0.5 * scale + 1e-7

    def test_int8_zero_vector(self):
        out = Int8Codec().roundtrip(np.zeros(10, dtype=np.float32))
        np.testing.assert_array_equal(out, 0.0)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_idempotent(self, seed):
        vector = (
            np.random.default_rng(seed).standard_normal(64).astype(np.float32)
        )
        for codec in (Float32Codec(), Float16Codec(), Int8Codec()):
            once = codec.roundtrip(vector)
            twice = codec.roundtrip(once)
            np.testing.assert_array_equal(once, twice)


class TestCompressedPlans:
    def test_fp16_halves_wire_bytes(self):
        full = SegmentPlan(10_000, bytes_per_element=4)
        half = SegmentPlan(10_000, bytes_per_element=2)
        assert half.wire_bytes < 0.55 * full.wire_bytes

    def test_elements_per_frame_scales(self):
        assert SegmentPlan(1000, bytes_per_element=2).elements_per_frame == 732
        assert SegmentPlan(1000, bytes_per_element=1).elements_per_frame == 1464

    def test_split_assemble_roundtrip_with_compression_width(self):
        plan = SegmentPlan(5000, bytes_per_element=2)
        vector = np.random.default_rng(0).standard_normal(5000).astype(np.float32)
        np.testing.assert_array_equal(
            plan.assemble(plan.split(vector, 0)), vector
        )

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SegmentPlan(100, bytes_per_element=0)


class TestCompressedAggregation:
    def _run(self, codec_name):
        sim = Simulator()
        net = build_star(sim, 4, switch_factory=iswitch_factory)
        configure_aggregation(net)
        codec = get_codec(codec_name)
        plan = SegmentPlan(2000, bytes_per_element=codec.bytes_per_element)
        results = {}
        clients = [
            AggregationClient(
                w,
                "tor0",
                plan,
                codec=codec,
                on_round_complete=lambda r, v, n=w.name: results.__setitem__(n, v),
            )
            for w in net.workers
        ]
        rng = np.random.default_rng(7)
        vectors = [rng.standard_normal(2000).astype(np.float32) for _ in clients]
        for client, vector in zip(clients, vectors):
            # Send a copy: the engine adopts a first writable contribution
            # as its accumulation buffer, and the assertions below need the
            # pristine vectors.
            client.send_gradient(vector.copy(), 0)
        sim.run()
        return sim.now, results, vectors

    def test_fp16_aggregation_close_to_exact(self):
        _, results, vectors = self._run("fp16")
        expected = np.sum(vectors, axis=0)
        for got in results.values():
            np.testing.assert_allclose(got, expected, atol=5e-3)

    def test_int8_aggregation_bounded_error(self):
        _, results, vectors = self._run("int8")
        expected = np.sum(vectors, axis=0)
        scale = max(np.abs(v).max() for v in vectors) / 127.0
        for got in results.values():
            assert np.abs(got - expected).max() <= 4 * (0.5 * scale) + 1e-5

    def test_compression_shortens_aggregation(self):
        t_fp32, _, _ = self._run("fp32")
        t_fp16, _, _ = self._run("fp16")
        t_int8, _, _ = self._run("int8")
        assert t_int8 < t_fp16 < t_fp32

"""Tests for gradient wire codecs and compressed aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AggregationClient,
    Float16Codec,
    Float32Codec,
    Int8Codec,
    Int32BlockScaledCodec,
    SegmentPlan,
    TopKCodec,
    configure_aggregation,
    get_codec,
    iswitch_factory,
)
from repro.core.compression import CODECS, WIRE_CODECS, codec_for_tag
from repro.netsim import Simulator, build_star


class TestCodecs:
    def test_lookup(self):
        assert get_codec("fp32").bytes_per_element == 4
        assert get_codec("FP16").bytes_per_element == 2
        assert get_codec("int8").bytes_per_element == 1

    def test_unknown_codec(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("zfp")

    def test_fp32_is_identity(self):
        vector = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(Float32Codec().roundtrip(vector), vector)

    def test_fp16_error_bounded(self):
        vector = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
        out = Float16Codec().roundtrip(vector)
        rel = np.abs(out - vector) / np.maximum(np.abs(vector), 1e-6)
        assert rel.max() < 1e-3  # half precision: ~2^-11

    def test_int8_error_bounded_by_scale(self):
        rng = np.random.default_rng(1)
        vector = rng.standard_normal(1000).astype(np.float32)
        out = Int8Codec().roundtrip(vector)
        scale = np.abs(vector).max() / 127.0
        assert np.abs(out - vector).max() <= 0.5 * scale + 1e-7

    def test_int8_zero_vector(self):
        out = Int8Codec().roundtrip(np.zeros(10, dtype=np.float32))
        np.testing.assert_array_equal(out, 0.0)

    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_idempotent(self, seed):
        vector = (
            np.random.default_rng(seed).standard_normal(64).astype(np.float32)
        )
        for codec in CODECS.values():
            once = codec.roundtrip(vector)
            twice = codec.roundtrip(once)
            np.testing.assert_array_equal(once, twice)

    def test_int32bs_error_bounded_by_grid(self):
        codec = Int32BlockScaledCodec()
        vector = np.random.default_rng(2).standard_normal(1000)
        vector = vector.astype(np.float32)
        out = codec.roundtrip(vector)
        assert np.abs(out - vector).max() <= 2.0 ** -(codec.exponent + 1)

    def test_int32bs_saturates_and_zeroes_nan(self):
        codec = Int32BlockScaledCodec()
        out = codec.roundtrip(
            np.array([1e9, -1e9, np.nan, np.inf, -np.inf], dtype=np.float32)
        )
        bound = np.float32(32767 * 2.0 ** -codec.exponent)
        np.testing.assert_array_equal(
            out, np.array([bound, -bound, 0.0, bound, -bound], dtype=np.float32)
        )

    def test_int32bs_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="exponent"):
            Int32BlockScaledCodec(exponent=0)
        with pytest.raises(ValueError, match="sum_shift"):
            Int32BlockScaledCodec(exponent=8, sum_shift=8)

    def test_int32bs_engine_path_matches_finalized_float_path(self):
        codec = Int32BlockScaledCodec()
        rng = np.random.default_rng(3)
        parts = [
            codec.roundtrip(rng.standard_normal(512).astype(np.float32))
            for _ in range(8)
        ]
        # Float-canonical: sum the on-grid fp32 values, then finalize.
        float_result = codec.finalize_sum(np.sum(np.stack(parts), axis=0))
        # Integer: widen to int32 accumulators, sum, emit.
        acc = codec.engine_ingest(parts[0])
        for part in parts[1:]:
            acc = acc + codec.engine_ingest(part)
        int_result = codec.engine_emit(acc)
        np.testing.assert_array_equal(float_result, int_result)

    def test_topk_keeps_largest_quarter(self):
        codec = TopKCodec()
        vector = np.arange(1, 101, dtype=np.float32)
        out = codec.roundtrip(vector)
        assert np.count_nonzero(out) == 25
        np.testing.assert_array_equal(out[75:], vector[75:])
        np.testing.assert_array_equal(out[:75], 0.0)

    def test_topk_values_are_exact(self):
        codec = TopKCodec()
        vector = np.random.default_rng(4).standard_normal(500)
        vector = vector.astype(np.float32)
        out = codec.roundtrip(vector)
        kept = out != 0
        np.testing.assert_array_equal(out[kept], vector[kept])

    def test_fp16_finalize_sum_rounds_to_grid(self):
        codec = Float16Codec()
        # 1.0 + 2**-11 is representable in fp32 but not fp16.
        off_grid = np.array([1.0 + 2.0 ** -11], dtype=np.float32)
        finalized = codec.finalize_sum(off_grid)
        np.testing.assert_array_equal(finalized, codec.roundtrip(off_grid))
        assert finalized[0] != off_grid[0]


class TestCodecRegistry:
    """The module docstring's codec table stays true to the registry."""

    def _docstring_rows(self):
        import repro.core.compression as mod

        lines = mod.__doc__.splitlines()
        rules = [
            i for i, line in enumerate(lines) if line.startswith("====")
        ]
        # The RST grid table: header rule, header, rule, rows..., rule.
        assert len(rules) >= 3, "codec table missing from module docstring"
        header = lines[rules[0] + 1].split()
        assert header[:3] == ["Codec", "B/elt", "Tag"]
        rows = {}
        for line in lines[rules[1] + 1 : rules[2]]:
            parts = line.split()
            rows[parts[0].strip("`")] = {
                "b_per_elt": parts[1], "tag": parts[2]
            }
        return rows

    def test_docstring_table_matches_registry(self):
        rows = self._docstring_rows()
        assert set(rows) == set(CODECS)
        for name, row in rows.items():
            codec = CODECS[name]
            assert int(row["b_per_elt"]) == codec.bytes_per_element, name
            if row["tag"] == "--":
                assert codec.wire_tag is None, name
            else:
                assert int(row["tag"]) == codec.wire_tag, name

    def test_wire_codecs_keyed_by_tag(self):
        assert set(WIRE_CODECS) == {0, 1, 2, 3}
        for tag, codec in WIRE_CODECS.items():
            assert codec.wire_tag == tag
            assert codec_for_tag(tag) is codec

    def test_simulator_only_codecs_refuse_the_wire(self):
        from repro.core.protocol import ProtocolError

        int8 = get_codec("int8")
        assert int8.wire_tag is None
        with pytest.raises(ProtocolError, match="no wire format"):
            int8.encode_payload(np.zeros(4, dtype=np.float32))
        with pytest.raises(ProtocolError, match="no wire format"):
            int8.decode_payload(b"\x00" * 4)

    def test_doctests_pass(self):
        import doctest

        import repro.core.compression as mod

        result = doctest.testmod(
            mod, extraglobs={"get_codec": get_codec}
        )
        assert result.attempted > 0
        assert result.failed == 0


class TestCompressedPlans:
    def test_fp16_halves_wire_bytes(self):
        full = SegmentPlan(10_000, bytes_per_element=4)
        half = SegmentPlan(10_000, bytes_per_element=2)
        assert half.wire_bytes < 0.55 * full.wire_bytes

    def test_elements_per_frame_scales(self):
        assert SegmentPlan(1000, bytes_per_element=2).elements_per_frame == 732
        assert SegmentPlan(1000, bytes_per_element=1).elements_per_frame == 1464

    def test_split_assemble_roundtrip_with_compression_width(self):
        plan = SegmentPlan(5000, bytes_per_element=2)
        vector = np.random.default_rng(0).standard_normal(5000).astype(np.float32)
        np.testing.assert_array_equal(
            plan.assemble(plan.split(vector, 0)), vector
        )

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SegmentPlan(100, bytes_per_element=0)


class TestCompressedAggregation:
    def _run(self, codec_name):
        sim = Simulator()
        net = build_star(sim, 4, switch_factory=iswitch_factory)
        configure_aggregation(net)
        codec = get_codec(codec_name)
        plan = SegmentPlan(2000, bytes_per_element=codec.bytes_per_element)
        results = {}
        clients = [
            AggregationClient(
                w,
                "tor0",
                plan,
                codec=codec,
                on_round_complete=lambda r, v, n=w.name: results.__setitem__(n, v),
            )
            for w in net.workers
        ]
        rng = np.random.default_rng(7)
        vectors = [rng.standard_normal(2000).astype(np.float32) for _ in clients]
        for client, vector in zip(clients, vectors):
            # Send a copy: the engine adopts a first writable contribution
            # as its accumulation buffer, and the assertions below need the
            # pristine vectors.
            client.send_gradient(vector.copy(), 0)
        sim.run()
        return sim.now, results, vectors

    def test_fp16_aggregation_close_to_exact(self):
        _, results, vectors = self._run("fp16")
        expected = np.sum(vectors, axis=0)
        for got in results.values():
            np.testing.assert_allclose(got, expected, atol=5e-3)

    def test_int8_aggregation_bounded_error(self):
        _, results, vectors = self._run("int8")
        expected = np.sum(vectors, axis=0)
        scale = max(np.abs(v).max() for v in vectors) / 127.0
        for got in results.values():
            assert np.abs(got - expected).max() <= 4 * (0.5 * scale) + 1e-5

    def test_compression_shortens_aggregation(self):
        t_fp32, _, _ = self._run("fp32")
        t_fp16, _, _ = self._run("fp16")
        t_int8, _, _ = self._run("int8")
        assert t_int8 < t_fp16 < t_fp32

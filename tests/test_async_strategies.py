"""Tests for the asynchronous strategies (Async PS, Async iSwitch)."""

import numpy as np
import pytest

from repro.distributed import run_async


class TestAsyncParameterServer:
    @pytest.fixture(scope="class")
    def result(self):
        return run_async("ps", "ppo", n_workers=4, n_updates=40, seed=2)

    def test_server_applied_requested_updates(self, result):
        assert result.iterations == 40

    def test_staleness_measured_and_plausible(self, result):
        staleness = result.extras["mean_staleness"]
        # Each worker sees roughly the other three workers' pushes per cycle.
        assert 1.0 <= staleness <= 4.0
        assert result.extras["max_staleness"] >= staleness

    def test_server_busy_time_positive(self, result):
        assert 0 < result.extras["server_busy_time"] <= result.elapsed

    def test_workers_iterate_independently(self, result):
        counts = [w.iterations_done for w in result.workers]
        assert all(c >= 1 for c in counts)
        assert sum(counts) >= 40  # every update came from some worker

    def test_invalid_updates_rejected(self):
        with pytest.raises(ValueError):
            run_async("ps", "ppo", n_updates=0)


class TestAsyncISwitch:
    @pytest.fixture(scope="class")
    def result(self):
        return run_async("isw", "ppo", n_workers=4, n_updates=40, seed=2)

    def test_all_replicas_reach_target_updates(self, result):
        assert result.iterations == 40

    def test_decentralized_weights_agree(self, result):
        """Algorithm 1's core claim: identical broadcasts keep all local
        weight copies in agreement with no parameter server."""
        reference = result.workers[0].algorithm.get_weights()
        for worker in result.workers[1:]:
            # Replicas may be 1-2 updates apart at the stop instant; compare
            # update counts first, then weights at equal counts.
            if worker.algorithm.updates_applied == result.workers[
                0
            ].algorithm.updates_applied:
                np.testing.assert_allclose(
                    worker.algorithm.get_weights(), reference, atol=1e-5
                )

    def test_staleness_below_bound(self, result):
        assert result.extras["max_staleness"] <= 3

    def test_staleness_fresher_than_ps(self, result):
        ps = run_async("ps", "ppo", n_workers=4, n_updates=40, seed=2)
        assert (
            result.extras["mean_staleness"] < ps.extras["mean_staleness"]
        )

    def test_commits_tracked(self, result):
        assert result.extras["commits"] >= 40
        assert result.extras["skipped_commits"] >= 0

    def test_staleness_bound_skips_when_tight(self):
        tight = run_async(
            "isw", "ppo", n_workers=4, n_updates=30, seed=2, staleness_bound=0
        )
        assert tight.extras["max_staleness"] == 0

    def test_explicit_threshold(self):
        from repro.distributed import AsyncISwitch, build_cluster
        from repro.workloads import get_profile

        profile = get_profile("ppo")
        net, workers = build_cluster(
            4, profile, with_server=False, use_iswitch=True, workload="ppo"
        )
        runner = AsyncISwitch(net, workers, profile, threshold=2)
        result = runner.run(20)
        assert result.iterations == 20
        assert runner.h == 2

    def test_rack_scale_async(self):
        result = run_async("isw", "ppo", n_workers=6, n_updates=20, seed=1)
        assert result.iterations == 20
        assert result.n_workers == 6


class TestAsyncComparative:
    def test_dqn_isw_updates_faster_than_ps(self):
        ps = run_async("ps", "dqn", n_workers=4, n_updates=30, seed=1)
        isw = run_async("isw", "dqn", n_workers=4, n_updates=30, seed=1)
        assert isw.per_iteration_time < ps.per_iteration_time

    def test_learning_progress_recorded(self):
        result = run_async("isw", "a2c", n_workers=4, n_updates=60, seed=1)
        total_episodes = sum(
            len(w.algorithm.episode_rewards) for w in result.workers
        )
        assert total_episodes > 0

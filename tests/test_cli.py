"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_are_subcommands(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.mode == "sync"
        assert args.strategy == "isw"
        assert args.workload == "dqn"
        assert args.workers == 4

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "train" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "6.41 MB" in capsys.readouterr().out

    def test_experiment_with_iterations(self, capsys):
        assert main(["fig12", "--iterations", "3"]) == 0
        assert "Figure 12" in capsys.readouterr().out

    def test_iterations_rejected_where_meaningless(self, capsys):
        assert main(["table1", "--iterations", "5"]) == 2
        assert "no --iterations" in capsys.readouterr().err

    def test_train_sync(self, capsys):
        code = main(
            [
                "train",
                "--strategy",
                "isw",
                "--workload",
                "ppo",
                "--iterations",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sync-isw" in out
        assert "per-iteration time" in out

    def test_train_async(self, capsys):
        code = main(
            [
                "train",
                "--mode",
                "async",
                "--strategy",
                "ps",
                "--workload",
                "ppo",
                "--iterations",
                "10",
            ]
        )
        assert code == 0
        assert "mean staleness" in capsys.readouterr().out

    def test_train_bad_strategy(self, capsys):
        assert main(["train", "--strategy", "nccl"]) == 2
        assert "sync strategies" in capsys.readouterr().err

    def test_train_bad_async_strategy(self, capsys):
        assert main(["train", "--mode", "async", "--strategy", "ar"]) == 2
        assert "async strategies" in capsys.readouterr().err


class TestAllCommand:
    def test_all_runs_every_experiment(self, monkeypatch):
        import repro.cli as cli

        ran = []
        monkeypatch.setattr(
            cli, "_run_experiment", lambda name, it: (ran.append(name), 0)[1]
        )
        assert cli.main(["all"]) == 0
        assert ran == list(cli.EXPERIMENTS)

    def test_all_stops_on_failure(self, monkeypatch):
        import repro.cli as cli

        def fail_on_fig8(name, it):
            return 2 if name == "fig8" else 0

        monkeypatch.setattr(cli, "_run_experiment", fail_on_fig8)
        assert cli.main(["all"]) == 2

    def test_full_flag_uses_defaults(self, monkeypatch):
        import repro.cli as cli

        windows = []
        monkeypatch.setattr(
            cli, "_run_experiment", lambda name, it: (windows.append(it), 0)[1]
        )
        cli.main(["all", "--full"])
        assert all(w is None for w in windows)


class TestTelemetryFlags:
    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        code = main(
            [
                "train",
                "--strategy",
                "isw",
                "--iterations",
                "3",
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert events
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert any(e["name"] == "iteration" for e in events)

    def test_metrics_out_prometheus(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        code = main(
            [
                "train",
                "--strategy",
                "isw",
                "--iterations",
                "2",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        text = metrics.read_text()
        assert "# TYPE repro_link_tx_packets counter" in text

    def test_metrics_out_json(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "train",
                "--strategy",
                "isw",
                "--iterations",
                "2",
                "--metrics-out",
                str(metrics),
            ]
        )
        assert code == 0
        doc = json.loads(metrics.read_text())
        assert doc["metrics"]

    def test_loss_rate_flows_through(self, capsys):
        code = main(
            [
                "train",
                "--strategy",
                "isw",
                "--iterations",
                "2",
                "--loss-rate",
                "0.002",
                "--seed",
                "2",
                "--workers",
                "3",
            ]
        )
        assert code == 0
        assert "per-iteration time" in capsys.readouterr().out

    def test_loss_rate_rejected_for_ps(self, capsys):
        code = main(
            [
                "train",
                "--strategy",
                "ps",
                "--iterations",
                "2",
                "--loss-rate",
                "0.01",
            ]
        )
        assert code == 2
        assert "loss recovery" in capsys.readouterr().err


class TestSubcommandGroups:
    """PR-6 restructure: exp/train/bench/jobs groups + the old-name shim."""

    def test_exp_group_parses(self):
        args = build_parser().parse_args(["exp", "table1"])
        assert args.command == "exp"
        assert args.experiment == "table1"

    def test_exp_group_runs(self, capsys):
        assert main(["exp", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_old_spelling_still_works(self, capsys):
        # The shim: pre-group invocations forward to `exp`.
        assert main(["table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_exp_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp", "not-a-figure"])

    def test_list_strategies_has_multijob_column(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--list-strategies"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert "live" in header
        assert "multi-job" in header
        assert "codecs" in header
        isw_rows = [l for l in out.splitlines() if " isw " in f" {l} "]
        assert isw_rows and all(
            row.rstrip().endswith("all") and " yes " in row for row in isw_rows
        )
        ps_rows = [l for l in out.splitlines() if " ps " in f" {l} "]
        assert ps_rows and all(
            row.rstrip().endswith("fp32") for row in ps_rows
        )

    def test_list_strategies_live_column_matches_registry(self, capsys):
        """The printed live column, the registry flags, and the runner's
        dispatch table must all agree — per (mode, strategy) pair."""
        from repro.distributed.registry import strategy_specs
        from repro.live.runner import LIVE_STRATEGIES

        with pytest.raises(SystemExit) as excinfo:
            main(["--list-strategies"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out

        header, _, *rows = out.splitlines()
        assert header.split()[-3:] == ["live", "multi-job", "codecs"]
        printed = {}
        for row in rows:
            cells = row.split()
            if len(cells) < 8 or cells[0] not in ("sync", "async"):
                break  # past the table body
            printed[(cells[0], cells[1])] = cells[-3]

        registry = {
            (spec.mode, spec.name): spec.supports_live
            for spec in strategy_specs()
        }
        assert set(printed) == set(registry)
        for pair, flag in registry.items():
            assert printed[pair] == ("yes" if flag else "no"), pair
        # The runner implements exactly what the table advertises.
        assert {p for p, f in registry.items() if f} == set(LIVE_STRATEGIES)

    def test_readme_strategy_table_live_column_matches_registry(self):
        """Doc drift guard: every registry strategy appears in the README
        table with a live checkmark iff some registered mode of it
        supports the live backend (currently: all of them)."""
        from pathlib import Path

        from repro.distributed.registry import strategy_specs

        readme = Path(__file__).resolve().parents[1] / "README.md"
        lines = readme.read_text().splitlines()
        table = {}
        for line in lines:
            if line.startswith("| `") and line.count("|") >= 6:
                cells = [c.strip() for c in line.strip("|").split("|")]
                table[cells[0].strip("`")] = cells[3]
        by_name = {}
        for spec in strategy_specs():
            by_name[spec.name] = by_name.get(spec.name, False) or spec.supports_live
        assert set(table) == set(by_name)
        for name, live in by_name.items():
            assert (table[name] == "✓") == live, name


class TestJobsCommands:
    def test_soak_smoke(self, capsys):
        assert main(["jobs", "soak", "--jobs", "4", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "completed:       4" in out
        assert "result:          OK" in out

    def test_soak_writes_state(self, tmp_path, capsys):
        state = tmp_path / "soak.json"
        assert main(
            ["jobs", "soak", "--jobs", "3", "--state", str(state)]
        ) == 0
        import json

        payload = json.loads(state.read_text())
        assert len(payload["last_run"]) == 3
        assert all(r["status"] == "completed" for r in payload["last_run"])

    def test_submit_and_status_round_trip(self, tmp_path, capsys):
        state = tmp_path / "jobs.json"
        assert main(
            ["jobs", "submit", "--name", "alpha", "--workers", "3",
             "--n-params", "366", "--state", str(state)]
        ) == 0
        assert main(
            ["jobs", "submit", "--name", "beta", "--tenant", "other",
             "--n-params", "732", "--state", str(state)]
        ) == 0
        capsys.readouterr()
        assert main(["jobs", "status", "--state", str(state)]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out
        assert out.count("completed") == 2

    def test_submit_no_run_records_only(self, tmp_path, capsys):
        state = tmp_path / "jobs.json"
        assert main(
            ["jobs", "submit", "--name", "later", "--no-run",
             "--state", str(state)]
        ) == 0
        capsys.readouterr()
        assert main(["jobs", "status", "--state", str(state)]) == 0
        assert "recorded" in capsys.readouterr().out

    def test_status_with_no_state_file(self, tmp_path, capsys):
        assert main(
            ["jobs", "status", "--state", str(tmp_path / "missing.json")]
        ) == 0
        assert "no jobs recorded" in capsys.readouterr().out

    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

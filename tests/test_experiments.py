"""Sanity tests for the experiment harness (quick configurations)."""

import math

import pytest

from repro.experiments import (
    fig4,
    fig8,
    fig12,
    fig13,
    fig14,
    fig15,
    table1,
    table3,
    table4,
    table5,
)
from repro.experiments.reporting import (
    format_bytes,
    format_seconds,
    render_series,
    render_table,
)


class TestReporting:
    def test_render_table_alignment(self):
        out = render_table(("a", "bb"), [(1, 2), (333, 4)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])

    def test_render_series_downsamples(self):
        out = render_series("s", list(range(100)), list(range(100)), max_points=5)
        assert out.count("\n") < 15

    def test_format_seconds_units(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(5.0).endswith("s")
        assert format_seconds(7200.0).endswith("h")

    def test_format_bytes_units(self):
        assert format_bytes(100) == "100 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(3 * 1024 * 1024) == "3.00 MB"


class TestTable1:
    def test_records_cover_all_workloads(self):
        records = table1.collect()
        assert [r["algorithm"] for r in records] == ["DQN", "A2C", "PPO", "DDPG"]

    def test_dqn_frame_count(self):
        records = {r["algorithm"]: r for r in table1.collect()}
        # 6.41 MB at 366 floats per frame.
        assert records["DQN"]["frames_per_vector"] == 4592

    def test_run_prints(self, capsys):
        table1.run()
        out = capsys.readouterr().out
        assert "Table 1" in out and "6.41 MB" in out


class TestFig4:
    @pytest.fixture(scope="class")
    def records(self):
        return fig4.collect(n_iterations=3)

    def test_aggregation_dominates(self, records):
        for record in records:
            assert record["aggregation_share"] > 0.3

    def test_paper_range_for_ps_dqn(self, records):
        dqn_ps = next(
            r for r in records if r["strategy"] == "ps" and r["workload"] == "dqn"
        )
        assert 0.7 < dqn_ps["aggregation_share"] < 0.95

    def test_percentages_sum_to_100(self, records):
        for record in records:
            assert sum(record["percentages"].values()) == pytest.approx(100.0)


class TestFig8:
    def test_on_the_fly_always_faster(self):
        for record in fig8.collect():
            assert record["on_the_fly"] < record["conventional"]
            assert record["speedup"] > 1.0

    def test_big_models_approach_2x(self):
        records = {r["workload"]: r for r in fig8.collect()}
        assert records["dqn"]["speedup"] > 1.8

    def test_latency_scales_with_model_size(self):
        records = {r["workload"]: r for r in fig8.collect()}
        assert records["dqn"]["on_the_fly"] > records["ppo"]["on_the_fly"]


class TestTables345AndFig12:
    @pytest.fixture(scope="class")
    def sync_records(self):
        return table4.collect(n_iterations=4)

    @pytest.fixture(scope="class")
    def async_records(self):
        return table5.collect(n_updates=30)

    def test_sync_trajectories_match(self, sync_records):
        assert all(r["trajectories_match"] for r in sync_records)

    def test_sync_isw_fastest_everywhere(self, sync_records):
        by = {(r["workload"], r["strategy"]): r for r in sync_records}
        for workload in ("dqn", "a2c", "ppo", "ddpg"):
            isw = by[(workload, "isw")]["per_iteration_ms"]
            ps = by[(workload, "ps")]["per_iteration_ms"]
            ar = by[(workload, "ar")]["per_iteration_ms"]
            assert isw < ps and isw < ar

    def test_sync_ar_crossover(self, sync_records):
        """AR beats PS on big models (DQN) and loses on small (PPO)."""
        by = {(r["workload"], r["strategy"]): r for r in sync_records}
        assert by[("dqn", "ar")]["per_iteration_ms"] < by[("dqn", "ps")][
            "per_iteration_ms"
        ]
        assert by[("ppo", "ar")]["per_iteration_ms"] > by[("ppo", "isw")][
            "per_iteration_ms"
        ]

    def test_sync_within_25pct_of_paper(self, sync_records):
        for record in sync_records:
            ratio = record["per_iteration_ms"] / record["paper_per_iteration_ms"]
            assert 0.75 < ratio < 1.25, record

    def test_async_staleness_ordering(self, async_records):
        by = {(r["workload"], r["strategy"]): r for r in async_records}
        for workload in ("dqn", "a2c", "ppo", "ddpg"):
            assert (
                by[(workload, "isw")]["mean_staleness"]
                < by[(workload, "ps")]["mean_staleness"]
            )

    def test_async_derived_iterations_direction(self, async_records):
        by = {(r["workload"], r["strategy"]): r for r in async_records}
        for workload in ("dqn", "a2c", "ppo", "ddpg"):
            assert (
                by[(workload, "isw")]["derived_iterations"]
                < by[(workload, "ps")]["derived_iterations"]
            )

    def test_table3_speedups_positive(self, sync_records, async_records):
        records = table3.collect(sync_iterations=4, async_updates=30)
        for record in records:
            assert record["speedup"] > 0
        isw_sync = [
            r["speedup"]
            for r in records
            if r["mode"] == "sync" and r["strategy"] == "isw"
        ]
        assert all(s > 1.5 for s in isw_sync)  # paper: 1.72x-3.66x

    def test_fig12_isw_aggregation_reduction(self):
        records = fig12.collect(n_iterations=4)
        for record in records:
            if record["strategy"] == "isw":
                assert record["agg_reduction_vs_ps"] > 0.6


class TestTrainingCurves:
    def test_fig13_isw_reaches_reward_first(self):
        records = fig13.collect(n_iterations=120)
        by = {r["strategy"]: r for r in records}
        # All strategies produce curves on a shared iteration trajectory;
        # iSW compresses time the most.
        assert by["isw"]["elapsed"] < by["ar"]["elapsed"] < by["ps"]["elapsed"]
        for record in records:
            assert len(record["times"]) > 0

    def test_fig14_isw_faster_and_fresher(self):
        records = fig14.collect(n_updates=120)
        by = {r["strategy"]: r for r in records}
        assert by["isw"]["mean_staleness"] < by["ps"]["mean_staleness"]
        assert by["isw"]["elapsed"] < by["ps"]["elapsed"]


class TestFig15:
    @pytest.fixture(scope="class")
    def records(self):
        return fig15.collect(
            workloads=("ppo",), sizes=(4, 9), n_iterations=4, n_updates=25
        )

    def test_isw_scales_best_sync(self, records):
        by = {
            (r["mode"], r["strategy"], r["n_workers"]): r["speedup"]
            for r in records
        }
        assert by[("sync", "isw", 9)] > by[("sync", "ps", 9)]
        assert by[("sync", "isw", 9)] > by[("sync", "ar", 9)]

    def test_async_isw_near_linear(self, records):
        by = {
            (r["mode"], r["strategy"], r["n_workers"]): r["speedup"]
            for r in records
        }
        assert by[("async", "isw", 9)] > 0.85 * (9 / 4)
        assert by[("async", "ps", 9)] < by[("async", "isw", 9)]

    def test_baseline_normalized_to_one(self, records):
        for record in records:
            if record["n_workers"] == 4:
                assert record["speedup"] == pytest.approx(1.0)


class TestCodecAblation:
    @pytest.fixture(scope="class")
    def records(self):
        from repro.experiments import codec_ablation

        return codec_ablation.collect(
            n_iterations=3,
            scenarios={
                "workloads": ["ppo"],
                "codecs": ["fp32", "fp16", "int32-bs", "topk"],
                "n_workers": 2,
                "iterations": 3,
                "seed": 1,
            },
        )

    def test_compressed_codecs_halve_wire_bytes(self, records):
        by = {r["codec"]: r for r in records}
        assert by["fp16"]["bytes_reduction"] >= 1.9
        assert by["int32-bs"]["bytes_reduction"] >= 1.9
        # topk's plan width models the dense downstream footprint.
        assert by["topk"]["bytes_reduction"] == pytest.approx(1.0, abs=0.05)

    def test_fp32_is_its_own_baseline(self, records):
        fp32 = next(r for r in records if r["codec"] == "fp32")
        assert fp32["bytes_reduction"] == 1.0
        assert fp32["iter_speedup"] == 1.0
        assert fp32["reward_delta"] == 0.0

    def test_checked_in_artifact_matches_acceptance(self):
        """The committed CODEC_ABLATION.json holds the documented claims:
        >=2x (within rounding) byte reduction for the 2-byte codecs and
        DQN convergence within the DESIGN.md §12 tolerance."""
        import json
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "results"
            / "CODEC_ABLATION.json"
        )
        artifact = json.loads(path.read_text())
        assert artifact["experiment"] == "codec_ablation"
        records = artifact["records"]
        for record in records:
            if record["codec"] in ("fp16", "int32-bs"):
                assert record["bytes_reduction"] >= 1.9, record
                assert record["iter_speedup"] >= 1.0, record
            if record["workload"] == "dqn":
                assert abs(record["reward_delta"]) <= 0.1, record

    def test_scenario_file_parses_and_matches_defaults(self):
        from repro.experiments import codec_ablation

        scenarios = codec_ablation.load_scenarios()
        assert set(scenarios["codecs"]) <= set(
            ("fp32",) + tuple(c for c in codec_ablation.CODECS_ORDER)
        )
        assert scenarios["workloads"] == list(codec_ablation.WORKLOADS)

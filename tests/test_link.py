"""Unit tests for link serialization, queueing, and loss injection."""

import pytest

from repro.netsim.events import Simulator
from repro.netsim.link import GBPS, Link
from repro.netsim.node import Device, Host
from repro.netsim.packets import Packet


class Sink(Device):
    """Records every received packet with its arrival time."""

    def __init__(self, sim, name="sink"):
        super().__init__(sim, name)
        self.received = []

    def handle_packet(self, packet, in_port):
        self._count_rx(packet)
        self.received.append((self.sim.now, packet))


def make_pair(sim, bandwidth=10 * GBPS, propagation=0.0, **kwargs):
    src = Host(sim, "src")
    dst = Sink(sim, "dst")
    link = Link(sim, bandwidth=bandwidth, propagation=propagation, **kwargs)
    link.attach(src, dst)
    return src, dst, link


class TestSerialization:
    def test_arrival_time_is_wire_bits_over_bandwidth(self):
        sim = Simulator()
        src, dst, _ = make_pair(sim, bandwidth=1e9)  # 1 Gb/s
        packet = Packet(src="src", dst="dst", payload_size=1000)
        src.send(packet)
        sim.run()
        expected = packet.wire_size * 8 / 1e9
        assert dst.received[0][0] == pytest.approx(expected)

    def test_propagation_adds_constant(self):
        sim = Simulator()
        src, dst, _ = make_pair(sim, bandwidth=1e9, propagation=1e-6)
        packet = Packet(src="src", dst="dst", payload_size=1000)
        src.send(packet)
        sim.run()
        expected = packet.wire_size * 8 / 1e9 + 1e-6
        assert dst.received[0][0] == pytest.approx(expected)

    def test_back_to_back_packets_serialize_fifo(self):
        sim = Simulator()
        src, dst, _ = make_pair(sim, bandwidth=1e9)
        for i in range(3):
            src.send(Packet(src="src", dst="dst", payload_size=1000, payload=i))
        sim.run()
        one = (1000 + 50) * 8 / 1e9
        times = [t for t, _ in dst.received]
        assert times == pytest.approx([one, 2 * one, 3 * one])
        assert [p.payload for _, p in dst.received] == [0, 1, 2]

    def test_idle_gap_resets_transmitter(self):
        sim = Simulator()
        src, dst, _ = make_pair(sim, bandwidth=1e9)
        src.send(Packet(src="src", dst="dst", payload_size=1000))
        sim.schedule(
            1.0, lambda: src.send(Packet(src="src", dst="dst", payload_size=1000))
        )
        sim.run()
        one = (1000 + 50) * 8 / 1e9
        assert dst.received[1][0] == pytest.approx(1.0 + one)

    def test_train_serializes_as_sum_of_frames(self):
        sim = Simulator()
        src, dst, _ = make_pair(sim, bandwidth=1e9)
        train = Packet(
            src="src", dst="dst", payload_size=4 * 1472, frame_count=4
        )
        src.send(train)
        sim.run()
        assert dst.received[0][0] == pytest.approx(4 * 1522 * 8 / 1e9)


class TestFullDuplex:
    def test_directions_do_not_contend(self):
        sim = Simulator()
        a = Sink(sim, "a")
        b = Sink(sim, "b")
        link = Link(sim, bandwidth=1e9, propagation=0.0)
        link.attach(a, b)
        link.ends[0].send(Packet(src="a", dst="b", payload_size=1000))
        link.ends[1].send(Packet(src="b", dst="a", payload_size=1000))
        sim.run()
        one = (1000 + 50) * 8 / 1e9
        assert a.received[0][0] == pytest.approx(one)
        assert b.received[0][0] == pytest.approx(one)


class TestCountersAndValidation:
    def test_tx_counters(self):
        sim = Simulator()
        src, dst, link = make_pair(sim)
        src.send(Packet(src="src", dst="dst", payload_size=100))
        sim.run()
        assert link.ends[0].tx_packets == 1
        assert link.ends[0].tx_bytes == 150
        assert dst.rx_packets == 1

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            Link(Simulator(), bandwidth=0)

    def test_negative_propagation_rejected(self):
        with pytest.raises(ValueError, match="propagation"):
            Link(Simulator(), propagation=-1e-9)

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="loss_rate"):
            Link(Simulator(), loss_rate=1.0)


class TestLossInjection:
    def test_lossless_by_default(self):
        sim = Simulator()
        src, dst, link = make_pair(sim)
        for _ in range(50):
            src.send(Packet(src="src", dst="dst", payload_size=100))
        sim.run()
        assert len(dst.received) == 50
        assert link.dropped_packets == 0

    def test_loss_rate_drops_packets(self):
        sim = Simulator()
        src, dst, link = make_pair(sim, loss_rate=0.5, loss_seed=7)
        for _ in range(200):
            src.send(Packet(src="src", dst="dst", payload_size=100))
        sim.run()
        assert link.dropped_packets > 0
        assert len(dst.received) + link.dropped_packets == 200
        # Roughly half dropped.
        assert 60 <= link.dropped_packets <= 140

"""Tests for the multi-tenant job manager (``repro.multitenant``).

The load-bearing guarantee: a job's final weights are **bit-identical**
whether it runs alone on the fabric or among dozens of other tenants —
canonical-order engines make each job's aggregate a pure function of its
own contributions.
"""

import numpy as np
import pytest

from repro.multitenant import (
    AdmissionController,
    AdmissionDecision,
    FairSharePolicy,
    FifoPolicy,
    JobSpec,
    JobStatus,
    SlotScheduler,
    StrictPriorityPolicy,
    SwitchFabric,
    generate_jobs,
    make_policy,
    run_soak,
)


def _spec(name="job", seed=0, n_workers=2, iterations=2, n_params=366, **kw):
    return JobSpec(
        name=name,
        workload="synth",
        n_workers=n_workers,
        iterations=iterations,
        seed=seed,
        algorithm_overrides={"n_params": n_params},
        **kw,
    )


def _run_solo(spec):
    """Run one spec alone on a fresh fabric; return its final weights."""
    solo = JobSpec(
        name=spec.name,
        workload=spec.workload,
        n_workers=spec.n_workers,
        iterations=spec.iterations,
        seed=spec.seed,
        priority=spec.priority,
        tenant=spec.tenant,
        job_id=spec.job_id,
        algorithm_overrides=spec.algorithm_overrides,
    )
    fabric = SwitchFabric(telemetry=False)
    handle = fabric.submit(solo)
    fabric.run()
    assert handle.status is JobStatus.COMPLETED
    return fabric.final_weights(handle.job_id)


class TestSpecValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            JobSpec(name="")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            JobSpec(name="x", n_workers=0)

    def test_rejects_out_of_range_job_id(self):
        with pytest.raises(ValueError):
            JobSpec(name="x", job_id=0)
        with pytest.raises(ValueError):
            JobSpec(name="x", job_id=128)


class TestAdmissionController:
    def test_capacity_is_engines_times_segments(self):
        ctl = AdmissionController(["s0"], engines=4, segments_per_engine=8)
        assert ctl.capacity == 32

    def test_decide_classifies(self):
        ctl = AdmissionController(["s0"], engines=1, segments_per_engine=4)
        assert ctl.decide(5, ["s0"]) is AdmissionDecision.REJECT
        assert ctl.decide(3, ["s0"]) is AdmissionDecision.ADMIT
        ctl.reserve(1, 3, ["s0"])
        assert ctl.decide(3, ["s0"]) is AdmissionDecision.QUEUE

    def test_release_frees_slots(self):
        ctl = AdmissionController(["s0", "s1"], engines=1, segments_per_engine=4)
        ctl.reserve(1, 4, ["s0", "s1"])
        assert not ctl.fits(1, ["s0"])
        assert ctl.release(1) is True
        assert ctl.fits(4, ["s0", "s1"])
        assert ctl.release(1) is False

    def test_double_reserve_rejected(self):
        ctl = AdmissionController(["s0"])
        ctl.reserve(1, 1, ["s0"])
        with pytest.raises(ValueError):
            ctl.reserve(1, 1, ["s0"])


class TestPolicies:
    def _handles(self):
        specs = [
            _spec("a", seed=1, tenant="ta", priority=0),
            _spec("b", seed=2, tenant="ta", priority=1),
            _spec("c", seed=3, tenant="tb", priority=9),
        ]
        from repro.multitenant.spec import JobHandle

        return [JobHandle(spec=s, job_id=i + 1) for i, s in enumerate(specs)]

    def test_fifo_picks_arrival_order(self):
        a, b, c = self._handles()
        assert FifoPolicy().select((a, b, c), {}) is a

    def test_priority_picks_highest(self):
        a, b, c = self._handles()
        assert StrictPriorityPolicy().select((a, b, c), {}) is c

    def test_fair_share_picks_least_served_tenant(self):
        a, b, c = self._handles()
        assert FairSharePolicy().select((a, b, c), {"ta": 2, "tb": 0}) is c
        # Ties break FIFO.
        assert FairSharePolicy().select((a, b, c), {}) is a

    def test_make_policy_resolves_names(self):
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("fair"), FairSharePolicy)
        assert isinstance(make_policy("priority"), StrictPriorityPolicy)
        with pytest.raises(KeyError):
            make_policy("round-robin")

    def test_scheduler_counts_served_per_tenant(self):
        sched = SlotScheduler("fair")
        a, b, c = self._handles()
        for h in (a, b, c):
            sched.enqueue(h)
        first = sched.next_candidate()
        sched.admit(first)
        assert first is a  # nothing served yet: FIFO tie-break
        assert sched.next_candidate() is c  # tb has fewer admissions
        assert len(sched) == 2


class TestFabricAdmission:
    def test_oversized_job_rejected_outright(self):
        fabric = SwitchFabric(
            sram_engines=1, sram_segments_per_engine=2, telemetry=False
        )
        handle = fabric.submit(_spec("huge", n_params=1464))  # 4 chunks
        assert handle.status is JobStatus.REJECTED
        assert "SRAM" in handle.reject_reason
        assert fabric.admission.rejections == 1
        fabric.run()
        assert handle.result is None

    def test_tight_sram_queues_and_caps_concurrency(self):
        fabric, report = run_soak(
            n_jobs=12,
            seed=2,
            sram_engines=1,
            sram_segments_per_engine=4,
            telemetry=False,
        )
        assert report.ok
        assert report.completed == 12
        assert report.queued_jobs > 0
        # 1x4 slots per switch: at most 4 one-chunk jobs live at once.
        assert report.peak_concurrent <= 4

    def test_explicit_duplicate_job_id_rejected(self):
        fabric = SwitchFabric(telemetry=False)
        fabric.submit(_spec("first", job_id=9))
        with pytest.raises(ValueError, match="job id 9"):
            fabric.submit(_spec("second", job_id=9))

    def test_auto_ids_skip_explicit_ones(self):
        fabric = SwitchFabric(telemetry=False)
        fabric.submit(_spec("pinned", job_id=1))
        auto = fabric.submit(_spec("auto"))
        assert auto.job_id == 2

    def test_queue_wait_recorded(self):
        fabric = SwitchFabric(
            sram_engines=1, sram_segments_per_engine=1, telemetry=False
        )
        first = fabric.submit(_spec("first", seed=1))
        second = fabric.submit(_spec("second", seed=2))
        fabric.run()
        assert first.status is JobStatus.COMPLETED
        assert second.status is JobStatus.COMPLETED
        assert second.wait_time > 0
        assert second.admitted_at >= first.completed_at


class TestBitExactIsolation:
    def test_job_unperturbed_by_ten_tenants(self):
        spec = _spec("probe", seed=7, n_workers=3, iterations=4, job_id=5)
        shared = SwitchFabric(telemetry=False)
        handle = shared.submit(spec)
        for i in range(10):
            shared.submit(
                _spec(f"bg-{i}", seed=100 + i, n_params=732, iterations=3)
            )
        shared.run()
        assert handle.status is JobStatus.COMPLETED
        assert np.array_equal(shared.final_weights(5), _run_solo(spec))

    def test_soak_sustains_32_concurrent_bit_identical_jobs(self):
        """The PR's acceptance bar: >= 32 concurrent jobs on one tree,
        every one bit-identical to the same job run alone."""
        fabric, report = run_soak(n_jobs=32, seed=1, telemetry=False)
        assert report.ok
        assert report.completed == 32
        assert report.peak_concurrent >= 32
        for handle in fabric.handles.values():
            pinned = JobSpec(
                name=handle.spec.name,
                workload=handle.spec.workload,
                n_workers=handle.spec.n_workers,
                iterations=handle.spec.iterations,
                seed=handle.spec.seed,
                job_id=handle.job_id,
                algorithm_overrides=handle.spec.algorithm_overrides,
            )
            assert np.array_equal(
                fabric.final_weights(handle.job_id), _run_solo(pinned)
            ), f"job {handle.job_id} diverged from its solo run"


class TestTelemetry:
    def test_every_tenant_distinguishable(self):
        fabric, report = run_soak(n_jobs=8, seed=3, telemetry=True)
        assert report.ok
        snap = fabric.hub.snapshot()
        assert snap.value("job.submitted") == 8
        assert snap.value("job.completed") == 8
        for job_id in fabric.handles:
            assert snap.has_metric("switch.contributions", job=job_id)
            assert snap.has_metric("job.rounds_completed", job=job_id)
        assert len(snap.spans_named("job.run")) == 8

    def test_job_labels_absent_for_single_tenant_runs(self):
        from repro.distributed import ExperimentConfig, run

        result = run(
            ExperimentConfig(
                strategy="isw",
                workload="synth",
                n_workers=2,
                iterations=2,
                seed=0,
                telemetry=True,
            )
        )
        snap = result.telemetry
        contributions = [
            m for m in snap.metrics if m["name"] == "switch.contributions"
        ]
        assert contributions
        assert all("job" not in m["labels"] for m in contributions)


class TestSoakReport:
    def test_generate_jobs_is_deterministic(self):
        a = generate_jobs(6, seed=9)
        b = generate_jobs(6, seed=9)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.arrival_time for s in a] == [s.arrival_time for s in b]
        assert [s.algorithm_overrides for s in a] == [
            s.algorithm_overrides for s in b
        ]

    def test_report_summary_mentions_outcome(self):
        _, report = run_soak(n_jobs=4, seed=0, telemetry=False)
        text = "\n".join(report.summary_lines())
        assert "completed:       4" in text
        assert "OK" in text

    def test_policies_all_drain_the_same_load(self):
        for policy in ("fifo", "fair", "priority"):
            _, report = run_soak(
                n_jobs=8,
                seed=4,
                policy=policy,
                sram_engines=1,
                sram_segments_per_engine=4,
                telemetry=False,
            )
            assert report.ok, policy
            assert report.policy == policy

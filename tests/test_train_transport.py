"""Parity tests for the batched packet-train transport.

The train path (`LinkEnd.send_train` + `PacketTrain` + the batch-ingest
hooks) promises the **same observable behaviour** as N per-packet
`send` calls: identical per-packet arrival times, identical link-state
accumulation (busy window, busy_time, counters), identical loss-rng
consumption, and — through fault-window *train barriers* — identical
link state seen by every packet when a fault edge lands mid-train.
These tests pin that contract at the link level, then end to end: every
registered strategy must produce bit-identical weights under
``transport="train"`` and ``transport="packet"``.
"""

import hashlib

import pytest

from repro.distributed import ExperimentConfig, run
from repro.faults import demo_plan
from repro.netsim import Host, Link, Simulator
from repro.netsim.link import GBPS, GilbertElliott
from repro.netsim.packets import Packet, PacketTrain

PORT = 9000

ALL_STRATEGIES = [
    ("sync", "ps"),
    ("sync", "ar"),
    ("sync", "ar-hd"),
    ("sync", "isw"),
    ("sync", "ps-shard"),
    ("async", "ps"),
    ("async", "isw"),
]


# ---------------------------------------------------------------------------
# Link-level harness
# ---------------------------------------------------------------------------
def make_pair(**link_kw):
    """One link a->b with a delivery recorder on b.

    The recorder notes ``(arrival_time, payload)`` per delivered packet —
    from the per-packet handler on the legacy path, and from the train's
    carried ``arrivals`` vector on the batched path — so both paths
    produce directly comparable logs.
    """
    sim = Simulator()
    a = Host(sim, "a")
    b = Host(sim, "b")
    link = Link(sim, **link_kw)
    link.attach(a, b)
    delivered = []
    b.bind(PORT, lambda p: delivered.append((sim.now, p.payload)))

    def on_train(train):
        for packet, arrival in zip(train.packets, train.arrivals):
            delivered.append((float(arrival), packet.payload))

    b.bind_train(PORT, on_train)
    return sim, a, b, link, delivered


def burst(n, size=1000):
    return [
        Packet("a", "b", size, dst_port=PORT, payload=i) for i in range(n)
    ]


def link_state(end, link):
    return (
        end._busy_until,
        end.busy_time,
        end.tx_packets,
        end.tx_bytes,
        link.dropped_packets,
    )


class TestOfferedBurstParity:
    def run_packet(self, n, **link_kw):
        sim, a, b, link, delivered = make_pair(**link_kw)
        sim.schedule_fire(0.0, lambda: [a.send(p) for p in burst(n)])
        sim.run()
        return delivered, link_state(a.uplink, link), (b.rx_packets, b.rx_bytes)

    def run_train(self, n, **link_kw):
        sim, a, b, link, delivered = make_pair(**link_kw)
        sim.schedule_fire(0.0, lambda: a.send_burst(burst(n)))
        sim.run()
        return delivered, link_state(a.uplink, link), (b.rx_packets, b.rx_bytes)

    def test_lossless_burst_matches_per_packet_path(self):
        assert self.run_train(32) == self.run_packet(32)

    def test_single_packet_burst_degenerates_to_send(self):
        assert self.run_train(1) == self.run_packet(1)

    def test_bernoulli_loss_draws_match(self):
        kw = dict(loss_rate=0.3, loss_seed=7)
        delivered_t, state_t, rx_t = self.run_train(64, **kw)
        delivered_p, state_p, rx_p = self.run_packet(64, **kw)
        assert delivered_t == delivered_p
        assert state_t == state_p
        assert rx_t == rx_p
        assert 0 < state_t[4] < 64  # some but not all dropped

    def test_gilbert_elliott_burst_loss_draws_match(self):
        logs = []
        for runner in (self.run_train, self.run_packet):
            sim, a, b, link, delivered = make_pair(loss_seed=3)
            link.loss_model = GilbertElliott.from_mean_loss(0.2)
            packets = burst(64)
            if runner is self.run_train:
                sim.schedule_fire(0.0, lambda: a.send_burst(packets))
            else:
                sim.schedule_fire(0.0, lambda: [a.send(p) for p in packets])
            sim.run()
            logs.append((delivered, link_state(a.uplink, link)))
        assert logs[0] == logs[1]

    def test_back_to_back_bursts_share_the_busy_window(self):
        # Second burst must queue behind the first on both paths.
        def scenario(batched):
            sim, a, b, link, delivered = make_pair()
            first, second = burst(8), burst(8, size=200)
            if batched:
                sim.schedule_fire(0.0, lambda: a.send_burst(first))
                sim.schedule_fire(0.0, lambda: a.send_burst(second))
            else:
                sim.schedule_fire(0.0, lambda: [a.send(p) for p in first])
                sim.schedule_fire(0.0, lambda: [a.send(p) for p in second])
            sim.run()
            return delivered, link_state(a.uplink, link)

        assert scenario(batched=True) == scenario(batched=False)

    def test_offered_burst_does_not_split_at_barriers(self):
        # An offered burst commits everything at send time, exactly like
        # its per-packet equivalent (one event does all N sends); a
        # pending barrier must not defer any of it.
        sim, a, b, link, delivered = make_pair()
        link.add_train_barrier(1e-9)  # far before the burst finishes
        sim.schedule_fire(0.0, lambda: a.send_burst(burst(16)))
        sim.run()
        assert len(delivered) == 16

    def test_stale_barriers_are_consumed(self):
        sim, a, b, link, delivered = make_pair()
        link.add_train_barrier(1e-6)
        sim.schedule_fire(2e-6, lambda: a.send_burst(burst(4)))
        sim.run()
        assert link.train_barriers == []


class TestForwardedTrainFaultSplit:
    """A forwarded train straddling a fault edge splits at the barrier.

    Reference semantics: the per-packet path, where packet ``i`` is sent
    by its own forwarding event at ``ready[i]`` and therefore sees
    whatever link state the fault window has installed by then.
    """

    READY_GAP = 4e-6
    N = 24

    def ready_times(self):
        return [i * self.READY_GAP for i in range(self.N)]

    def run_split(self, batched, mutate, restore, t0, t1):
        sim, a, b, link, delivered = make_pair(loss_seed=11)
        sim.schedule_at(t0, lambda: mutate(link), name="fault:on")
        sim.schedule_at(t1, lambda: restore(link), name="fault:off")
        packets = burst(self.N)
        ready = self.ready_times()
        if batched:
            # What the fault injector does for link-window faults.
            link.add_train_barrier(t0)
            link.add_train_barrier(t1)
            sim.schedule_fire(
                0.0, lambda: a.uplink.send_train(packets, ready)
            )
        else:
            for packet, r in zip(packets, ready):
                sim.schedule_fire_at(
                    r, lambda p=packet: a.send(p), "forward"
                )
        sim.run()
        return delivered, link_state(a.uplink, link)

    def test_ge_burst_window_mid_train_matches_per_packet(self):
        def mutate(link):
            link.loss_model = GilbertElliott.from_mean_loss(0.4)

        def restore(link):
            link.loss_model = None

        # Window covers ready times ~[40 us, 60 us): a middle slice of
        # the train is exposed to burst loss, head and tail are not.
        t0, t1 = 10 * self.READY_GAP, 15 * self.READY_GAP
        batched = self.run_split(True, mutate, restore, t0, t1)
        legacy = self.run_split(False, mutate, restore, t0, t1)
        assert batched == legacy
        dropped = batched[1][4]
        assert 0 < dropped < self.N  # the window actually bit

    def test_bandwidth_degrade_mid_train_matches_per_packet(self):
        def mutate(link):
            link.bandwidth = link.bandwidth / 8.0

        def restore(link):
            link.bandwidth = link.bandwidth * 8.0

        t0, t1 = 8 * self.READY_GAP, 16 * self.READY_GAP
        batched = self.run_split(True, mutate, restore, t0, t1)
        legacy = self.run_split(False, mutate, restore, t0, t1)
        assert batched == legacy

    def test_whole_train_after_barrier_is_deferred_intact(self):
        # split == 0: every ready time falls at/after the barrier, so the
        # entire train re-offers at the barrier and sees the new state.
        def scenario(batched):
            sim, a, b, link, delivered = make_pair()
            t0 = 1e-6
            sim.schedule_at(t0, lambda: setattr(link, "bandwidth", GBPS))
            packets = burst(6)
            ready = [t0 + i * self.READY_GAP for i in range(6)]
            if batched:
                link.add_train_barrier(t0)
                sim.schedule_fire(
                    0.0, lambda: a.uplink.send_train(packets, ready)
                )
            else:
                for packet, r in zip(packets, ready):
                    sim.schedule_fire_at(r, lambda p=packet: a.send(p))
            sim.run()
            return delivered, link_state(a.uplink, link)

        assert scenario(batched=True) == scenario(batched=False)


class TestTrainDelivery:
    def test_mixed_port_train_falls_back_to_packet_handlers(self):
        sim, a, b, link, delivered = make_pair()
        other = []
        b.bind(PORT + 1, lambda p: other.append(p.payload))
        packets = burst(4)
        packets.append(Packet("a", "b", 10, dst_port=PORT + 1, payload="x"))
        sim.schedule_fire(0.0, lambda: a.send_burst(packets))
        sim.run()
        # No uniform dst port: the train handler is bypassed, both
        # per-packet handlers fire, counters still cover every packet.
        assert [payload for _, payload in delivered] == [0, 1, 2, 3]
        assert other == ["x"]
        assert b.rx_packets == 5

    def test_all_packets_dropped_delivers_nothing(self):
        sim, a, b, link, delivered = make_pair(loss_rate=0.999999, loss_seed=1)
        sim.schedule_fire(0.0, lambda: a.send_burst(burst(8)))
        sim.run()
        assert delivered == []
        assert link.dropped_packets == 8
        assert b.rx_packets == 0

    def test_batched_event_accounting_matches_per_packet(self):
        # One physical delivery event plus count_batched(n-1) keeps
        # processed_events meaning "logical per-packet work".
        counts = []
        for batched in (True, False):
            sim, a, b, link, delivered = make_pair()
            packets = burst(16)
            if batched:
                sim.schedule_fire(0.0, lambda: a.send_burst(packets))
            else:
                sim.schedule_fire(0.0, lambda: [a.send(p) for p in packets])
            sim.run()
            counts.append(sim.processed_events)
        assert counts[0] == counts[1]

    def test_train_carries_per_packet_arrivals(self):
        sim, a, b, link, _ = make_pair()
        seen = {}
        b.unbind(PORT)
        b.bind(PORT, lambda p: None)
        b.bind_train(PORT, lambda train: seen.setdefault("train", train))
        packets = burst(5)
        sim.schedule_fire(0.0, lambda: a.send_burst(packets))
        sim.run()
        train = seen["train"]
        assert isinstance(train, PacketTrain)
        assert len(train.packets) == len(train.arrivals) == 5
        arrivals = [float(t) for t in train.arrivals]
        assert arrivals == sorted(arrivals)
        assert sim.now == arrivals[-1]


# ---------------------------------------------------------------------------
# End to end: train transport must be invisible in the results
# ---------------------------------------------------------------------------
def run_e2e(mode, strategy, transport, scheduler="heap", **kw):
    kw.setdefault("iterations", 8)
    return run(
        ExperimentConfig(
            strategy=strategy,
            mode=mode,
            workload="dqn",
            n_workers=4,
            seed=0,
            transport=transport,
            scheduler=scheduler,
            **kw,
        )
    )


def weight_digests(result):
    return [
        hashlib.sha256(w.algorithm.get_weights().tobytes()).hexdigest()
        for w in result.workers
    ]


class TestEndToEndParity:
    @pytest.mark.slow
    @pytest.mark.parametrize("mode,strategy", ALL_STRATEGIES)
    def test_train_transport_is_bit_identical(self, mode, strategy):
        batched = run_e2e(mode, strategy, "train")
        legacy = run_e2e(mode, strategy, "packet")
        assert weight_digests(batched) == weight_digests(legacy)
        assert batched.elapsed == legacy.elapsed

    def test_train_calendar_matches_packet_heap(self):
        # The full batched stack (trains + calendar queue) against the
        # fully legacy stack, on the strategy the paper centres on.
        batched = run_e2e("sync", "isw", "train", scheduler="calendar")
        legacy = run_e2e("sync", "isw", "packet", scheduler="heap")
        assert weight_digests(batched) == weight_digests(legacy)
        assert batched.elapsed == legacy.elapsed

    @pytest.mark.slow
    def test_chaos_plan_recovers_under_train_transport(self):
        # Crash + rejoin, switch Reset, burst-loss window: every fault
        # must resolve with batched transport exactly as it does with
        # per-packet transport (barriers split trains at window edges).
        result = run_e2e(
            "sync", "isw", "train", iterations=16, fault_plan=demo_plan()
        )
        report = result.fault_report
        assert report is not None
        assert report.ok, report.summary()
        statuses = {r.event.kind: r.status for r in report.records}
        assert statuses["worker-crash"] == "recovered"
        assert statuses["link-burst"] == "recovered"

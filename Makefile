PY ?= python

.PHONY: test test-fast lint bench

test:
	PYTHONPATH=src $(PY) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PY) -m pytest -x -q -m "not slow"

lint:
	$(PY) -m compileall -q src tests benchmarks
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; compileall-only lint"; \
	fi

bench:
	PYTHONPATH=src $(PY) -m pytest benchmarks/ --benchmark-only -q

PY ?= python

.PHONY: test test-fast lint bench bench-smoke bench-gate bench-pytest soak-smoke

test:
	PYTHONPATH=src $(PY) -m pytest -x -q

test-fast:
	PYTHONPATH=src $(PY) -m pytest -x -q -m "not slow"

lint:
	$(PY) -m compileall -q src tests benchmarks
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; compileall-only lint"; \
	fi

bench:
	PYTHONPATH=src $(PY) tools/bench.py --out benchmarks/results/BENCH_PR10.json

bench-smoke:
	PYTHONPATH=src $(PY) tools/bench.py --smoke --repeats 2 \
		--out bench-smoke.json --budget 300

bench-gate:
	PYTHONPATH=src $(PY) tools/bench.py --smoke --repeats 5 \
		--out bench-smoke.json --max-regression 0.50

bench-pytest:
	PYTHONPATH=src $(PY) -m pytest benchmarks/ --benchmark-only -q

soak-smoke:
	timeout 60 env PYTHONPATH=src $(PY) -m repro jobs soak \
		--jobs 32 --seed 0 --policy fair

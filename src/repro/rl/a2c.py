"""A2C — synchronous advantage actor-critic (the paper's [41] workload).

Each iteration collects an n-step rollout with the current policy,
bootstraps the tail with the value network, and produces one gradient of

    L = policy-gradient loss + c_v * value MSE − c_e * entropy bonus.

Policy and value networks are separate MLPs held in one container so the
whole model travels as a single gradient vector.

Compute fast path (PR 10, DESIGN.md §13): action selection and the tail
bootstrap run through ``Sequential.infer`` and the value loss uses the
fused MSE kernel — bit-identical to the legacy composed ops.  With a
:class:`~repro.rl.envs.vector.VectorEnv` the rollout advances K envs per
step and flattens time-major into one graph pass; K = 1 reproduces
scalar stepping bit-for-bit on the same rng stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Adam,
    Tensor,
    entropy_from_logits,
    fused_mse_loss,
    mse_loss,
    nll_from_logits,
    mlp,
    no_grad,
)
from ..nn.layers import Module
from .base import Algorithm
from .envs.base import Environment
from .envs.vector import VectorEnv
from .spaces import Discrete

__all__ = ["A2C", "ActorCritic", "discounted_returns"]


class ActorCritic(Module):
    """Separate policy and value MLPs in one parameter container."""

    def __init__(self, obs_size: int, n_actions: int, hidden, rng) -> None:
        super().__init__()
        self.policy = mlp([obs_size, *hidden, n_actions], rng=rng)
        self.value = mlp([obs_size, *hidden, 1], rng=rng)


def discounted_returns(
    rewards: np.ndarray,
    dones: np.ndarray,
    bootstrap: float,
    gamma: float,
) -> np.ndarray:
    """n-step discounted returns with bootstrap from the last state."""
    returns = np.zeros_like(rewards)
    running = bootstrap
    for t in range(len(rewards) - 1, -1, -1):
        running = rewards[t] + gamma * running * (1.0 - dones[t])
        returns[t] = running
    return returns


class A2C(Algorithm):
    name = "a2c"

    def __init__(
        self,
        env: Environment,
        hidden=(64, 64),
        lr: float = 7e-4,
        gamma: float = 0.99,
        rollout_steps: int = 16,
        value_coef: float = 0.5,
        entropy_coef: float = 0.01,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Discrete):
            raise TypeError("A2C requires a discrete action space")
        if rollout_steps < 1:
            raise ValueError(f"rollout_steps must be >= 1, got {rollout_steps}")
        self.env = env
        self._venv = env if isinstance(env, VectorEnv) else None
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.rollout_steps = rollout_steps
        self.value_coef = value_coef
        self.entropy_coef = entropy_coef

        container = ActorCritic(
            env.observation_size,
            env.action_space.n,
            hidden,
            rng=np.random.default_rng(seed if init_seed is None else init_seed),
        )
        super().__init__(container)
        self.optimizer = Adam(container.parameters(), lr=lr)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    def _policy_logits(self, obs_batch: np.ndarray) -> np.ndarray:
        if self._fast_compute:
            return self.container.policy.infer(obs_batch)
        with no_grad():
            return self.container.policy(Tensor(obs_batch)).numpy()

    def act(self, obs: np.ndarray) -> int:
        logits = self._policy_logits(obs[None, :])[0]
        logits = logits - logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return int(self.rng.choice(len(probs), p=probs))

    def act_batch(self, obs_batch: np.ndarray) -> np.ndarray:
        """Sample actions for a batch of observations (one net forward).

        Per-row softmax and rng draws run in env index order; a single
        row consumes the rng stream exactly as :meth:`act` does.
        """
        all_logits = self._policy_logits(obs_batch)
        actions = np.empty(len(obs_batch), dtype=np.int64)
        for i in range(len(obs_batch)):
            logits = all_logits[i] - all_logits[i].max()
            probs = np.exp(logits)
            probs /= probs.sum()
            actions[i] = self.rng.choice(len(probs), p=probs)
        return actions

    def _bootstrap_values(self, obs_batch: np.ndarray) -> np.ndarray:
        if self._fast_compute:
            return self.container.value.infer(obs_batch)[:, 0]
        with no_grad():
            return self.container.value(Tensor(obs_batch)).numpy()[:, 0]

    def compute_gradient(self) -> np.ndarray:
        if self._venv is not None:
            obs_buf, act_buf, rew_buf, done_buf = [], [], [], []
            for _ in range(self.rollout_steps):
                actions = self.act_batch(self._obs)
                next_obs, rewards, dones, _ = self.env.step(actions)
                obs_buf.append(self._obs)
                act_buf.append(actions)
                rew_buf.append(rewards)
                done_buf.append(dones)
                self._track_rewards_batch(rewards, dones)
                self._obs = next_obs
            num_envs = self.env.num_envs
            states = np.asarray(obs_buf).reshape(self.rollout_steps * num_envs, -1)
            actions_flat = np.asarray(act_buf, dtype=np.int64).reshape(-1)
            rewards_arr = np.asarray(rew_buf, dtype=np.float64)
            dones_arr = np.asarray(done_buf, dtype=np.float64)
            bootstrap = self._bootstrap_values(self._obs)
        else:
            observations, actions, rewards, dones = [], [], [], []
            for _ in range(self.rollout_steps):
                action = self.act(self._obs)
                next_obs, reward, done, _ = self.env.step(action)
                observations.append(self._obs)
                actions.append(action)
                rewards.append(reward)
                dones.append(done)
                self._track_reward(reward, done)
                self._obs = self.env.reset() if done else next_obs
            states = np.stack(observations)
            actions_flat = np.asarray(actions, dtype=np.int64)
            rewards_arr = np.asarray(rewards, dtype=np.float64)
            dones_arr = np.asarray(dones, dtype=np.float64)
            bootstrap = float(self._bootstrap_values(self._obs[None, :])[0])

        # discounted_returns broadcasts over (T,) or (T, K) rollouts alike.
        returns = discounted_returns(
            rewards_arr, dones_arr, bootstrap, self.gamma
        ).reshape(-1)

        self.container.zero_grad()
        values = self.container.value(Tensor(states)).reshape(-1)
        advantages = returns - values.numpy()  # stop-gradient advantage
        logits = self.container.policy(Tensor(states))
        pg_loss = (nll_from_logits(logits, actions_flat) * Tensor(advantages)).mean()
        if self._fast_compute:
            value_loss = fused_mse_loss(values, returns)
        else:
            value_loss = mse_loss(values, Tensor(returns))
        entropy = entropy_from_logits(logits)
        loss = pg_loss + self.value_coef * value_loss - self.entropy_coef * entropy
        loss.backward()
        return self.gradient_vector()

    def _optimizer_step(self) -> None:
        self.optimizer.step()

"""A2C — synchronous advantage actor-critic (the paper's [41] workload).

Each iteration collects an n-step rollout with the current policy,
bootstraps the tail with the value network, and produces one gradient of

    L = policy-gradient loss + c_v * value MSE − c_e * entropy bonus.

Policy and value networks are separate MLPs held in one container so the
whole model travels as a single gradient vector.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Adam,
    Tensor,
    entropy_from_logits,
    mse_loss,
    nll_from_logits,
    mlp,
    no_grad,
)
from ..nn.layers import Module
from .base import Algorithm
from .envs.base import Environment
from .spaces import Discrete

__all__ = ["A2C", "ActorCritic", "discounted_returns"]


class ActorCritic(Module):
    """Separate policy and value MLPs in one parameter container."""

    def __init__(self, obs_size: int, n_actions: int, hidden, rng) -> None:
        super().__init__()
        self.policy = mlp([obs_size, *hidden, n_actions], rng=rng)
        self.value = mlp([obs_size, *hidden, 1], rng=rng)


def discounted_returns(
    rewards: np.ndarray,
    dones: np.ndarray,
    bootstrap: float,
    gamma: float,
) -> np.ndarray:
    """n-step discounted returns with bootstrap from the last state."""
    returns = np.zeros_like(rewards)
    running = bootstrap
    for t in range(len(rewards) - 1, -1, -1):
        running = rewards[t] + gamma * running * (1.0 - dones[t])
        returns[t] = running
    return returns


class A2C(Algorithm):
    name = "a2c"

    def __init__(
        self,
        env: Environment,
        hidden=(64, 64),
        lr: float = 7e-4,
        gamma: float = 0.99,
        rollout_steps: int = 16,
        value_coef: float = 0.5,
        entropy_coef: float = 0.01,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Discrete):
            raise TypeError("A2C requires a discrete action space")
        if rollout_steps < 1:
            raise ValueError(f"rollout_steps must be >= 1, got {rollout_steps}")
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.rollout_steps = rollout_steps
        self.value_coef = value_coef
        self.entropy_coef = entropy_coef

        container = ActorCritic(
            env.observation_size,
            env.action_space.n,
            hidden,
            rng=np.random.default_rng(seed if init_seed is None else init_seed),
        )
        super().__init__(container)
        self.optimizer = Adam(container.parameters(), lr=lr)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    def act(self, obs: np.ndarray) -> int:
        with no_grad():
            logits = self.container.policy(Tensor(obs[None, :])).numpy()[0]
        logits = logits - logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        return int(self.rng.choice(len(probs), p=probs))

    def compute_gradient(self) -> np.ndarray:
        observations, actions, rewards, dones = [], [], [], []
        for _ in range(self.rollout_steps):
            action = self.act(self._obs)
            next_obs, reward, done, _ = self.env.step(action)
            observations.append(self._obs)
            actions.append(action)
            rewards.append(reward)
            dones.append(done)
            self._track_reward(reward, done)
            self._obs = self.env.reset() if done else next_obs

        states = np.stack(observations)
        actions_arr = np.asarray(actions, dtype=np.int64)
        rewards_arr = np.asarray(rewards, dtype=np.float64)
        dones_arr = np.asarray(dones, dtype=np.float64)

        with no_grad():
            bootstrap = float(
                self.container.value(Tensor(self._obs[None, :])).numpy()[0, 0]
            )
        returns = discounted_returns(rewards_arr, dones_arr, bootstrap, self.gamma)

        self.container.zero_grad()
        values = self.container.value(Tensor(states)).reshape(-1)
        advantages = returns - values.numpy()  # stop-gradient advantage
        logits = self.container.policy(Tensor(states))
        pg_loss = (nll_from_logits(logits, actions_arr) * Tensor(advantages)).mean()
        value_loss = mse_loss(values, Tensor(returns))
        entropy = entropy_from_logits(logits)
        loss = pg_loss + self.value_coef * value_loss - self.entropy_coef * entropy
        loss.backward()
        return self.gradient_vector()

    def _optimizer_step(self) -> None:
        self.optimizer.step()

"""Experience replay buffer (DQN and DDPG).

PR 10 rebuilt ``ReplayBuffer`` as a preallocated ring: one contiguous
storage array per field, written row-by-row at a cursor, sampled with a
single vectorized rng draw plus one fancy-index gather per field.  The
old per-transition list of NamedTuples survives as
``repro.rl.legacy.LegacyReplayBuffer`` and the two are proven
bit-identical — same rng stream, same sampled batches — by
``tests/test_compute_parity.py`` and the property suite in
``tests/test_replay.py``.

Two contracts the ring preserves exactly (DESIGN.md §13):

* **rng stream** — ``sample()`` keeps the legacy
  ``rng.choice(len, size, replace=batch_size > len)`` draw verbatim.
  ``rng.integers`` would be marginally cheaper but produces a different
  stream, which would silently move every seeded DQN/DDPG run.
* **storage dtype** — fields keep the dtype of the first transition
  pushed (the envs emit float64 observations).  Downcasting storage to
  float32 would round observations and break the bit-identity guarantee
  that lets the fast path be default-on.
"""

from __future__ import annotations

from typing import List, NamedTuple

import numpy as np

__all__ = ["Transition", "Batch", "ReplayBuffer", "make_replay_buffer"]


class Transition(NamedTuple):
    """One (s, a, r, s', done) tuple; ``action`` is an int or a vector."""

    state: np.ndarray
    action: object
    reward: float
    next_state: np.ndarray
    done: bool


class Batch(NamedTuple):
    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray


class ReplayBuffer:
    """A fixed-capacity ring buffer with uniform random sampling.

    Storage is allocated lazily from the first transition (its shapes
    and dtypes fix the row layout); ``push`` writes rows at a wrapping
    cursor and ``sample`` is one rng draw plus five gathers.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rng = rng
        self._cursor = 0
        self._size = 0
        self._states: np.ndarray | None = None
        self._actions: np.ndarray | None = None
        self._rewards: np.ndarray | None = None
        self._next_states: np.ndarray | None = None
        self._dones: np.ndarray | None = None

    def _allocate(self, transition: Transition) -> None:
        state = np.asarray(transition.state)
        action = np.asarray(transition.action)
        self._states = np.empty((self.capacity, *state.shape), dtype=state.dtype)
        self._actions = np.empty((self.capacity, *action.shape), dtype=action.dtype)
        self._rewards = np.empty(self.capacity, dtype=np.float64)
        self._next_states = np.empty_like(self._states)
        self._dones = np.empty(self.capacity, dtype=np.float64)

    def push(self, transition: Transition) -> None:
        if self._states is None:
            self._allocate(transition)
        cursor = self._cursor
        self._states[cursor] = transition.state
        self._actions[cursor] = transition.action
        self._rewards[cursor] = transition.reward
        self._next_states[cursor] = transition.next_state
        self._dones[cursor] = transition.done
        self._cursor = (cursor + 1) % self.capacity
        if self._size < self.capacity:
            self._size += 1

    def push_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
    ) -> None:
        """Push ``n`` transitions at once (row ``i`` before row ``i+1``).

        Equivalent to ``n`` sequential :meth:`push` calls; used by the
        vectorized rollout paths so a whole env batch lands in two
        contiguous slice writes at most.
        """
        n = len(states)
        if n == 0:
            return
        if self._states is None:
            self._allocate(
                Transition(states[0], actions[0], rewards[0], next_states[0], dones[0])
            )
        if n >= self.capacity:
            # Degenerate: later rows overwrite earlier ones; keep the
            # sequential semantics via the scalar path.
            for i in range(n):
                self.push(
                    Transition(states[i], actions[i], rewards[i], next_states[i], dones[i])
                )
            return
        cursor = self._cursor
        first = min(n, self.capacity - cursor)
        for dst, src in ((slice(cursor, cursor + first), slice(0, first)),
                         (slice(0, n - first), slice(first, n))):
            if src.start == src.stop:
                continue
            self._states[dst] = states[src]
            self._actions[dst] = actions[src]
            self._rewards[dst] = rewards[src]
            self._next_states[dst] = next_states[src]
            self._dones[dst] = dones[src]
        self._cursor = (cursor + n) % self.capacity
        self._size = min(self.capacity, self._size + n)

    def sample(self, batch_size: int) -> Batch:
        """Sample ``batch_size`` transitions uniformly (with replacement
        disabled when the buffer is large enough)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        replace = batch_size > self._size
        indices = self.rng.choice(self._size, size=batch_size, replace=replace)
        return Batch(
            states=self._states[indices],
            actions=self._actions[indices],
            rewards=self._rewards[indices],
            next_states=self._next_states[indices],
            dones=self._dones[indices],
        )

    @property
    def _storage(self) -> List[Transition]:
        """Occupied slots as Transitions, in slot order (debug/tests)."""
        if self._states is None:
            return []
        out = []
        for i in range(self._size):
            action = self._actions[i]
            out.append(
                Transition(
                    state=self._states[i],
                    action=action.item() if action.ndim == 0 else action,
                    reward=float(self._rewards[i]),
                    next_state=self._next_states[i],
                    done=bool(self._dones[i]),
                )
            )
        return out

    def __len__(self) -> int:
        return self._size


def make_replay_buffer(capacity: int, rng: np.random.Generator):
    """Ring buffer on the fast path, list-of-tuples on the legacy path."""
    from ..nn.fastpath import compute_fastpath_enabled

    if compute_fastpath_enabled():
        return ReplayBuffer(capacity, rng)
    from .legacy import LegacyReplayBuffer

    return LegacyReplayBuffer(capacity, rng)

"""Experience replay buffer (DQN and DDPG)."""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

__all__ = ["Transition", "ReplayBuffer"]


class Transition(NamedTuple):
    """One (s, a, r, s', done) tuple; ``action`` is an int or a vector."""

    state: np.ndarray
    action: object
    reward: float
    next_state: np.ndarray
    done: bool


class Batch(NamedTuple):
    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    dones: np.ndarray


class ReplayBuffer:
    """A fixed-capacity ring buffer with uniform random sampling."""

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rng = rng
        self._storage: list = []
        self._cursor = 0

    def push(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def sample(self, batch_size: int) -> Batch:
        """Sample ``batch_size`` transitions uniformly (with replacement
        disabled when the buffer is large enough)."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        replace = batch_size > len(self._storage)
        indices = self.rng.choice(len(self._storage), size=batch_size, replace=replace)
        transitions = [self._storage[i] for i in indices]
        return Batch(
            states=np.stack([t.state for t in transitions]),
            actions=np.asarray([t.action for t in transitions]),
            rewards=np.asarray([t.reward for t in transitions], dtype=np.float64),
            next_states=np.stack([t.next_state for t in transitions]),
            dones=np.asarray([t.done for t in transitions], dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self._storage)

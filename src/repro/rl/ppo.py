"""PPO with a clipped surrogate objective (Schulman et al., 2017).

The policy is a diagonal Gaussian over continuous actions: an MLP outputs
the mean, and a state-independent learnable ``log_std`` vector sets the
spread — the architecture the paper's reference implementation
(pytorch-a2c-ppo-acktr) uses for MuJoCo.

With ``epochs=1`` (the default) each ``compute_gradient`` call collects a
fresh on-policy rollout, computes GAE(λ) advantages, and returns the
gradient of the clipped surrogate over the whole batch.  With
``epochs > 1`` (classic PPO) the rollout is reused: the next ``epochs−1``
calls return surrogate gradients against the *same* stored rollout and
old-policy log-probabilities — each still one gradient per distributed
iteration, so the aggregation pattern is unchanged.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..nn import Adam, Tensor, mse_loss, mlp, no_grad
from ..nn.layers import Module, Parameter
from .base import Algorithm
from .envs.base import Environment
from .spaces import Box

__all__ = ["PPO", "GaussianActorCritic", "gae_advantages"]

_LOG_2PI = math.log(2.0 * math.pi)


class GaussianActorCritic(Module):
    """Gaussian policy (mean MLP + log_std vector) and a value MLP."""

    def __init__(self, obs_size: int, action_dim: int, hidden, rng) -> None:
        super().__init__()
        self.mean = mlp([obs_size, *hidden, action_dim], rng=rng, activation="tanh")
        self.log_std = Parameter(np.full(action_dim, -0.5), name="log_std")
        self.value = mlp([obs_size, *hidden, 1], rng=rng, activation="tanh")

    def log_prob(self, states: Tensor, actions: np.ndarray) -> Tensor:
        """Per-sample log π(a|s) under the current parameters."""
        mean = self.mean(states)
        std = self.log_std.exp()
        normalized = (Tensor(actions) - mean) / std
        per_dim = (
            -0.5 * (normalized * normalized)
            - self.log_std
            - Tensor(0.5 * _LOG_2PI)
        )
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        """Differential entropy of the diagonal Gaussian (state-free)."""
        return (self.log_std + Tensor(0.5 * (_LOG_2PI + 1.0))).sum()


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    bootstrap: float,
    gamma: float,
    lam: float,
) -> np.ndarray:
    """Generalized advantage estimation, GAE(γ, λ)."""
    advantages = np.zeros_like(rewards)
    next_value = bootstrap
    running = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        not_done = 1.0 - dones[t]
        delta = rewards[t] + gamma * next_value * not_done - values[t]
        running = delta + gamma * lam * not_done * running
        advantages[t] = running
        next_value = values[t]
    return advantages


class PPO(Algorithm):
    name = "ppo"

    def __init__(
        self,
        env: Environment,
        hidden=(32, 32),
        lr: float = 3e-4,
        gamma: float = 0.99,
        lam: float = 0.95,
        rollout_steps: int = 64,
        clip_epsilon: float = 0.2,
        value_coef: float = 0.5,
        entropy_coef: float = 0.0,
        epochs: int = 1,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Box):
            raise TypeError("this PPO implementation targets continuous control")
        if not 0.0 < clip_epsilon < 1.0:
            raise ValueError(f"clip_epsilon must be in (0, 1), got {clip_epsilon}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.lam = lam
        self.rollout_steps = rollout_steps
        self.clip_epsilon = clip_epsilon
        self.value_coef = value_coef
        self.entropy_coef = entropy_coef
        self.epochs = epochs
        self._stored_rollout = None
        self._epochs_used = 0

        container = GaussianActorCritic(
            env.observation_size,
            env.action_space.dim,
            hidden,
            rng=np.random.default_rng(seed if init_seed is None else init_seed),
        )
        super().__init__(container)
        self.optimizer = Adam(container.parameters(), lr=lr)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    def act(self, obs: np.ndarray) -> np.ndarray:
        with no_grad():
            mean = self.container.mean(Tensor(obs[None, :])).numpy()[0]
            std = np.exp(self.container.log_std.numpy())
        action = mean + std * self.rng.standard_normal(mean.shape)
        return self.env.action_space.clip(action)

    def compute_gradient(self) -> np.ndarray:
        if self._stored_rollout is not None and self._epochs_used < self.epochs:
            self._epochs_used += 1
            return self._surrogate_gradient(*self._stored_rollout)
        rollout = self._collect_rollout()
        self._stored_rollout = rollout
        self._epochs_used = 1
        return self._surrogate_gradient(*rollout)

    def _collect_rollout(self):
        observations, actions, rewards, dones = [], [], [], []
        for _ in range(self.rollout_steps):
            action = self.act(self._obs)
            next_obs, reward, done, _ = self.env.step(action)
            observations.append(self._obs)
            actions.append(action)
            rewards.append(reward)
            dones.append(done)
            self._track_reward(reward, done)
            self._obs = self.env.reset() if done else next_obs

        states = np.stack(observations)
        actions_arr = np.stack(actions)
        rewards_arr = np.asarray(rewards, dtype=np.float64)
        dones_arr = np.asarray(dones, dtype=np.float64)

        with no_grad():
            values = self.container.value(Tensor(states)).numpy().reshape(-1)
            bootstrap = float(
                self.container.value(Tensor(self._obs[None, :])).numpy()[0, 0]
            )
            old_log_probs = self.container.log_prob(
                Tensor(states), actions_arr
            ).numpy()

        advantages = gae_advantages(
            rewards_arr, values, dones_arr, bootstrap, self.gamma, self.lam
        )
        returns = advantages + values
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        return states, actions_arr, old_log_probs, advantages, returns

    def _surrogate_gradient(
        self, states, actions_arr, old_log_probs, advantages, returns
    ) -> np.ndarray:
        states = np.asarray(states)
        self.container.zero_grad()
        log_probs = self.container.log_prob(Tensor(states), actions_arr)
        ratio = (log_probs - Tensor(old_log_probs)).exp()
        adv = Tensor(advantages)
        unclipped = ratio * adv
        clipped = ratio.clip(1.0 - self.clip_epsilon, 1.0 + self.clip_epsilon) * adv
        # min(a, b) = b + (a - b) clipped to (-inf, 0]; avoid needing a
        # dedicated minimum op by using the standard identity
        # min(a,b) = 0.5*(a + b - |a - b|).
        surrogate = 0.5 * (unclipped + clipped - (unclipped - clipped).abs())
        policy_loss = -surrogate.mean()
        value_loss = mse_loss(
            self.container.value(Tensor(states)).reshape(-1), Tensor(returns)
        )
        loss = policy_loss + self.value_coef * value_loss
        if self.entropy_coef:
            loss = loss - self.entropy_coef * self.container.entropy()
        loss.backward()
        return self.gradient_vector()

    def _optimizer_step(self) -> None:
        self.optimizer.step()

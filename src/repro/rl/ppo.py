"""PPO with a clipped surrogate objective (Schulman et al., 2017).

The policy is a diagonal Gaussian over continuous actions: an MLP outputs
the mean, and a state-independent learnable ``log_std`` vector sets the
spread — the architecture the paper's reference implementation
(pytorch-a2c-ppo-acktr) uses for MuJoCo.

With ``epochs=1`` (the default) each ``compute_gradient`` call collects a
fresh on-policy rollout, computes GAE(λ) advantages, and returns the
gradient of the clipped surrogate over the whole batch.  With
``epochs > 1`` (classic PPO) the rollout is reused: the next ``epochs−1``
calls return surrogate gradients against the *same* stored rollout and
old-policy log-probabilities — each still one gradient per distributed
iteration, so the aggregation pattern is unchanged.

Compute fast path (PR 10, DESIGN.md §13): acting, the rollout's values /
bootstrap, and the old-policy log-probs run as closed-form NumPy
(mirroring the autograd expressions op for op), and the value term uses
the fused MSE kernel — bit-identical to the legacy path.  A
:class:`~repro.rl.envs.vector.VectorEnv` collects K envs per rollout
step (flattened time-major); K = 1 reproduces scalar stepping
bit-for-bit on the same rng stream.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..nn import Adam, Tensor, fused_mse_loss, mse_loss, mlp, no_grad
from ..nn.layers import Module, Parameter
from .base import Algorithm
from .envs.base import Environment
from .envs.vector import VectorEnv
from .spaces import Box

__all__ = ["PPO", "GaussianActorCritic", "gae_advantages"]

_LOG_2PI = math.log(2.0 * math.pi)


class GaussianActorCritic(Module):
    """Gaussian policy (mean MLP + log_std vector) and a value MLP."""

    def __init__(self, obs_size: int, action_dim: int, hidden, rng) -> None:
        super().__init__()
        self.mean = mlp([obs_size, *hidden, action_dim], rng=rng, activation="tanh")
        self.log_std = Parameter(np.full(action_dim, -0.5), name="log_std")
        self.value = mlp([obs_size, *hidden, 1], rng=rng, activation="tanh")

    def log_prob(self, states: Tensor, actions: np.ndarray) -> Tensor:
        """Per-sample log π(a|s) under the current parameters."""
        mean = self.mean(states)
        std = self.log_std.exp()
        normalized = (Tensor(actions) - mean) / std
        per_dim = (
            -0.5 * (normalized * normalized)
            - self.log_std
            - Tensor(0.5 * _LOG_2PI)
        )
        return per_dim.sum(axis=-1)

    def log_prob_infer(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Gradient-free :meth:`log_prob`, same expressions in raw NumPy."""
        mean = self.mean.infer(states)
        log_std = self.log_std.data
        std = np.exp(log_std)
        normalized = (actions - mean) / std
        per_dim = -0.5 * (normalized * normalized) - log_std - 0.5 * _LOG_2PI
        return per_dim.sum(axis=-1)

    def entropy(self) -> Tensor:
        """Differential entropy of the diagonal Gaussian (state-free)."""
        return (self.log_std + Tensor(0.5 * (_LOG_2PI + 1.0))).sum()


def gae_advantages(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    bootstrap: float,
    gamma: float,
    lam: float,
) -> np.ndarray:
    """Generalized advantage estimation, GAE(γ, λ)."""
    advantages = np.zeros_like(rewards)
    next_value = bootstrap
    running = 0.0
    for t in range(len(rewards) - 1, -1, -1):
        not_done = 1.0 - dones[t]
        delta = rewards[t] + gamma * next_value * not_done - values[t]
        running = delta + gamma * lam * not_done * running
        advantages[t] = running
        next_value = values[t]
    return advantages


class PPO(Algorithm):
    name = "ppo"

    def __init__(
        self,
        env: Environment,
        hidden=(32, 32),
        lr: float = 3e-4,
        gamma: float = 0.99,
        lam: float = 0.95,
        rollout_steps: int = 64,
        clip_epsilon: float = 0.2,
        value_coef: float = 0.5,
        entropy_coef: float = 0.0,
        epochs: int = 1,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Box):
            raise TypeError("this PPO implementation targets continuous control")
        if not 0.0 < clip_epsilon < 1.0:
            raise ValueError(f"clip_epsilon must be in (0, 1), got {clip_epsilon}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.env = env
        self._venv = env if isinstance(env, VectorEnv) else None
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.lam = lam
        self.rollout_steps = rollout_steps
        self.clip_epsilon = clip_epsilon
        self.value_coef = value_coef
        self.entropy_coef = entropy_coef
        self.epochs = epochs
        self._stored_rollout = None
        self._epochs_used = 0

        container = GaussianActorCritic(
            env.observation_size,
            env.action_space.dim,
            hidden,
            rng=np.random.default_rng(seed if init_seed is None else init_seed),
        )
        super().__init__(container)
        self.optimizer = Adam(container.parameters(), lr=lr)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    def act(self, obs: np.ndarray) -> np.ndarray:
        if self._fast_compute:
            mean = self.container.mean.infer(obs[None, :])[0]
            std = np.exp(self.container.log_std.data)
        else:
            with no_grad():
                mean = self.container.mean(Tensor(obs[None, :])).numpy()[0]
                std = np.exp(self.container.log_std.numpy())
        action = mean + std * self.rng.standard_normal(mean.shape)
        return self.env.action_space.clip(action)

    def act_batch(self, obs_batch: np.ndarray) -> np.ndarray:
        """Sample a batch of Gaussian actions (one mean-net forward).

        The (K, action_dim) noise draw consumes the rng stream row-major
        — with one row, exactly the scalar :meth:`act` draw.
        """
        if self._fast_compute:
            mean = self.container.mean.infer(obs_batch)
            std = np.exp(self.container.log_std.data)
        else:
            with no_grad():
                mean = self.container.mean(Tensor(obs_batch)).numpy()
                std = np.exp(self.container.log_std.numpy())
        actions = mean + std * self.rng.standard_normal(mean.shape)
        return self.env.action_space.clip(actions)

    def compute_gradient(self) -> np.ndarray:
        if self._stored_rollout is not None and self._epochs_used < self.epochs:
            self._epochs_used += 1
            return self._surrogate_gradient(*self._stored_rollout)
        rollout = self._collect_rollout()
        self._stored_rollout = rollout
        self._epochs_used = 1
        return self._surrogate_gradient(*rollout)

    def _state_values(self, states: np.ndarray) -> np.ndarray:
        if self._fast_compute:
            return self.container.value.infer(states)[:, 0]
        with no_grad():
            return self.container.value(Tensor(states)).numpy()[:, 0]

    def _old_log_probs(self, states: np.ndarray, actions_arr: np.ndarray) -> np.ndarray:
        if self._fast_compute:
            return self.container.log_prob_infer(states, actions_arr)
        with no_grad():
            return self.container.log_prob(Tensor(states), actions_arr).numpy()

    def _collect_rollout(self):
        if self._venv is not None:
            obs_buf, act_buf, rew_buf, done_buf = [], [], [], []
            for _ in range(self.rollout_steps):
                batch_actions = self.act_batch(self._obs)
                next_obs, rewards, dones, _ = self.env.step(batch_actions)
                obs_buf.append(self._obs)
                act_buf.append(batch_actions)
                rew_buf.append(rewards)
                done_buf.append(dones)
                self._track_rewards_batch(rewards, dones)
                self._obs = next_obs
            num_envs = self.env.num_envs
            states = np.asarray(obs_buf).reshape(self.rollout_steps * num_envs, -1)
            actions_arr = np.asarray(act_buf).reshape(states.shape[0], -1)
            # GAE runs on (T, K) arrays with a (K,) bootstrap; the recursion
            # broadcasts elementwise, so K = 1 matches the scalar path.
            rewards_arr = np.asarray(rew_buf, dtype=np.float64)
            dones_arr = np.asarray(done_buf, dtype=np.float64)
            values = self._state_values(states).reshape(
                self.rollout_steps, num_envs
            )
            bootstrap = self._state_values(self._obs)
        else:
            observations, actions, rewards, dones = [], [], [], []
            for _ in range(self.rollout_steps):
                action = self.act(self._obs)
                next_obs, reward, done, _ = self.env.step(action)
                observations.append(self._obs)
                actions.append(action)
                rewards.append(reward)
                dones.append(done)
                self._track_reward(reward, done)
                self._obs = self.env.reset() if done else next_obs
            states = np.stack(observations)
            actions_arr = np.stack(actions)
            rewards_arr = np.asarray(rewards, dtype=np.float64)
            dones_arr = np.asarray(dones, dtype=np.float64)
            values = self._state_values(states)
            bootstrap = float(self._state_values(self._obs[None, :])[0])

        old_log_probs = self._old_log_probs(states, actions_arr).reshape(-1)
        advantages = gae_advantages(
            rewards_arr, values, dones_arr, bootstrap, self.gamma, self.lam
        )
        returns = (advantages + values).reshape(-1)
        advantages = advantages.reshape(-1)
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        return states, actions_arr, old_log_probs, advantages, returns

    def _surrogate_gradient(
        self, states, actions_arr, old_log_probs, advantages, returns
    ) -> np.ndarray:
        states = np.asarray(states)
        self.container.zero_grad()
        log_probs = self.container.log_prob(Tensor(states), actions_arr)
        ratio = (log_probs - Tensor(old_log_probs)).exp()
        adv = Tensor(advantages)
        unclipped = ratio * adv
        clipped = ratio.clip(1.0 - self.clip_epsilon, 1.0 + self.clip_epsilon) * adv
        # min(a, b) = b + (a - b) clipped to (-inf, 0]; avoid needing a
        # dedicated minimum op by using the standard identity
        # min(a,b) = 0.5*(a + b - |a - b|).
        surrogate = 0.5 * (unclipped + clipped - (unclipped - clipped).abs())
        policy_loss = -surrogate.mean()
        if self._fast_compute:
            value_loss = fused_mse_loss(
                self.container.value(Tensor(states)).reshape(-1), returns
            )
        else:
            value_loss = mse_loss(
                self.container.value(Tensor(states)).reshape(-1), Tensor(returns)
            )
        loss = policy_loss + self.value_coef * value_loss
        if self.entropy_coef:
            loss = loss - self.entropy_coef * self.container.entropy()
        loss.backward()
        return self.gradient_vector()

    def _optimizer_step(self) -> None:
        self.optimizer.step()

"""A synthetic workload for benchmarking the simulator itself.

The paper workloads (DQN/A2C/PPO/DDPG) spend most of their wall-clock
time in real NumPy training math, which is exactly right for convergence
experiments but wrong for measuring *simulator* performance: the netsim
event loop, link transmitters and the aggregation accelerator disappear
into the noise behind rollouts and backprop.

:class:`SyntheticAlgorithm` keeps the full Algorithm contract (flat
float32 gradients out, averaged updates in, bit-reproducible weights for
a fixed seed) while making LGC nearly free — one seeded ``Generator``
draw per iteration.  The wall-clock benchmark harness
(:mod:`repro.bench`) runs every strategy on it so that what gets timed
is the per-packet and per-event cost of the simulation itself, which is
what the hot-path optimizations target.

Sized so one gradient is exactly :data:`SYNTH_N_PARAMS` float32 values =
64 full wire segments (the harness's unit of accelerator work).
"""

from __future__ import annotations

from typing import List

import numpy as np

from .base import Algorithm

__all__ = ["SyntheticAlgorithm", "SYNTH_N_PARAMS"]

#: 64 segments × 366 floats: the gradient fills MAX_CHUNKS packet trains
#: end to end, so every simulated transfer exercises the full per-packet
#: pipeline (client split → link → accelerator → broadcast → reassembly).
SYNTH_N_PARAMS = 64 * 366


class SyntheticAlgorithm(Algorithm):
    """Deterministic stand-in training state with O(n) per-iteration cost.

    The "gradient" is a fresh draw from the worker's seeded RNG; the
    update rule is plain SGD on a flat weight vector.  Replicas share
    ``init_seed`` (identical initial weights) and diverge only through
    their per-worker ``seed`` — the same determinism contract the real
    algorithms honour, so golden weight hashes work here too.
    """

    name = "synth"

    def __init__(
        self,
        env=None,
        seed: int = 0,
        init_seed: int = 12345,
        n_params: int = SYNTH_N_PARAMS,
        lr: float = 1e-3,
    ) -> None:
        if n_params < 1:
            raise ValueError(f"n_params must be >= 1, got {n_params}")
        # No Module container: the whole model is one flat vector, so
        # every container-touching base method is overridden below.
        self._n_params = n_params
        self.lr = lr
        init_rng = np.random.default_rng(init_seed)
        self._weights = init_rng.standard_normal(n_params)
        self._rng = np.random.default_rng(seed)
        self.updates_applied = 0
        self.episode_rewards: List[float] = []
        self._current_episode_reward = 0.0

    # ------------------------------------------------------------------
    # The three-stage interface
    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        gradient = self._rng.standard_normal(self._n_params, dtype=np.float32)
        # A token reward stream so result summaries stay well-formed.
        self._track_reward(float(gradient[0]), done=True)
        return gradient

    def apply_update(self, mean_gradient: np.ndarray) -> None:
        self._weights -= self.lr * np.asarray(mean_gradient, dtype=np.float64)
        self.updates_applied += 1

    # ------------------------------------------------------------------
    # Weight exchange
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return self._n_params

    def get_weights(self) -> np.ndarray:
        return self._weights.copy()

    def set_weights(self, vector: np.ndarray) -> None:
        self._weights[...] = np.asarray(vector, dtype=np.float64)

    def gradient_vector(self) -> np.ndarray:  # pragma: no cover - unused
        return np.zeros(self._n_params, dtype=np.float32)

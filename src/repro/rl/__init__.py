"""RL algorithms (DQN, A2C, PPO, DDPG) and simulated environments."""

from .a2c import A2C, ActorCritic, discounted_returns
from .base import Algorithm
from .ddpg import DDPG, ActorCriticPair, OUNoise
from .dqn import DQN
from .envs import (
    Cheetah1D,
    Environment,
    GridPong,
    GridQbert,
    Hopper1D,
    VectorEnv,
    make_vector_env,
)
from .ppo import PPO, GaussianActorCritic, gae_advantages
from .replay import Batch, ReplayBuffer, Transition, make_replay_buffer
from .spaces import Box, Discrete

__all__ = [
    "Algorithm",
    "DQN",
    "A2C",
    "PPO",
    "DDPG",
    "ActorCritic",
    "ActorCriticPair",
    "GaussianActorCritic",
    "OUNoise",
    "discounted_returns",
    "gae_advantages",
    "ReplayBuffer",
    "Transition",
    "Batch",
    "make_replay_buffer",
    "Box",
    "Discrete",
    "Environment",
    "GridPong",
    "GridQbert",
    "Hopper1D",
    "Cheetah1D",
    "VectorEnv",
    "make_vector_env",
]

"""DDPG (Lillicrap et al., 2015) — deterministic actor-critic for
continuous control, the paper's fourth workload.

The "dual model" (actor + critic, matching the paper's quoted 157.5 KB
total) lives in one container so both nets' gradients travel as a single
wire vector.  Each iteration: act with Ornstein–Uhlenbeck exploration
noise, push to replay, then compute

* critic gradient:  ∇ MSE(Q(s, a), r + γ Q'(s', π'(s')))
* actor gradient:   ∇ −mean Q(s, π(s))   (only the actor's share is kept)

Target networks are soft-updated (Polyak τ) after every applied update —
deterministic in the update count, so decentralized replicas stay
identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Adam, Tensor, concat, mse_loss, mlp, no_grad
from ..nn.layers import Module
from ..nn.serialize import flatten_params, load_flat_params
from .base import Algorithm
from .envs.base import Environment
from .replay import ReplayBuffer, Transition
from .spaces import Box

__all__ = ["DDPG", "OUNoise", "ActorCriticPair"]


class OUNoise:
    """Ornstein–Uhlenbeck process, DDPG's temporally correlated noise."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        theta: float = 0.15,
        sigma: float = 0.2,
    ) -> None:
        self.dim = dim
        self.rng = rng
        self.theta = theta
        self.sigma = sigma
        self.state = np.zeros(dim)

    def reset(self) -> None:
        self.state = np.zeros(self.dim)

    def sample(self) -> np.ndarray:
        self.state = (
            self.state
            - self.theta * self.state
            + self.sigma * self.rng.standard_normal(self.dim)
        )
        return self.state


class ActorCriticPair(Module):
    """Actor π(s) and critic Q(s, a) in one parameter container."""

    def __init__(self, obs_size: int, action_dim: int, hidden, rng) -> None:
        super().__init__()
        self.actor = mlp(
            [obs_size, *hidden, action_dim],
            rng=rng,
            output_activation="tanh",
        )
        self.critic = mlp([obs_size + action_dim, *hidden, 1], rng=rng)

    def q_value(self, states: Tensor, actions: Tensor) -> Tensor:
        return self.critic(concat([states, actions], axis=1)).reshape(-1)


class DDPG(Algorithm):
    name = "ddpg"

    def __init__(
        self,
        env: Environment,
        hidden=(64, 64),
        actor_lr: float = 1e-4,
        critic_lr: float = 1e-3,
        gamma: float = 0.99,
        tau: float = 0.01,
        batch_size: int = 64,
        buffer_capacity: int = 20_000,
        warmup: int = 500,
        env_steps_per_iter: int = 1,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Box):
            raise TypeError("DDPG requires a continuous (Box) action space")
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.tau = tau
        self.batch_size = batch_size
        self.warmup = max(warmup, batch_size)
        self.env_steps_per_iter = env_steps_per_iter

        container = ActorCriticPair(
            env.observation_size,
            env.action_space.dim,
            hidden,
            rng=np.random.default_rng(seed if init_seed is None else init_seed),
        )
        super().__init__(container)
        self.targets = ActorCriticPair(
            env.observation_size,
            env.action_space.dim,
            hidden,
            rng=np.random.default_rng(0),
        )
        load_flat_params(self.targets, flatten_params(container))
        self.actor_optimizer = Adam(container.actor.parameters(), lr=actor_lr)
        self.critic_optimizer = Adam(container.critic.parameters(), lr=critic_lr)
        self.noise = OUNoise(env.action_space.dim, self.rng)
        self.buffer = ReplayBuffer(buffer_capacity, self.rng)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    def act(self, obs: np.ndarray, explore: bool = True) -> np.ndarray:
        with no_grad():
            action = self.container.actor(Tensor(obs[None, :])).numpy()[0]
        if explore:
            action = action + self.noise.sample()
        return self.env.action_space.clip(action)

    def _env_step(self) -> None:
        action = self.act(self._obs)
        next_obs, reward, done, _ = self.env.step(action)
        self.buffer.push(Transition(self._obs, action, reward, next_obs, done))
        self._track_reward(reward, done)
        if done:
            self._obs = self.env.reset()
            self.noise.reset()
        else:
            self._obs = next_obs

    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        while len(self.buffer) < self.warmup:
            self._env_step()
        for _ in range(self.env_steps_per_iter):
            self._env_step()

        batch = self.buffer.sample(self.batch_size)
        states = Tensor(batch.states)
        actions = Tensor(batch.actions.astype(np.float64))

        with no_grad():
            next_actions = self.targets.actor(Tensor(batch.next_states))
            next_q = self.targets.q_value(
                Tensor(batch.next_states), next_actions
            ).numpy()
        targets = batch.rewards + self.gamma * next_q * (1.0 - batch.dones)

        # Critic gradient.
        self.container.zero_grad()
        critic_loss = mse_loss(self.container.q_value(states, actions), Tensor(targets))
        critic_loss.backward()
        critic_grads = {
            id(p): p.grad.copy()
            for p in self.container.critic.parameters()
            if p.grad is not None
        }

        # Actor gradient: maximize Q(s, π(s)); the chain rule pushes
        # gradients into the critic too, but DDPG only applies the actor's
        # share, so the critic slots are restored afterwards.
        self.container.zero_grad()
        actor_actions = self.container.actor(states)
        actor_loss = -self.container.q_value(states, actor_actions).mean()
        actor_loss.backward()
        for param in self.container.critic.parameters():
            param.grad = critic_grads.get(id(param))
        return self.gradient_vector()

    # ------------------------------------------------------------------
    def _optimizer_step(self) -> None:
        self.actor_optimizer.step()
        self.critic_optimizer.step()

    def _after_update(self) -> None:
        self._soft_update_targets()

    def on_weights_pulled(self, server_updates: int) -> None:
        # Async-PS workers never run the optimizer locally; track the
        # pulled online weights with the same Polyak rate the server-side
        # replica applies so TD targets stay comparably fresh.
        super().on_weights_pulled(server_updates)
        self._soft_update_targets()

    def _soft_update_targets(self) -> None:
        # Polyak soft update of the targets.
        online = flatten_params(self.container).astype(np.float64)
        target = flatten_params(self.targets).astype(np.float64)
        load_flat_params(
            self.targets, (1.0 - self.tau) * target + self.tau * online
        )

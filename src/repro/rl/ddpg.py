"""DDPG (Lillicrap et al., 2015) — deterministic actor-critic for
continuous control, the paper's fourth workload.

The "dual model" (actor + critic, matching the paper's quoted 157.5 KB
total) lives in one container so both nets' gradients travel as a single
wire vector.  Each iteration: act with Ornstein–Uhlenbeck exploration
noise, push to replay, then compute

* critic gradient:  ∇ MSE(Q(s, a), r + γ Q'(s', π'(s')))
* actor gradient:   ∇ −mean Q(s, π(s))   (only the actor's share is kept)

Target networks are soft-updated (Polyak τ) after every applied update —
deterministic in the update count, so decentralized replicas stay
identical.

Compute fast path (PR 10, DESIGN.md §13): gradient-free forwards go
through ``Sequential.infer``, the critic TD loss is the fused MSE
kernel, and replay is the ring buffer — bit-identical to the legacy
composed-op path.  A :class:`~repro.rl.envs.vector.VectorEnv` steps K
environments per call with one batched actor forward and a (K, dim)
Ornstein–Uhlenbeck state; K = 1 consumes the same rng stream as scalar
stepping and reproduces it bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Adam,
    Tensor,
    concat,
    fused_mse_loss,
    mse_loss,
    mlp,
    no_grad,
    td_targets,
)
from ..nn.layers import Module
from ..nn.serialize import flatten_params, load_flat_params
from .base import Algorithm
from .envs.base import Environment
from .envs.vector import VectorEnv
from .replay import Transition, make_replay_buffer
from .spaces import Box

__all__ = ["DDPG", "OUNoise", "ActorCriticPair"]


class OUNoise:
    """Ornstein–Uhlenbeck process, DDPG's temporally correlated noise."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        theta: float = 0.15,
        sigma: float = 0.2,
    ) -> None:
        self.dim = dim
        self.rng = rng
        self.theta = theta
        self.sigma = sigma
        self.state = np.zeros(dim)

    def reset(self) -> None:
        self.state = np.zeros(self.dim)

    def sample(self) -> np.ndarray:
        self.state = (
            self.state
            - self.theta * self.state
            + self.sigma * self.rng.standard_normal(self.dim)
        )
        return self.state


class _BatchedOUNoise:
    """OU noise with one state row per env.

    The (K, dim) normal draw fills row-major, so with one row the rng
    stream matches the scalar :class:`OUNoise` draw exactly.
    """

    def __init__(
        self,
        num_envs: int,
        dim: int,
        rng: np.random.Generator,
        theta: float = 0.15,
        sigma: float = 0.2,
    ) -> None:
        self.rng = rng
        self.theta = theta
        self.sigma = sigma
        self.state = np.zeros((num_envs, dim))

    def reset_rows(self, rows: np.ndarray) -> None:
        self.state[rows] = 0.0

    def sample(self) -> np.ndarray:
        self.state = (
            self.state
            - self.theta * self.state
            + self.sigma * self.rng.standard_normal(self.state.shape)
        )
        return self.state


class ActorCriticPair(Module):
    """Actor π(s) and critic Q(s, a) in one parameter container."""

    def __init__(self, obs_size: int, action_dim: int, hidden, rng) -> None:
        super().__init__()
        self.actor = mlp(
            [obs_size, *hidden, action_dim],
            rng=rng,
            output_activation="tanh",
        )
        self.critic = mlp([obs_size + action_dim, *hidden, 1], rng=rng)

    def q_value(self, states: Tensor, actions: Tensor) -> Tensor:
        return self.critic(concat([states, actions], axis=1)).reshape(-1)

    def q_value_infer(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        """Gradient-free :meth:`q_value`, same concat + forward in NumPy."""
        return self.critic.infer(np.concatenate([states, actions], axis=1))[:, 0]


class DDPG(Algorithm):
    name = "ddpg"

    def __init__(
        self,
        env: Environment,
        hidden=(64, 64),
        actor_lr: float = 1e-4,
        critic_lr: float = 1e-3,
        gamma: float = 0.99,
        tau: float = 0.01,
        batch_size: int = 64,
        buffer_capacity: int = 20_000,
        warmup: int = 500,
        env_steps_per_iter: int = 1,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Box):
            raise TypeError("DDPG requires a continuous (Box) action space")
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        self.env = env
        self._venv = env if isinstance(env, VectorEnv) else None
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.tau = tau
        self.batch_size = batch_size
        self.warmup = max(warmup, batch_size)
        self.env_steps_per_iter = env_steps_per_iter

        container = ActorCriticPair(
            env.observation_size,
            env.action_space.dim,
            hidden,
            rng=np.random.default_rng(seed if init_seed is None else init_seed),
        )
        super().__init__(container)
        self.targets = ActorCriticPair(
            env.observation_size,
            env.action_space.dim,
            hidden,
            rng=np.random.default_rng(0),
        )
        load_flat_params(self.targets, flatten_params(container))
        self.actor_optimizer = Adam(container.actor.parameters(), lr=actor_lr)
        self.critic_optimizer = Adam(container.critic.parameters(), lr=critic_lr)
        if self._venv is not None:
            self.noise = _BatchedOUNoise(
                self.env.num_envs, env.action_space.dim, self.rng
            )
        else:
            self.noise = OUNoise(env.action_space.dim, self.rng)
        self.buffer = make_replay_buffer(buffer_capacity, self.rng)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    def act(self, obs: np.ndarray, explore: bool = True) -> np.ndarray:
        if self._fast_compute:
            action = self.container.actor.infer(obs[None, :])[0]
        else:
            with no_grad():
                action = self.container.actor(Tensor(obs[None, :])).numpy()[0]
        if explore:
            action = action + self.noise.sample()
        return self.env.action_space.clip(action)

    def act_batch(self, obs_batch: np.ndarray, explore: bool = True) -> np.ndarray:
        """Deterministic actions for a batch of observations plus OU noise."""
        if self._fast_compute:
            actions = self.container.actor.infer(obs_batch)
        else:
            with no_grad():
                actions = self.container.actor(Tensor(obs_batch)).numpy()
        if explore:
            actions = actions + self.noise.sample()
        return self.env.action_space.clip(actions)

    def _env_step(self) -> None:
        if self._venv is not None:
            self._env_step_batch()
            return
        action = self.act(self._obs)
        next_obs, reward, done, _ = self.env.step(action)
        self.buffer.push(Transition(self._obs, action, reward, next_obs, done))
        self._track_reward(reward, done)
        if done:
            self._obs = self.env.reset()
            self.noise.reset()
        else:
            self._obs = next_obs

    def _env_step_batch(self) -> None:
        actions = self.act_batch(self._obs)
        next_obs, rewards, dones, infos = self.env.step(actions)
        # Replay must see the terminal observation, not the autoreset one.
        bootstrap_obs = next_obs
        done_rows = np.nonzero(dones)[0]
        if done_rows.size:
            bootstrap_obs = next_obs.copy()
            for i in done_rows:
                bootstrap_obs[i] = infos[i]["terminal_observation"]
        self.buffer.push_batch(self._obs, actions, rewards, bootstrap_obs, dones)
        self._track_rewards_batch(rewards, dones)
        if done_rows.size:
            self.noise.reset_rows(done_rows)
        self._obs = next_obs

    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        while len(self.buffer) < self.warmup:
            self._env_step()
        for _ in range(self.env_steps_per_iter):
            self._env_step()

        batch = self.buffer.sample(self.batch_size)
        states = Tensor(batch.states)
        actions = Tensor(batch.actions.astype(np.float64))

        if self._fast_compute:
            next_actions = self.targets.actor.infer(batch.next_states)
            next_q = self.targets.q_value_infer(batch.next_states, next_actions)
            targets = td_targets(batch.rewards, next_q, batch.dones, self.gamma)
        else:
            with no_grad():
                next_actions = self.targets.actor(Tensor(batch.next_states))
                next_q = self.targets.q_value(
                    Tensor(batch.next_states), next_actions
                ).numpy()
            targets = batch.rewards + self.gamma * next_q * (1.0 - batch.dones)

        # Critic gradient.
        self.container.zero_grad()
        if self._fast_compute:
            critic_loss = fused_mse_loss(
                self.container.q_value(states, actions), targets
            )
        else:
            critic_loss = mse_loss(
                self.container.q_value(states, actions), Tensor(targets)
            )
        critic_loss.backward()
        critic_grads = {
            id(p): p.grad.copy()
            for p in self.container.critic.parameters()
            if p.grad is not None
        }

        # Actor gradient: maximize Q(s, π(s)); the chain rule pushes
        # gradients into the critic too, but DDPG only applies the actor's
        # share, so the critic slots are restored afterwards.
        self.container.zero_grad()
        actor_actions = self.container.actor(states)
        actor_loss = -self.container.q_value(states, actor_actions).mean()
        actor_loss.backward()
        for param in self.container.critic.parameters():
            param.grad = critic_grads.get(id(param))
        return self.gradient_vector()

    # ------------------------------------------------------------------
    def _optimizer_step(self) -> None:
        self.actor_optimizer.step()
        self.critic_optimizer.step()

    def _after_update(self) -> None:
        self._soft_update_targets()

    def on_weights_pulled(self, server_updates: int) -> None:
        # Async-PS workers never run the optimizer locally; track the
        # pulled online weights with the same Polyak rate the server-side
        # replica applies so TD targets stay comparably fresh.
        super().on_weights_pulled(server_updates)
        self._soft_update_targets()

    def _soft_update_targets(self) -> None:
        # Polyak soft update of the targets.
        online = flatten_params(self.container).astype(np.float64)
        target = flatten_params(self.targets).astype(np.float64)
        load_flat_params(
            self.targets, (1.0 - self.tau) * target + self.tau * online
        )

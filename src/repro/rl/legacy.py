"""Legacy (pre-PR-10) compute-path reference implementations.

These are the exact implementations the compute fast path replaced, kept
verbatim so the differential suite (``tests/test_compute_parity.py``)
and the ``*-legacy`` bench twins measure the fast path against the real
thing rather than a reconstruction.  Selected via
``repro.nn.fastpath.use_legacy_compute()`` / ``REPRO_COMPUTE=legacy``.
"""

from __future__ import annotations

import numpy as np

from .replay import Batch, Transition

__all__ = ["LegacyReplayBuffer"]


class LegacyReplayBuffer:
    """The pre-PR-10 list-of-NamedTuples ring with Python-loop stacking."""

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.rng = rng
        self._storage: list = []
        self._cursor = 0

    def push(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def push_batch(self, states, actions, rewards, next_states, dones) -> None:
        for i in range(len(states)):
            self.push(
                Transition(states[i], actions[i], rewards[i], next_states[i], dones[i])
            )

    def sample(self, batch_size: int) -> Batch:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        replace = batch_size > len(self._storage)
        indices = self.rng.choice(len(self._storage), size=batch_size, replace=replace)
        transitions = [self._storage[i] for i in indices]
        return Batch(
            states=np.stack([t.state for t in transitions]),
            actions=np.asarray([t.action for t in transitions]),
            rewards=np.asarray([t.reward for t in transitions], dtype=np.float64),
            next_states=np.stack([t.next_state for t in transitions]),
            dones=np.asarray([t.done for t in transitions], dtype=np.float64),
        )

    def __len__(self) -> int:
        return len(self._storage)

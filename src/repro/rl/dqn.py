"""DQN (Mnih et al., 2013/2015) — the paper's flagship workload.

Standard ingredients: an MLP Q-network, a periodically synced target
network, an ε-greedy behaviour policy with linear decay, uniform
experience replay, and the Huber TD loss.  One *iteration* (one
``compute_gradient`` call) takes ``env_steps_per_iter`` environment steps
and produces one minibatch gradient — matching the paper's accounting
where DQN runs millions of small-iteration updates.

Extensions beyond the 2015 recipe (both off by default):

* ``double_dqn`` — Double DQN (van Hasselt et al., 2016): the online
  network selects the bootstrap action, the target network evaluates it,
  removing the max-operator overestimation bias.
* ``n_step > 1`` — n-step TD targets: transitions entering the replay
  buffer carry the discounted sum of the next n rewards and bootstrap
  from the state n steps ahead.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ..nn import Adam, Tensor, huber_loss, mlp, no_grad
from ..nn.layers import Module
from ..nn.serialize import flatten_params, load_flat_params
from .base import Algorithm
from .envs.base import Environment
from .replay import ReplayBuffer, Transition
from .spaces import Discrete

__all__ = ["DQN"]


class _QContainer(Module):
    """Holds the online Q-network (the only *trained* parameters)."""

    def __init__(self, q_net) -> None:
        super().__init__()
        self.q_net = q_net


class DQN(Algorithm):
    name = "dqn"

    def __init__(
        self,
        env: Environment,
        hidden=(64, 64),
        lr: float = 1e-3,
        gamma: float = 0.99,
        batch_size: int = 32,
        buffer_capacity: int = 20_000,
        warmup: int = 500,
        target_sync_every: int = 100,
        env_steps_per_iter: int = 4,
        epsilon_start: float = 1.0,
        epsilon_final: float = 0.05,
        epsilon_decay_updates: int = 2_000,
        double_dqn: bool = False,
        n_step: int = 1,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Discrete):
            raise TypeError("DQN requires a discrete action space")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if n_step < 1:
            raise ValueError(f"n_step must be >= 1, got {n_step}")
        self.env = env
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.batch_size = batch_size
        self.warmup = max(warmup, batch_size)
        self.target_sync_every = target_sync_every
        self.env_steps_per_iter = env_steps_per_iter
        self.epsilon_start = epsilon_start
        self.epsilon_final = epsilon_final
        self.epsilon_decay_updates = epsilon_decay_updates
        self.double_dqn = double_dqn
        self.n_step = n_step
        self._pending: deque = deque()

        n_actions = env.action_space.n
        sizes = [env.observation_size, *hidden, n_actions]
        model_rng = np.random.default_rng(seed if init_seed is None else init_seed)
        q_net = mlp(sizes, rng=model_rng)
        super().__init__(_QContainer(q_net))
        self.q_net = q_net
        self.target_net = mlp(sizes, rng=np.random.default_rng(0))
        self._sync_target()
        self.optimizer = Adam(self.container.parameters(), lr=lr)
        self.buffer = ReplayBuffer(buffer_capacity, self.rng)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Linearly decayed exploration rate, driven by applied updates so
        all strategies see the same schedule per weight version."""
        fraction = min(1.0, self.updates_applied / self.epsilon_decay_updates)
        return self.epsilon_start + fraction * (
            self.epsilon_final - self.epsilon_start
        )

    def act(self, obs: np.ndarray, greedy: bool = False) -> int:
        if not greedy and self.rng.random() < self.epsilon:
            return self.env.action_space.sample(self.rng)
        with no_grad():
            q_values = self.q_net(Tensor(obs[None, :])).numpy()
        return int(np.argmax(q_values[0]))

    def _env_step(self, greedy: bool = False) -> None:
        action = self.act(self._obs, greedy=greedy)
        next_obs, reward, done, _ = self.env.step(action)
        if self.n_step == 1:
            self.buffer.push(
                Transition(self._obs, action, reward, next_obs, done)
            )
        else:
            self._accumulate_n_step(self._obs, action, reward, next_obs, done)
        self._track_reward(reward, done)
        self._obs = self.env.reset() if done else next_obs

    def _accumulate_n_step(self, obs, action, reward, next_obs, done) -> None:
        """Fold the newest step into pending n-step transitions.

        A pending transition matures when it has absorbed ``n_step``
        rewards (bootstrapping from the state n steps ahead) or when the
        episode ends (no bootstrap left to wait for).
        """
        self._pending.append([obs, action, 0.0, next_obs, done, 0])
        for entry in self._pending:
            entry[2] += reward * (self.gamma ** entry[5])
            entry[3] = next_obs
            entry[4] = done
            entry[5] += 1
        while self._pending and (
            self._pending[0][5] >= self.n_step or done
        ):
            first = self._pending.popleft()
            self.buffer.push(
                Transition(first[0], first[1], first[2], first[3], first[4])
            )

    # ------------------------------------------------------------------
    # The LGC stage
    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        while len(self.buffer) < self.warmup:
            self._env_step()
        for _ in range(self.env_steps_per_iter):
            self._env_step()

        batch = self.buffer.sample(self.batch_size)
        with no_grad():
            next_q = self.target_net(Tensor(batch.next_states)).numpy()
            if self.double_dqn:
                # Online net selects, target net evaluates.
                online_next = self.q_net(Tensor(batch.next_states)).numpy()
                best = np.argmax(online_next, axis=1)
                bootstrap = next_q[np.arange(len(best)), best]
            else:
                bootstrap = next_q.max(axis=1)
        # n-step transitions already carry the discounted reward sum; the
        # bootstrap therefore discounts by gamma^n.
        discount = self.gamma**self.n_step
        targets = batch.rewards + discount * bootstrap * (1.0 - batch.dones)

        self.container.zero_grad()
        q_values = self.q_net(Tensor(batch.states))
        chosen = q_values.gather(batch.actions.astype(np.int64))
        loss = huber_loss(chosen, Tensor(targets))
        loss.backward()
        return self.gradient_vector()

    # ------------------------------------------------------------------
    # The LWU stage
    # ------------------------------------------------------------------
    def _optimizer_step(self) -> None:
        self.optimizer.step()

    def _after_update(self) -> None:
        if self.updates_applied % self.target_sync_every == 0:
            self._sync_target()

    def on_weights_pulled(self, server_updates: int) -> None:
        # Re-sync the target on the same update cadence the server follows,
        # driving the ε schedule from the server's progress.
        previous = self.updates_applied
        super().on_weights_pulled(server_updates)
        if server_updates // self.target_sync_every > previous // self.target_sync_every:
            self._sync_target()

    def _sync_target(self) -> None:
        load_flat_params(self.target_net, flatten_params(self.q_net))

    def sync_target_now(self) -> None:
        """Explicit target refresh (used by async PS workers on pull)."""
        self._sync_target()

"""DQN (Mnih et al., 2013/2015) — the paper's flagship workload.

Standard ingredients: an MLP Q-network, a periodically synced target
network, an ε-greedy behaviour policy with linear decay, uniform
experience replay, and the Huber TD loss.  One *iteration* (one
``compute_gradient`` call) takes ``env_steps_per_iter`` environment steps
and produces one minibatch gradient — matching the paper's accounting
where DQN runs millions of small-iteration updates.

Extensions beyond the 2015 recipe (both off by default):

* ``double_dqn`` — Double DQN (van Hasselt et al., 2016): the online
  network selects the bootstrap action, the target network evaluates it,
  removing the max-operator overestimation bias.
* ``n_step > 1`` — n-step TD targets: transitions entering the replay
  buffer carry the discounted sum of the next n rewards and bootstrap
  from the state n steps ahead.

Compute fast path (PR 10, DESIGN.md §13): gradient-free forwards go
through ``Sequential.infer`` (raw NumPy, no tape), the trained update is
one closed-form fused forward+backward over the whole MLP → gather →
Huber graph (``fused_qnet_grad``), replay is the ring buffer, and the
n-step fold is one vectorized array update — all bit-identical to the legacy
composed-op path.  Passing a :class:`~repro.rl.envs.vector.VectorEnv`
steps K environments per call with one batched ``act``; with K = 1 the
batched path consumes the same rng stream as scalar stepping and
reproduces it bit-for-bit.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from ..nn import Adam, Tensor, fused_qnet_grad, huber_loss, mlp, no_grad, td_targets
from ..nn.layers import Module
from ..nn.serialize import flatten_params, load_flat_params
from .base import Algorithm
from .envs.base import Environment
from .envs.vector import VectorEnv
from .replay import Transition, make_replay_buffer
from .spaces import Discrete

__all__ = ["DQN"]


class _QContainer(Module):
    """Holds the online Q-network (the only *trained* parameters)."""

    def __init__(self, q_net) -> None:
        super().__init__()
        self.q_net = q_net


class DQN(Algorithm):
    name = "dqn"

    def __init__(
        self,
        env: Environment,
        hidden=(64, 64),
        lr: float = 1e-3,
        gamma: float = 0.99,
        batch_size: int = 32,
        buffer_capacity: int = 20_000,
        warmup: int = 500,
        target_sync_every: int = 100,
        env_steps_per_iter: int = 4,
        epsilon_start: float = 1.0,
        epsilon_final: float = 0.05,
        epsilon_decay_updates: int = 2_000,
        double_dqn: bool = False,
        n_step: int = 1,
        seed: Optional[int] = None,
        init_seed: Optional[int] = None,
    ) -> None:
        if not isinstance(env.action_space, Discrete):
            raise TypeError("DQN requires a discrete action space")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        if n_step < 1:
            raise ValueError(f"n_step must be >= 1, got {n_step}")
        self.env = env
        self._venv = env if isinstance(env, VectorEnv) else None
        self.rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.batch_size = batch_size
        self.warmup = max(warmup, batch_size)
        self.target_sync_every = target_sync_every
        self.env_steps_per_iter = env_steps_per_iter
        self.epsilon_start = epsilon_start
        self.epsilon_final = epsilon_final
        self.epsilon_decay_updates = epsilon_decay_updates
        self.double_dqn = double_dqn
        self.n_step = n_step
        self._pending: deque = deque()
        self._pending_per_env: Optional[list] = None
        # Same values the legacy per-entry `gamma ** age` produced.
        self._gamma_powers = np.array([gamma**j for j in range(n_step)])
        self._pending_rewards = np.zeros(n_step)
        self._pending_ages = np.zeros(n_step, dtype=np.int64)
        self._pending_heads: list = []

        n_actions = env.action_space.n
        sizes = [env.observation_size, *hidden, n_actions]
        model_rng = np.random.default_rng(seed if init_seed is None else init_seed)
        q_net = mlp(sizes, rng=model_rng)
        super().__init__(_QContainer(q_net))
        self.q_net = q_net
        self.target_net = mlp(sizes, rng=np.random.default_rng(0))
        self._sync_target()
        self.optimizer = Adam(self.container.parameters(), lr=lr)
        self.buffer = make_replay_buffer(buffer_capacity, self.rng)
        self._obs = env.reset()

    # ------------------------------------------------------------------
    # Acting
    # ------------------------------------------------------------------
    @property
    def epsilon(self) -> float:
        """Linearly decayed exploration rate, driven by applied updates so
        all strategies see the same schedule per weight version."""
        fraction = min(1.0, self.updates_applied / self.epsilon_decay_updates)
        return self.epsilon_start + fraction * (
            self.epsilon_final - self.epsilon_start
        )

    def act(self, obs: np.ndarray, greedy: bool = False) -> int:
        if not greedy and self.rng.random() < self.epsilon:
            return self.env.action_space.sample(self.rng)
        if self._fast_compute:
            q_values = self.q_net.infer(obs[None, :])
        else:
            with no_grad():
                q_values = self.q_net(Tensor(obs[None, :])).numpy()
        return int(np.argmax(q_values[0]))

    def act_batch(self, obs_batch: np.ndarray, greedy: bool = False) -> np.ndarray:
        """ε-greedy actions for a batch of observations (one net forward).

        Exploration draws happen in env index order; with one row this
        consumes the rng stream exactly as :meth:`act` does.
        """
        k = len(obs_batch)
        actions = np.empty(k, dtype=np.int64)
        if greedy:
            explore = np.zeros(k, dtype=bool)
        else:
            explore = self.rng.random(k) < self.epsilon
            for i in np.nonzero(explore)[0]:
                actions[i] = self.env.action_space.sample(self.rng)
        exploit = np.nonzero(~explore)[0]
        if exploit.size:
            if self._fast_compute:
                q_values = self.q_net.infer(obs_batch[exploit])
            else:
                with no_grad():
                    q_values = self.q_net(Tensor(obs_batch[exploit])).numpy()
            actions[exploit] = np.argmax(q_values, axis=1)
        return actions

    def _env_step(self, greedy: bool = False) -> None:
        if self._venv is not None:
            self._env_step_batch(greedy)
            return
        action = self.act(self._obs, greedy=greedy)
        next_obs, reward, done, _ = self.env.step(action)
        if self.n_step == 1:
            self.buffer.push(
                Transition(self._obs, action, reward, next_obs, done)
            )
        elif self._fast_compute:
            self._accumulate_n_step_fast(self._obs, action, reward, next_obs, done)
        else:
            self._accumulate_n_step(self._obs, action, reward, next_obs, done)
        self._track_reward(reward, done)
        self._obs = self.env.reset() if done else next_obs

    def _env_step_batch(self, greedy: bool = False) -> None:
        actions = self.act_batch(self._obs, greedy=greedy)
        next_obs, rewards, dones, infos = self.env.step(actions)
        # Replay must see the terminal observation, not the autoreset one.
        bootstrap_obs = next_obs
        done_rows = np.nonzero(dones)[0]
        if done_rows.size:
            bootstrap_obs = next_obs.copy()
            for i in done_rows:
                bootstrap_obs[i] = infos[i]["terminal_observation"]
        if self.n_step == 1:
            self.buffer.push_batch(self._obs, actions, rewards, bootstrap_obs, dones)
        else:
            if self._pending_per_env is None:
                self._pending_per_env = [deque() for _ in range(len(actions))]
            for i in range(len(actions)):
                self._accumulate_n_step(
                    np.array(self._obs[i]),
                    int(actions[i]),
                    float(rewards[i]),
                    np.array(bootstrap_obs[i]),
                    bool(dones[i]),
                    pending=self._pending_per_env[i],
                )
        self._track_rewards_batch(rewards, dones)
        self._obs = next_obs

    def _accumulate_n_step(
        self, obs, action, reward, next_obs, done, pending: Optional[deque] = None
    ) -> None:
        """Fold the newest step into pending n-step transitions.

        A pending transition matures when it has absorbed ``n_step``
        rewards (bootstrapping from the state n steps ahead) or when the
        episode ends (no bootstrap left to wait for).
        """
        if pending is None:
            pending = self._pending
        pending.append([obs, action, 0.0, next_obs, done, 0])
        for entry in pending:
            entry[2] += reward * (self.gamma ** entry[5])
            entry[3] = next_obs
            entry[4] = done
            entry[5] += 1
        while pending and (pending[0][5] >= self.n_step or done):
            first = pending.popleft()
            self.buffer.push(
                Transition(first[0], first[1], first[2], first[3], first[4])
            )

    def _accumulate_n_step_fast(self, obs, action, reward, next_obs, done) -> None:
        """Array-based n-step fold, bit-identical to :meth:`_accumulate_n_step`.

        Pending (state, action) heads sit in a list; their reward
        accumulators and ages live in two fixed arrays (at most
        ``n_step`` entries are ever pending), so the per-step fold is one
        vectorized multiply-add instead of a Python loop.  The mature
        next_state/done are taken from the current step — exactly what
        the legacy per-entry rewrite left in place at pop time.
        """
        heads = self._pending_heads
        count = len(heads)
        heads.append((obs, action))
        self._pending_rewards[count] = 0.0
        self._pending_ages[count] = 0
        count += 1
        self._pending_rewards[:count] += (
            reward * self._gamma_powers[self._pending_ages[:count]]
        )
        self._pending_ages[:count] += 1
        mature = count if done else np.searchsorted(
            -self._pending_ages[:count], -self.n_step, side="right"
        )
        if mature:
            for j in range(mature):
                head_obs, head_action = heads[j]
                self.buffer.push(
                    Transition(
                        head_obs,
                        head_action,
                        float(self._pending_rewards[j]),
                        next_obs,
                        done,
                    )
                )
            del heads[:mature]
            remaining = count - mature
            self._pending_rewards[:remaining] = self._pending_rewards[mature:count]
            self._pending_ages[:remaining] = self._pending_ages[mature:count]

    # ------------------------------------------------------------------
    # The LGC stage
    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        while len(self.buffer) < self.warmup:
            self._env_step()
        for _ in range(self.env_steps_per_iter):
            self._env_step()

        batch = self.buffer.sample(self.batch_size)
        if self._fast_compute:
            next_q = self.target_net.infer(batch.next_states)
            if self.double_dqn:
                online_next = self.q_net.infer(batch.next_states)
                best = np.argmax(online_next, axis=1)
                bootstrap = next_q[np.arange(len(best)), best]
            else:
                bootstrap = next_q.max(axis=1)
        else:
            with no_grad():
                next_q = self.target_net(Tensor(batch.next_states)).numpy()
                if self.double_dqn:
                    # Online net selects, target net evaluates.
                    online_next = self.q_net(Tensor(batch.next_states)).numpy()
                    best = np.argmax(online_next, axis=1)
                    bootstrap = next_q[np.arange(len(best)), best]
                else:
                    bootstrap = next_q.max(axis=1)
        # n-step transitions already carry the discounted reward sum; the
        # bootstrap therefore discounts by gamma^n.
        discount = self.gamma**self.n_step

        self.container.zero_grad()
        if self._fast_compute:
            # Closed-form fused forward+backward over the whole graph —
            # no tape nodes at all (bit-identical; DESIGN.md §13).
            fused_qnet_grad(
                self.q_net,
                batch.states,
                batch.actions,
                td_targets(batch.rewards, bootstrap, batch.dones, discount),
            )
        else:
            q_values = self.q_net(Tensor(batch.states))
            chosen = q_values.gather(batch.actions.astype(np.int64))
            targets = batch.rewards + discount * bootstrap * (1.0 - batch.dones)
            loss = huber_loss(chosen, Tensor(targets))
            loss.backward()
        return self.gradient_vector()

    # ------------------------------------------------------------------
    # The LWU stage
    # ------------------------------------------------------------------
    def _optimizer_step(self) -> None:
        self.optimizer.step()

    def _after_update(self) -> None:
        if self.updates_applied % self.target_sync_every == 0:
            self._sync_target()

    def on_weights_pulled(self, server_updates: int) -> None:
        # Re-sync the target on the same update cadence the server follows,
        # driving the ε schedule from the server's progress.
        previous = self.updates_applied
        super().on_weights_pulled(server_updates)
        if server_updates // self.target_sync_every > previous // self.target_sync_every:
            self._sync_target()

    def _sync_target(self) -> None:
        load_flat_params(self.target_net, flatten_params(self.q_net))

    def sync_target_now(self) -> None:
        """Explicit target refresh (used by async PS workers on pull)."""
        self._sync_target()

"""Action/observation space descriptors (a minimal gym-style vocabulary)."""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

__all__ = ["Discrete", "Box"]


@dataclass(frozen=True)
class Discrete:
    """``n`` mutually exclusive actions, encoded as ints ``0..n-1``."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"Discrete space needs n >= 1, got {self.n}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.n))

    def contains(self, action) -> bool:
        return isinstance(action, (int, np.integer)) and 0 <= action < self.n


@dataclass(frozen=True)
class Box:
    """A continuous action vector with per-dimension bounds [low, high]."""

    dim: int
    low: float = -1.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"Box space needs dim >= 1, got {self.dim}")
        if self.low >= self.high:
            raise ValueError(f"Box bounds inverted: [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=self.dim)

    def contains(self, action) -> bool:
        action = np.asarray(action)
        return action.shape == (self.dim,) and bool(
            np.all(action >= self.low) and np.all(action <= self.high)
        )

    def clip(self, action: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(action, dtype=np.float64), self.low, self.high)

"""GridQbert: the discrete arcade stand-in for Atari "Qbert" (A2C workload).

The agent hops across a triangular pyramid of cubes (rows 0..K−1, row r
has r+1 cubes).  Every first visit paints the cube (+1); hopping off the
pyramid costs −1 and ends the episode; painting the whole pyramid earns a
+5 bonus and ends the episode.  Four actions move diagonally, mirroring
the original game's movement set.

The observation encodes the agent position (row, column, both normalized)
plus the paint state of the cubes in a fixed-size bitmap, so the policy
must learn both navigation and coverage — a denser analogue of Qbert's
objective.
"""

from __future__ import annotations

import numpy as np

from ..spaces import Discrete
from .base import Environment, StepResult

__all__ = ["GridQbert"]

#: (d_row, d_col) per action: up-left, up-right, down-left, down-right.
_MOVES = ((-1, -1), (-1, 0), (1, 0), (1, 1))


class GridQbert(Environment):
    action_space = Discrete(4)

    def __init__(self, seed=None, rows: int = 5, max_steps: int = 120) -> None:
        super().__init__(seed)
        if rows < 2:
            raise ValueError(f"need at least 2 rows, got {rows}")
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.rows = rows
        self.max_steps = max_steps
        self.n_cubes = rows * (rows + 1) // 2
        self.observation_size = 2 + self.n_cubes
        self._painted = np.zeros(self.n_cubes, dtype=np.float64)
        self._row = 0
        self._col = 0
        self._steps = 0

    def _cube_index(self, row: int, col: int) -> int:
        return row * (row + 1) // 2 + col

    def _reset(self) -> np.ndarray:
        self._painted[:] = 0.0
        self._row, self._col = 0, 0
        self._painted[0] = 1.0
        self._steps = 0
        return self._observe()

    def _step(self, action) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid GridQbert action: {action!r}")
        self._steps += 1
        d_row, d_col = _MOVES[int(action)]
        row, col = self._row + d_row, self._col + d_col

        if row < 0 or row >= self.rows or col < 0 or col > row:
            # Hopped off the pyramid.
            return self._observe(), -1.0, True, {"fell": True}

        self._row, self._col = row, col
        index = self._cube_index(row, col)
        reward = 0.0
        info = {}
        if self._painted[index] == 0.0:
            self._painted[index] = 1.0
            reward = 1.0
            info["painted"] = True

        done = False
        if self._painted.all():
            reward += 5.0
            done = True
            info["cleared"] = True
        elif self._steps >= self.max_steps:
            done = True
        return self._observe(), reward, done, info

    def _observe(self) -> np.ndarray:
        position = np.array(
            [
                2.0 * self._row / (self.rows - 1) - 1.0,
                2.0 * self._col / max(1, self.rows - 1) - 1.0,
            ]
        )
        return np.concatenate([position, self._painted])

"""Environment wrappers: observation/reward transforms.

The paper's reference implementations (OpenAI Baselines lineage) wrap
their environments with observation normalization and frame stacking;
these NumPy equivalents make the stand-in workloads configurable the same
way.
"""

from __future__ import annotations

from collections import deque
import numpy as np

from .base import Environment, StepResult

__all__ = ["Wrapper", "NormalizeObservation", "FrameStack", "ScaleReward"]


class Wrapper(Environment):
    """Base: forwards everything to the wrapped environment."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.rng = env.rng
        self._needs_reset = True
        self.observation_size = env.observation_size
        self.action_space = env.action_space

    def seed(self, seed: int) -> None:
        self.env.seed(seed)
        self.rng = self.env.rng

    def _reset(self) -> np.ndarray:
        return self.observation(self.env.reset())

    def _step(self, action) -> StepResult:
        obs, reward, done, info = self.env.step(action)
        return self.observation(obs), self.reward(reward), done, info

    # Transform hooks ----------------------------------------------------
    def observation(self, obs: np.ndarray) -> np.ndarray:
        return obs

    def reward(self, reward: float) -> float:
        return reward


class NormalizeObservation(Wrapper):
    """Online per-dimension standardization (Welford running moments).

    Statistics update on every observation seen, so early training sees
    slightly drifting normalization — the standard trade-off the Baselines
    wrapper makes too.
    """

    def __init__(self, env: Environment, epsilon: float = 1e-8) -> None:
        super().__init__(env)
        self.epsilon = epsilon
        self._count = 0
        self._mean = np.zeros(env.observation_size)
        self._m2 = np.zeros(env.observation_size)

    def observation(self, obs: np.ndarray) -> np.ndarray:
        self._count += 1
        delta = obs - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (obs - self._mean)
        if self._count < 2:
            return obs - self._mean
        std = np.sqrt(self._m2 / (self._count - 1)) + self.epsilon
        return (obs - self._mean) / std

    @property
    def running_mean(self) -> np.ndarray:
        return self._mean.copy()

    @property
    def running_std(self) -> np.ndarray:
        if self._count < 2:
            return np.ones_like(self._mean)
        return np.sqrt(self._m2 / (self._count - 1))


class FrameStack(Wrapper):
    """Concatenate the last ``k`` observations (Atari-style history)."""

    def __init__(self, env: Environment, k: int = 4) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(env)
        self.k = k
        self.observation_size = env.observation_size * k
        self._frames: deque = deque(maxlen=k)

    def _reset(self) -> np.ndarray:
        obs = self.env.reset()
        self._frames.clear()
        for _ in range(self.k):
            self._frames.append(obs)
        return self._stacked()

    def _step(self, action) -> StepResult:
        obs, reward, done, info = self.env.step(action)
        self._frames.append(obs)
        return self._stacked(), reward, done, info

    def _stacked(self) -> np.ndarray:
        return np.concatenate(list(self._frames))


class ScaleReward(Wrapper):
    """Multiply rewards by a constant (reward shaping/clipping stand-in)."""

    def __init__(self, env: Environment, scale: float) -> None:
        if scale == 0:
            raise ValueError("scale must be non-zero")
        super().__init__(env)
        self.scale = scale

    def reward(self, reward: float) -> float:
        return reward * self.scale

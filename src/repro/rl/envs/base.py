"""The environment interface all simulated workloads implement.

The paper trains on Atari (DQN, A2C) and MuJoCo (PPO, DDPG); neither is
available offline, so :mod:`repro.rl.envs` provides NumPy stand-ins with
the same *interaction structure*: episodic, reward-dense enough to learn
in thousands of iterations, discrete-action arcade dynamics for the Atari
slots and continuous-control locomotion for the MuJoCo slots.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..spaces import Box, Discrete

__all__ = ["Environment", "StepResult"]

StepResult = Tuple[np.ndarray, float, bool, Dict[str, Any]]


class Environment:
    """Gym-style episodic environment."""

    #: Set by subclasses.
    observation_size: int
    action_space: Union[Discrete, Box]

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng = np.random.default_rng(seed)
        self._needs_reset = True

    def seed(self, seed: int) -> None:
        self.rng = np.random.default_rng(seed)

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the initial observation."""
        self._needs_reset = False
        return self._reset()

    def step(self, action) -> StepResult:
        """Advance one step; returns (obs, reward, done, info)."""
        if self._needs_reset:
            raise RuntimeError(
                f"{type(self).__name__}.step() called before reset() "
                "(or after a terminal step)"
            )
        obs, reward, done, info = self._step(action)
        if done:
            self._needs_reset = True
        return obs, float(reward), bool(done), info

    # Subclass hooks -----------------------------------------------------
    def _reset(self) -> np.ndarray:
        raise NotImplementedError

    def _step(self, action) -> StepResult:
        raise NotImplementedError

"""GridPong: the discrete arcade stand-in for Atari "Pong" (DQN workload).

A ball bounces inside a unit square; the agent slides a paddle along the
bottom edge with three actions {left, stay, right}.  Each paddle hit earns
+1; a miss earns −1 and ends the episode (as Pong's rallies do).  Episodes
also end after :attr:`max_steps`, so a perfect policy earns about
``max_steps / steps_per_rally``.

The observation is the 5-vector ``[ball_x, ball_y, ball_vx, ball_vy,
paddle_x]``, everything normalized to [−1, 1] — a compact analogue of the
Atari frame stack that keeps worker compute cheap while preserving the
credit-assignment structure (the agent must track the ball and position
the paddle several steps ahead).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..spaces import Discrete
from .base import Environment, StepResult

__all__ = ["GridPong"]


class GridPong(Environment):
    observation_size = 5
    action_space = Discrete(3)

    #: Paddle half-width (ball is caught if |ball_x − paddle_x| <= this).
    PADDLE_HALF_WIDTH = 0.15
    #: Paddle slew per step.
    PADDLE_SPEED = 0.12
    #: Ball speed magnitude per step.
    BALL_SPEED = 0.07

    def __init__(self, seed=None, max_steps: int = 200) -> None:
        super().__init__(seed)
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self._steps = 0
        self._ball = np.zeros(2)
        self._vel = np.zeros(2)
        self._paddle_x = 0.5

    def _reset(self) -> np.ndarray:
        self._steps = 0
        self._paddle_x = 0.5
        self._ball = np.array([self.rng.uniform(0.2, 0.8), self.rng.uniform(0.5, 0.9)])
        angle = self.rng.uniform(-0.8, 0.8)
        self._vel = self.BALL_SPEED * np.array([np.sin(angle), -np.cos(angle)])
        return self._observe()

    def _step(self, action) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid GridPong action: {action!r}")
        self._steps += 1
        self._paddle_x += (int(action) - 1) * self.PADDLE_SPEED
        self._paddle_x = float(np.clip(self._paddle_x, 0.0, 1.0))

        self._ball += self._vel
        # Side walls reflect.
        for axis, position in ((0, self._ball[0]),):
            if position < 0.0 or position > 1.0:
                self._ball[axis] = float(np.clip(position, 0.0, 1.0))
                self._vel[axis] = -self._vel[axis]
        # Ceiling reflects.
        if self._ball[1] > 1.0:
            self._ball[1] = 1.0
            self._vel[1] = -self._vel[1]

        reward = 0.0
        done = False
        info: Dict[str, bool] = {}
        if self._ball[1] <= 0.0:
            if abs(self._ball[0] - self._paddle_x) <= self.PADDLE_HALF_WIDTH:
                reward = 1.0
                info["hit"] = True
                self._ball[1] = 0.0
                self._vel[1] = abs(self._vel[1])
                # English: hitting off-center deflects the ball.
                offset = (self._ball[0] - self._paddle_x) / self.PADDLE_HALF_WIDTH
                self._vel[0] = float(
                    np.clip(self._vel[0] + 0.03 * offset, -0.09, 0.09)
                )
            else:
                reward = -1.0
                info["miss"] = True
                done = True
        if self._steps >= self.max_steps:
            done = True
        return self._observe(), reward, done, info

    def _observe(self) -> np.ndarray:
        return np.array(
            [
                2.0 * self._ball[0] - 1.0,
                2.0 * self._ball[1] - 1.0,
                self._vel[0] / self.BALL_SPEED,
                self._vel[1] / self.BALL_SPEED,
                2.0 * self._paddle_x - 1.0,
            ],
            dtype=np.float64,
        )

"""Simulated RL workloads standing in for the paper's Atari/MuJoCo tasks."""

from .base import Environment, StepResult
from .cheetah1d import Cheetah1D
from .gridpong import GridPong
from .gridqbert import GridQbert
from .hopper1d import Hopper1D
from .vector import (
    VectorCheetah1D,
    VectorEnv,
    VectorGridPong,
    VectorGridQbert,
    VectorHopper1D,
    make_vector_env,
)
from .wrappers import FrameStack, NormalizeObservation, ScaleReward, Wrapper

__all__ = [
    "Environment",
    "StepResult",
    "GridPong",
    "GridQbert",
    "Hopper1D",
    "Cheetah1D",
    "VectorEnv",
    "VectorGridPong",
    "VectorGridQbert",
    "VectorHopper1D",
    "VectorCheetah1D",
    "make_vector_env",
    "Wrapper",
    "NormalizeObservation",
    "FrameStack",
    "ScaleReward",
]

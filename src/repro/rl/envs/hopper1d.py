"""Hopper1D: the continuous-control stand-in for MuJoCo "Hopper" (PPO).

A one-legged point mass must keep hopping forward.  State is
``[height, vertical velocity, forward velocity, phase]``; the single
action is leg thrust in [−1, 1].  Thrust only acts while in contact with
the ground (height ≈ 0), like a hopping gait: the agent must learn to
push at the right phase to keep a flight rhythm while being rewarded for
forward speed and penalized for control effort.  The episode ends if the
hopper "falls" (spends too long grounded without bouncing) or after
``max_steps``.
"""

from __future__ import annotations

import numpy as np

from ..spaces import Box
from .base import Environment, StepResult

__all__ = ["Hopper1D"]


class Hopper1D(Environment):
    observation_size = 4
    action_space = Box(dim=1)

    DT = 0.05
    GRAVITY = 9.8
    #: Forward speed gained per unit of well-timed thrust.
    THRUST_GAIN = 6.0
    DRAG = 0.12

    def __init__(self, seed=None, max_steps: int = 200) -> None:
        super().__init__(seed)
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self._height = 0.0
        self._v_vertical = 0.0
        self._v_forward = 0.0
        self._grounded_steps = 0
        self._steps = 0

    def _reset(self) -> np.ndarray:
        self._height = self.rng.uniform(0.05, 0.25)
        self._v_vertical = 0.0
        self._v_forward = self.rng.uniform(0.0, 0.2)
        self._grounded_steps = 0
        self._steps = 0
        return self._observe()

    def _step(self, action) -> StepResult:
        thrust = float(self.action_space.clip(np.atleast_1d(action))[0])
        self._steps += 1

        in_contact = self._height <= 1e-6
        if in_contact:
            self._grounded_steps += 1
            if thrust > 0.0:
                # Push off: vertical impulse plus forward drive.
                self._v_vertical = 1.5 * thrust
                self._v_forward += self.THRUST_GAIN * thrust * self.DT
                self._grounded_steps = 0
        else:
            self._grounded_steps = 0

        self._v_vertical -= self.GRAVITY * self.DT
        self._height = max(0.0, self._height + self._v_vertical * self.DT)
        if self._height == 0.0 and self._v_vertical < 0.0:
            self._v_vertical = 0.0
        self._v_forward = max(0.0, self._v_forward * (1.0 - self.DRAG))

        reward = self._v_forward - 0.1 * thrust * thrust + 0.05
        fallen = self._grounded_steps > 8
        done = fallen or self._steps >= self.max_steps
        if fallen:
            reward -= 1.0
        return self._observe(), reward, done, {"fallen": fallen}

    def _observe(self) -> np.ndarray:
        phase = 1.0 if self._height <= 1e-6 else -1.0
        return np.array(
            [self._height, self._v_vertical / 3.0, self._v_forward / 3.0, phase]
        )

"""Batched environment stepping (PR 10 compute fast path).

``VectorEnv`` advances K environments together behind one batched
``reset``/``step`` API.  The base class is the *sequential reference*:
it loops over K scalar :class:`Environment` instances in index order —
correct for any env, including the wrappers in ``rl/envs/wrappers.py``.
The four kernel subclasses (:class:`VectorGridPong`,
:class:`VectorGridQbert`, :class:`VectorHopper1D`,
:class:`VectorCheetah1D`) keep struct-of-arrays state and replace the
loop with array math that replays the scalar ``_step`` expressions in
the exact same IEEE-754 operation order, so both implementations are
bit-identical over arbitrarily long runs (``tests/test_compute_parity.py``
drives them 1k steps side by side).

rng-order contract (DESIGN.md §13): each env owns its own
``default_rng`` stream, and the only draws happen in ``_reset`` —
every ``_step`` is deterministic.  Resets execute per-env in index
order, so the kernels consume each stream exactly as the scalar envs
do and seeded runs are reproducible across both implementations.

Episodes auto-reset: when env ``i`` terminates, ``step`` returns
``done[i] = True``, stashes the terminal observation under
``infos[i]["terminal_observation"]``, and returns the next episode's
first observation in ``obs[i]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .base import Environment
from .cheetah1d import Cheetah1D
from .gridpong import GridPong
from .gridqbert import GridQbert
from .hopper1d import Hopper1D

__all__ = [
    "VectorEnv",
    "VectorGridPong",
    "VectorGridQbert",
    "VectorHopper1D",
    "VectorCheetah1D",
    "make_vector_env",
]


class VectorEnv:
    """K environments stepped together; this base loops sequentially."""

    def __init__(self, envs: Sequence[Environment]) -> None:
        envs = list(envs)
        if not envs:
            raise ValueError("VectorEnv needs at least one environment")
        self.envs = envs
        self.num_envs = len(envs)
        self.observation_size = envs[0].observation_size
        self.action_space = envs[0].action_space

    def reset(self) -> np.ndarray:
        return np.stack([env.reset() for env in self.envs])

    def step(self, actions):
        obs = np.empty((self.num_envs, self.observation_size))
        rewards = np.empty(self.num_envs)
        dones = np.zeros(self.num_envs, dtype=bool)
        infos: List[Dict] = []
        for i, env in enumerate(self.envs):
            o, r, d, info = env.step(actions[i])
            if d:
                info = dict(info)
                info["terminal_observation"] = o
                o = env.reset()
            obs[i] = o
            rewards[i] = r
            dones[i] = d
            infos.append(info)
        return obs, rewards, dones, infos


class _KernelVectorEnv(VectorEnv):
    """Struct-of-arrays base: batched step kernel + per-env scalar resets."""

    def __init__(
        self, num_envs: int, seed: Optional[int] = None, max_steps: int = 200
    ) -> None:
        # No super().__init__ — kernels hold arrays, not env objects.
        if num_envs < 1:
            raise ValueError(f"num_envs must be >= 1, got {num_envs}")
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.num_envs = num_envs
        self.max_steps = max_steps
        self._rngs = [
            np.random.default_rng(None if seed is None else seed + i)
            for i in range(num_envs)
        ]

    def reset(self) -> np.ndarray:
        for i in range(self.num_envs):
            self._reset_env(i)
        return self._observe_all()

    def step(self, actions):
        rewards, dones, infos = self._step_all(np.asarray(actions))
        obs = self._observe_all()
        for i in np.nonzero(dones)[0]:
            infos[i]["terminal_observation"] = obs[i].copy()
            self._reset_env(i)
            obs[i] = self._observe_env(i)
        return obs, rewards, dones, infos

    def _empty_infos(self) -> List[Dict]:
        return [{} for _ in range(self.num_envs)]

    # Kernel hooks -------------------------------------------------------
    def _reset_env(self, i: int) -> None:
        raise NotImplementedError

    def _step_all(self, actions: np.ndarray):
        raise NotImplementedError

    def _observe_all(self) -> np.ndarray:
        raise NotImplementedError

    def _observe_env(self, i: int) -> np.ndarray:
        raise NotImplementedError


class VectorGridPong(_KernelVectorEnv):
    observation_size = GridPong.observation_size
    action_space = GridPong.action_space

    def __init__(self, num_envs, seed=None, max_steps: int = 200) -> None:
        super().__init__(num_envs, seed, max_steps)
        k = num_envs
        self._steps = np.zeros(k, dtype=np.int64)
        self._ball = np.zeros((k, 2))
        self._vel = np.zeros((k, 2))
        self._paddle_x = np.zeros(k)

    def _reset_env(self, i: int) -> None:
        rng = self._rngs[i]
        self._steps[i] = 0
        self._paddle_x[i] = 0.5
        self._ball[i, 0] = rng.uniform(0.2, 0.8)
        self._ball[i, 1] = rng.uniform(0.5, 0.9)
        angle = rng.uniform(-0.8, 0.8)
        self._vel[i, 0] = GridPong.BALL_SPEED * np.sin(angle)
        self._vel[i, 1] = GridPong.BALL_SPEED * (-np.cos(angle))

    def _step_all(self, actions: np.ndarray):
        if actions.dtype.kind not in "iu" or np.any((actions < 0) | (actions > 2)):
            raise ValueError(f"invalid GridPong actions: {actions!r}")
        half_width = GridPong.PADDLE_HALF_WIDTH
        self._steps += 1
        self._paddle_x += (actions - 1) * GridPong.PADDLE_SPEED
        np.clip(self._paddle_x, 0.0, 1.0, out=self._paddle_x)

        self._ball += self._vel
        bx, by = self._ball[:, 0], self._ball[:, 1]
        vx, vy = self._vel[:, 0], self._vel[:, 1]
        side = (bx < 0.0) | (bx > 1.0)
        if side.any():
            bx[side] = np.clip(bx[side], 0.0, 1.0)
            vx[side] = -vx[side]
        ceiling = by > 1.0
        if ceiling.any():
            by[ceiling] = 1.0
            vy[ceiling] = -vy[ceiling]

        rewards = np.zeros(self.num_envs)
        infos = self._empty_infos()
        bottom = by <= 0.0
        hit = bottom & (np.abs(bx - self._paddle_x) <= half_width)
        if hit.any():
            rewards[hit] = 1.0
            by[hit] = 0.0
            vy[hit] = np.abs(vy[hit])
            offset = (bx[hit] - self._paddle_x[hit]) / half_width
            vx[hit] = np.clip(vx[hit] + 0.03 * offset, -0.09, 0.09)
            for i in np.nonzero(hit)[0]:
                infos[i]["hit"] = True
        miss = bottom & ~hit
        rewards[miss] = -1.0
        for i in np.nonzero(miss)[0]:
            infos[i]["miss"] = True
        dones = miss | (self._steps >= self.max_steps)
        return rewards, dones, infos

    def _observe_all(self) -> np.ndarray:
        obs = np.empty((self.num_envs, 5))
        obs[:, 0] = 2.0 * self._ball[:, 0] - 1.0
        obs[:, 1] = 2.0 * self._ball[:, 1] - 1.0
        obs[:, 2] = self._vel[:, 0] / GridPong.BALL_SPEED
        obs[:, 3] = self._vel[:, 1] / GridPong.BALL_SPEED
        obs[:, 4] = 2.0 * self._paddle_x - 1.0
        return obs

    def _observe_env(self, i: int) -> np.ndarray:
        return np.array(
            [
                2.0 * self._ball[i, 0] - 1.0,
                2.0 * self._ball[i, 1] - 1.0,
                self._vel[i, 0] / GridPong.BALL_SPEED,
                self._vel[i, 1] / GridPong.BALL_SPEED,
                2.0 * self._paddle_x[i] - 1.0,
            ],
            dtype=np.float64,
        )


_QBERT_MOVES = np.array([(-1, -1), (-1, 0), (1, 0), (1, 1)], dtype=np.int64)


class VectorGridQbert(_KernelVectorEnv):
    action_space = GridQbert.action_space

    def __init__(self, num_envs, seed=None, rows: int = 5, max_steps: int = 120) -> None:
        super().__init__(num_envs, seed, max_steps)
        if rows < 2:
            raise ValueError(f"need at least 2 rows, got {rows}")
        self.rows = rows
        self.n_cubes = rows * (rows + 1) // 2
        self.observation_size = 2 + self.n_cubes
        k = num_envs
        self._steps = np.zeros(k, dtype=np.int64)
        self._row = np.zeros(k, dtype=np.int64)
        self._col = np.zeros(k, dtype=np.int64)
        self._painted = np.zeros((k, self.n_cubes))

    def _reset_env(self, i: int) -> None:
        # GridQbert._reset draws nothing from its rng; neither do we.
        self._painted[i, :] = 0.0
        self._row[i] = 0
        self._col[i] = 0
        self._painted[i, 0] = 1.0
        self._steps[i] = 0

    def _step_all(self, actions: np.ndarray):
        if actions.dtype.kind not in "iu" or np.any((actions < 0) | (actions > 3)):
            raise ValueError(f"invalid GridQbert actions: {actions!r}")
        self._steps += 1
        moves = _QBERT_MOVES[actions]
        row = self._row + moves[:, 0]
        col = self._col + moves[:, 1]
        fell = (row < 0) | (row >= self.rows) | (col < 0) | (col > row)
        ok = ~fell
        self._row[ok] = row[ok]
        self._col[ok] = col[ok]

        rewards = np.zeros(self.num_envs)
        rewards[fell] = -1.0
        infos = self._empty_infos()
        for i in np.nonzero(fell)[0]:
            infos[i]["fell"] = True

        index = self._row * (self._row + 1) // 2 + self._col
        env_ids = np.arange(self.num_envs)
        newly = ok & (self._painted[env_ids, index] == 0.0)
        self._painted[env_ids[newly], index[newly]] = 1.0
        rewards[newly] = 1.0
        for i in np.nonzero(newly)[0]:
            infos[i]["painted"] = True

        cleared = ok & self._painted.all(axis=1)
        rewards[cleared] += 5.0
        for i in np.nonzero(cleared)[0]:
            infos[i]["cleared"] = True
        dones = fell | cleared | (ok & (self._steps >= self.max_steps))
        return rewards, dones, infos

    def _observe_all(self) -> np.ndarray:
        obs = np.empty((self.num_envs, self.observation_size))
        obs[:, 0] = 2.0 * self._row / (self.rows - 1) - 1.0
        obs[:, 1] = 2.0 * self._col / max(1, self.rows - 1) - 1.0
        obs[:, 2:] = self._painted
        return obs

    def _observe_env(self, i: int) -> np.ndarray:
        position = np.array(
            [
                2.0 * self._row[i] / (self.rows - 1) - 1.0,
                2.0 * self._col[i] / max(1, self.rows - 1) - 1.0,
            ]
        )
        return np.concatenate([position, self._painted[i]])


class VectorHopper1D(_KernelVectorEnv):
    observation_size = Hopper1D.observation_size
    action_space = Hopper1D.action_space

    def __init__(self, num_envs, seed=None, max_steps: int = 200) -> None:
        super().__init__(num_envs, seed, max_steps)
        k = num_envs
        self._steps = np.zeros(k, dtype=np.int64)
        self._height = np.zeros(k)
        self._v_vertical = np.zeros(k)
        self._v_forward = np.zeros(k)
        self._grounded_steps = np.zeros(k, dtype=np.int64)

    def _reset_env(self, i: int) -> None:
        rng = self._rngs[i]
        self._height[i] = rng.uniform(0.05, 0.25)
        self._v_vertical[i] = 0.0
        self._v_forward[i] = rng.uniform(0.0, 0.2)
        self._grounded_steps[i] = 0
        self._steps[i] = 0

    def _step_all(self, actions: np.ndarray):
        env = Hopper1D
        thrust = self.action_space.clip(actions.reshape(self.num_envs, -1))[:, 0]
        self._steps += 1

        in_contact = self._height <= 1e-6
        push = in_contact & (thrust > 0.0)
        self._grounded_steps[in_contact] += 1
        self._v_vertical[push] = 1.5 * thrust[push]
        self._v_forward[push] += env.THRUST_GAIN * thrust[push] * env.DT
        self._grounded_steps[push] = 0
        self._grounded_steps[~in_contact] = 0

        self._v_vertical -= env.GRAVITY * env.DT
        self._height = np.maximum(0.0, self._height + self._v_vertical * env.DT)
        stopped = (self._height == 0.0) & (self._v_vertical < 0.0)
        self._v_vertical[stopped] = 0.0
        self._v_forward = np.maximum(0.0, self._v_forward * (1.0 - env.DRAG))

        rewards = self._v_forward - 0.1 * thrust * thrust + 0.05
        fallen = self._grounded_steps > 8
        rewards[fallen] -= 1.0
        dones = fallen | (self._steps >= self.max_steps)
        infos = self._empty_infos()
        for i in range(self.num_envs):
            infos[i]["fallen"] = bool(fallen[i])
        return rewards, dones, infos

    def _observe_all(self) -> np.ndarray:
        obs = np.empty((self.num_envs, 4))
        obs[:, 0] = self._height
        obs[:, 1] = self._v_vertical / 3.0
        obs[:, 2] = self._v_forward / 3.0
        obs[:, 3] = np.where(self._height <= 1e-6, 1.0, -1.0)
        return obs

    def _observe_env(self, i: int) -> np.ndarray:
        phase = 1.0 if self._height[i] <= 1e-6 else -1.0
        return np.array(
            [
                self._height[i],
                self._v_vertical[i] / 3.0,
                self._v_forward[i] / 3.0,
                phase,
            ]
        )


class VectorCheetah1D(_KernelVectorEnv):
    observation_size = Cheetah1D.observation_size
    action_space = Cheetah1D.action_space

    def __init__(self, num_envs, seed=None, max_steps: int = 200) -> None:
        super().__init__(num_envs, seed, max_steps)
        k = num_envs
        self._steps = np.zeros(k, dtype=np.int64)
        self._velocity = np.zeros(k)
        self._pitch = np.zeros(k)
        self._pitch_rate = np.zeros(k)

    def _reset_env(self, i: int) -> None:
        rng = self._rngs[i]
        self._velocity[i] = rng.uniform(0.0, 0.1)
        self._pitch[i] = rng.uniform(-0.05, 0.05)
        self._pitch_rate[i] = 0.0
        self._steps[i] = 0

    def _step_all(self, actions: np.ndarray):
        env = Cheetah1D
        clipped = self.action_space.clip(actions.reshape(self.num_envs, -1))
        front, back = clipped[:, 0], clipped[:, 1]
        self._steps += 1

        drive = 0.5 * (front - back)
        pitch_torque = 0.5 * (front + back)

        efficiency = np.maximum(0.0, np.cos(self._pitch))
        self._velocity += 4.0 * drive * efficiency * env.DT
        self._velocity = np.maximum(0.0, self._velocity * (1.0 - env.DRAG))

        self._pitch_rate += env.PITCH_COUPLING * pitch_torque * env.DT
        self._pitch_rate *= 0.9
        self._pitch = np.clip(self._pitch + self._pitch_rate * env.DT, -1.2, 1.2)

        control_cost = 0.05 * (front * front + back * back)
        rewards = self._velocity - control_cost - 0.2 * np.abs(self._pitch)
        dones = self._steps >= self.max_steps
        return rewards, dones.copy(), self._empty_infos()

    def _observe_all(self) -> np.ndarray:
        obs = np.empty((self.num_envs, 3))
        obs[:, 0] = self._velocity / 3.0
        obs[:, 1] = self._pitch
        obs[:, 2] = self._pitch_rate
        return obs

    def _observe_env(self, i: int) -> np.ndarray:
        return np.array(
            [self._velocity[i] / 3.0, self._pitch[i], self._pitch_rate[i]]
        )


_KERNELS = {
    "gridpong": (VectorGridPong, GridPong),
    "gridqbert": (VectorGridQbert, GridQbert),
    "hopper1d": (VectorHopper1D, Hopper1D),
    "cheetah1d": (VectorCheetah1D, Cheetah1D),
}


def make_vector_env(
    name: str, num_envs: int, seed: Optional[int] = None, *, kernel: bool = True, **kwargs
) -> VectorEnv:
    """Build a vectorized env: kernel implementation or sequential reference.

    Env ``i`` is seeded ``seed + i`` (fresh entropy when ``seed`` is
    None), identically for both implementations.
    """
    if name not in _KERNELS:
        raise ValueError(f"unknown env {name!r}; choose from {sorted(_KERNELS)}")
    vector_cls, scalar_cls = _KERNELS[name]
    if kernel:
        return vector_cls(num_envs, seed=seed, **kwargs)
    return VectorEnv(
        [
            scalar_cls(seed=None if seed is None else seed + i, **kwargs)
            for i in range(num_envs)
        ]
    )

"""Cheetah1D: the continuous-control stand-in for MuJoCo "HalfCheetah"
(DDPG workload).

A planar body driven by two actuators ("front" and "back" legs) whose
*coordination* determines thrust: pushing both the same way mostly pitches
the body (wasted, penalized), while alternating them in the right ratio
produces forward drive — a low-dimensional analogue of HalfCheetah's gait
discovery.  State is ``[forward velocity, pitch, pitch rate]``; reward is
forward speed minus control and pitch costs; episodes are fixed length
(HalfCheetah has no termination either).
"""

from __future__ import annotations

import numpy as np

from ..spaces import Box
from .base import Environment, StepResult

__all__ = ["Cheetah1D"]


class Cheetah1D(Environment):
    observation_size = 3
    action_space = Box(dim=2)

    DT = 0.05
    DRAG = 0.10
    #: How strongly equal-signed actuation pitches the body instead of
    #: driving it.
    PITCH_COUPLING = 1.2

    def __init__(self, seed=None, max_steps: int = 200) -> None:
        super().__init__(seed)
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self._velocity = 0.0
        self._pitch = 0.0
        self._pitch_rate = 0.0
        self._steps = 0

    def _reset(self) -> np.ndarray:
        self._velocity = self.rng.uniform(0.0, 0.1)
        self._pitch = self.rng.uniform(-0.05, 0.05)
        self._pitch_rate = 0.0
        self._steps = 0
        return self._observe()

    def _step(self, action) -> StepResult:
        front, back = self.action_space.clip(np.atleast_1d(action))
        self._steps += 1

        # Antisymmetric component drives; symmetric component pitches.
        drive = 0.5 * (front - back)
        pitch_torque = 0.5 * (front + back)

        # A pitched body converts less drive into forward motion.
        efficiency = max(0.0, np.cos(self._pitch))
        self._velocity += 4.0 * drive * efficiency * self.DT
        self._velocity = max(0.0, self._velocity * (1.0 - self.DRAG))

        self._pitch_rate += self.PITCH_COUPLING * pitch_torque * self.DT
        self._pitch_rate *= 0.9  # damping
        self._pitch = float(
            np.clip(self._pitch + self._pitch_rate * self.DT, -1.2, 1.2)
        )

        control_cost = 0.05 * (front * front + back * back)
        reward = self._velocity - control_cost - 0.2 * abs(self._pitch)
        done = self._steps >= self.max_steps
        return self._observe(), reward, done, {}

    def _observe(self) -> np.ndarray:
        return np.array([self._velocity / 3.0, self._pitch, self._pitch_rate])

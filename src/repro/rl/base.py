"""The uniform interface distributed training drives RL algorithms through.

The paper's three-stage decomposition of a training iteration (§4.1) maps
directly onto this interface:

* **LGC** (local gradient computing) — :meth:`Algorithm.compute_gradient`:
  interact with the environment, collect trajectory/replay data, run
  forward+backward, and return the flat float32 gradient vector that goes
  on the wire.
* **GA** (gradient aggregation) — performed *outside* the algorithm by a
  strategy in :mod:`repro.distributed` (parameter server, Ring-AllReduce,
  or the iSwitch accelerator).
* **LWU** (local weight update) — :meth:`Algorithm.apply_update`: load the
  aggregated gradient (already divided by the contributor count H) and
  take one optimizer step.

Determinism contract: given identical initial weights and an identical
sequence of ``apply_update`` calls, every replica ends with bit-identical
weights — the property the paper's *decentralized weight storage* relies
on ("since we initialize the same model weights among all workers, and
also broadcast the same aggregated gradients, the decentralized storage of
weights are always agreed over iterations").
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn.fastpath import compute_fastpath_enabled
from ..nn.layers import Module
from ..nn.serialize import (
    flatten_grads,
    flatten_grads_into,
    flatten_params,
    load_flat_grads,
    load_flat_params,
)

__all__ = ["Algorithm"]


class Algorithm:
    """Base class for DQN / A2C / PPO / DDPG."""

    #: Human-readable name used by profiles and reports.
    name: str = "base"

    def __init__(self, container: Module) -> None:
        #: Single module holding *all* learnable parameters (policy, value,
        #: critics, ...) so one flat vector covers the whole model.
        self.container = container
        self.updates_applied = 0
        self.episode_rewards: List[float] = []
        self._current_episode_reward = 0.0
        #: Compute-path selection, sampled at construction (DESIGN.md §13).
        self._fast_compute = compute_fastpath_enabled()
        self._flat_plan = None  # lazily built; list attr, not cloned by resync

    # ------------------------------------------------------------------
    # The three-stage interface
    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        """Run one LGC iteration and return the flat float32 gradient."""
        raise NotImplementedError

    def apply_update(self, mean_gradient: np.ndarray) -> None:
        """Apply one aggregated (already averaged) gradient — the LWU stage.

        Fast path: cast the wire vector to float64 once and hand each
        optimizer its flat slice (``step_flat``) — no per-parameter
        ``.grad`` scatter, no per-layer intermediates.  Bit-identical to
        the legacy scatter+step because the float32→float64 cast is
        exact per element and the flat optimizer math mirrors the
        per-parameter expressions (see ``repro.nn.optim``).
        """
        plan = self._flat_update_plan() if self._fast_compute else None
        if plan is not None:
            flat = np.asarray(mean_gradient).astype(np.float64)
            for optimizer, start, stop in plan:
                optimizer.step_flat(flat[start:stop])
        else:
            load_flat_grads(self.container, np.asarray(mean_gradient))
            self._optimizer_step()
        self.updates_applied += 1
        self._after_update()

    def _flat_update_plan(self):
        """(optimizer, start, stop) covering the flat vector, or None.

        Collects this algorithm's optimizers in attribute order and
        checks that, concatenated, they cover ``container.parameters()``
        exactly (same objects, same order).  All four built-in
        algorithms satisfy this; a subclass that doesn't silently keeps
        the legacy scatter path.
        """
        if self._flat_plan is None:
            self._flat_plan = self._build_flat_plan() or ()
        return self._flat_plan or None

    def _build_flat_plan(self):
        from ..nn.optim import Optimizer

        optimizers = [v for v in vars(self).values() if isinstance(v, Optimizer)]
        if not optimizers:
            return None
        params = self.container.parameters()
        offsets = np.concatenate([[0], np.cumsum([p.size for p in params])])
        position = {id(p): i for i, p in enumerate(params)}
        plan = []
        cursor = 0
        for opt in optimizers:
            indices = [position.get(id(p)) for p in opt.params]
            if indices != list(range(cursor, cursor + len(indices))):
                return None
            plan.append(
                (opt, int(offsets[cursor]), int(offsets[cursor + len(indices)]))
            )
            cursor += len(indices)
        if cursor != len(params):
            return None
        return plan

    def _optimizer_step(self) -> None:
        """Step the optimizer(s).  Subclasses with several nets override."""
        raise NotImplementedError

    def _after_update(self) -> None:
        """Hook: target-network syncs etc.  Default: nothing."""

    # ------------------------------------------------------------------
    # Weight exchange (parameter-server pulls)
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return self.container.n_parameters

    @property
    def wire_bytes(self) -> int:
        """Bytes of one gradient/weight vector on the wire (float32)."""
        return self.n_params * 4

    def get_weights(self) -> np.ndarray:
        return flatten_params(self.container)

    def set_weights(self, vector: np.ndarray) -> None:
        load_flat_params(self.container, np.asarray(vector))
        self._after_set_weights()

    def _after_set_weights(self) -> None:
        """Hook for refreshing derived state after a weight overwrite."""

    def on_weights_pulled(self, server_updates: int) -> None:
        """Hook for async parameter-server workers after a weight pull.

        ``server_updates`` is the server's update counter; algorithms with
        derived state (ε schedules, target networks) refresh it here so
        replicas stay in step with the server's training progress.
        """
        self.updates_applied = server_updates

    def gradient_vector(self) -> np.ndarray:
        if self._fast_compute:
            return flatten_grads_into(self.container)
        return flatten_grads(self.container)

    # ------------------------------------------------------------------
    # Reward accounting
    # ------------------------------------------------------------------
    def _track_reward(self, reward: float, done: bool) -> None:
        self._current_episode_reward += reward
        if done:
            self.episode_rewards.append(self._current_episode_reward)
            self._current_episode_reward = 0.0

    def _track_rewards_batch(self, rewards: np.ndarray, dones: np.ndarray) -> None:
        """Per-env episode accounting for vectorized rollouts (env order)."""
        acc = getattr(self, "_episode_acc", None)
        if acc is None or len(acc) != len(rewards):
            acc = self._episode_acc = np.zeros(len(rewards))
        acc += rewards
        for i in np.nonzero(dones)[0]:
            self.episode_rewards.append(float(acc[i]))
            acc[i] = 0.0

    def final_average_reward(self, last: int = 10) -> float:
        """The paper's metric: episode reward averaged over the last 10
        completed episodes (§5.2)."""
        if not self.episode_rewards:
            return float("-inf")
        window = self.episode_rewards[-last:]
        return float(np.mean(window))

"""The uniform interface distributed training drives RL algorithms through.

The paper's three-stage decomposition of a training iteration (§4.1) maps
directly onto this interface:

* **LGC** (local gradient computing) — :meth:`Algorithm.compute_gradient`:
  interact with the environment, collect trajectory/replay data, run
  forward+backward, and return the flat float32 gradient vector that goes
  on the wire.
* **GA** (gradient aggregation) — performed *outside* the algorithm by a
  strategy in :mod:`repro.distributed` (parameter server, Ring-AllReduce,
  or the iSwitch accelerator).
* **LWU** (local weight update) — :meth:`Algorithm.apply_update`: load the
  aggregated gradient (already divided by the contributor count H) and
  take one optimizer step.

Determinism contract: given identical initial weights and an identical
sequence of ``apply_update`` calls, every replica ends with bit-identical
weights — the property the paper's *decentralized weight storage* relies
on ("since we initialize the same model weights among all workers, and
also broadcast the same aggregated gradients, the decentralized storage of
weights are always agreed over iterations").
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..nn.layers import Module
from ..nn.serialize import flatten_grads, flatten_params, load_flat_grads, load_flat_params

__all__ = ["Algorithm"]


class Algorithm:
    """Base class for DQN / A2C / PPO / DDPG."""

    #: Human-readable name used by profiles and reports.
    name: str = "base"

    def __init__(self, container: Module) -> None:
        #: Single module holding *all* learnable parameters (policy, value,
        #: critics, ...) so one flat vector covers the whole model.
        self.container = container
        self.updates_applied = 0
        self.episode_rewards: List[float] = []
        self._current_episode_reward = 0.0

    # ------------------------------------------------------------------
    # The three-stage interface
    # ------------------------------------------------------------------
    def compute_gradient(self) -> np.ndarray:
        """Run one LGC iteration and return the flat float32 gradient."""
        raise NotImplementedError

    def apply_update(self, mean_gradient: np.ndarray) -> None:
        """Apply one aggregated (already averaged) gradient — the LWU stage."""
        load_flat_grads(self.container, np.asarray(mean_gradient))
        self._optimizer_step()
        self.updates_applied += 1
        self._after_update()

    def _optimizer_step(self) -> None:
        """Step the optimizer(s).  Subclasses with several nets override."""
        raise NotImplementedError

    def _after_update(self) -> None:
        """Hook: target-network syncs etc.  Default: nothing."""

    # ------------------------------------------------------------------
    # Weight exchange (parameter-server pulls)
    # ------------------------------------------------------------------
    @property
    def n_params(self) -> int:
        return self.container.n_parameters

    @property
    def wire_bytes(self) -> int:
        """Bytes of one gradient/weight vector on the wire (float32)."""
        return self.n_params * 4

    def get_weights(self) -> np.ndarray:
        return flatten_params(self.container)

    def set_weights(self, vector: np.ndarray) -> None:
        load_flat_params(self.container, np.asarray(vector))
        self._after_set_weights()

    def _after_set_weights(self) -> None:
        """Hook for refreshing derived state after a weight overwrite."""

    def on_weights_pulled(self, server_updates: int) -> None:
        """Hook for async parameter-server workers after a weight pull.

        ``server_updates`` is the server's update counter; algorithms with
        derived state (ε schedules, target networks) refresh it here so
        replicas stay in step with the server's training progress.
        """
        self.updates_applied = server_updates

    def gradient_vector(self) -> np.ndarray:
        return flatten_grads(self.container)

    # ------------------------------------------------------------------
    # Reward accounting
    # ------------------------------------------------------------------
    def _track_reward(self, reward: float, done: bool) -> None:
        self._current_episode_reward += reward
        if done:
            self.episode_rewards.append(self._current_episode_reward)
            self._current_episode_reward = 0.0

    def final_average_reward(self, last: int = 10) -> float:
        """The paper's metric: episode reward averaged over the last 10
        completed episodes (§5.2)."""
        if not self.episode_rewards:
            return float("-inf")
        window = self.episode_rewards[-last:]
        return float(np.mean(window))

"""Labelled metric instruments: counters, gauges, and histograms.

The registry follows the Prometheus data model — a metric is identified by
a *name* plus a set of key=value *labels*, e.g.
``switch.packets_dropped{switch="tor0"}`` — but stays dependency-free and
cheap enough to live on the simulator hot path.  Instruments are created
lazily on first use and accumulate in plain Python attributes; reading
them back (:meth:`MetricsRegistry.collect`) is only done when a snapshot
or export is requested.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets, log-spaced for durations in seconds
#: (simulated latencies span ~1 µs switch hops to whole-second iterations).
DEFAULT_BUCKETS = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    100.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical, hashable form of a label set (sorted, stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, backlogs)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "max_value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        #: High-water mark since creation, for free peak statistics.
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.max_value:
            self.max_value = self.value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """A cumulative histogram over fixed upper-bound buckets.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; one extra
    overflow bucket (``+Inf``) catches the rest, Prometheus-style.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} has duplicate buckets: {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (Prometheus ``le`` semantics)."""
        out, running = [], 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """Get-or-create store for all instruments of one telemetry hub."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        self._kinds: Dict[str, str] = {}

    def _get(self, factory, kind: str, name: str, labels: Dict[str, object]):
        known = self._kinds.setdefault(name, kind)
        if known != kind:
            raise TypeError(
                f"metric {name!r} already registered as a {known}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        factory = lambda n, l: Histogram(n, l, buckets or DEFAULT_BUCKETS)  # noqa: E731
        return self._get(factory, "histogram", name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> List[object]:
        """All instruments, ordered by (name, labels) for stable output."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def as_dicts(self) -> List[dict]:
        """JSON-ready description of every instrument."""
        out = []
        for metric in self.collect():
            entry = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                entry["buckets"] = [
                    {"le": bound, "count": cumulative}
                    for bound, cumulative in zip(
                        metric.bounds, metric.cumulative_counts()
                    )
                ]
                entry["buckets"].append(
                    {"le": "+Inf", "count": metric.count}
                )
            elif isinstance(metric, Gauge):
                entry["value"] = metric.value
                entry["max"] = metric.max_value
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

"""Exporters: JSON snapshot, Chrome trace-event format, Prometheus text.

* :func:`to_json` / :func:`write_json` — the full snapshot (metrics +
  spans + events) as one JSON document, for programmatic post-processing.
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by ``chrome://tracing`` and https://ui.perfetto.dev:
  spans become complete (``"ph": "X"``) events, instants become
  ``"ph": "i"``, and each track gets a named thread lane.  Timestamps are
  microseconds of *simulated* time, sorted ascending.
* :func:`to_prometheus` / :func:`write_prometheus` — a Prometheus
  text-format dump (``# TYPE`` headers, ``{label="value"}`` series,
  ``_bucket``/``_sum``/``_count`` histogram series).
"""

from __future__ import annotations

import json
from typing import Dict, List

from .hub import TelemetrySnapshot

__all__ = [
    "to_json",
    "write_json",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus",
    "write_prometheus",
]

_SECONDS_TO_US = 1e6


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def to_json(snapshot: TelemetrySnapshot, indent: int = 2) -> str:
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)


def write_json(snapshot: TelemetrySnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(snapshot))
        fh.write("\n")


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _track_ids(snapshot: TelemetrySnapshot) -> Dict[str, int]:
    """Stable track-name -> tid mapping (sorted for determinism)."""
    names = {s.track for s in snapshot.spans} | {e.track for e in snapshot.events}
    return {name: tid for tid, name in enumerate(sorted(names))}


def to_chrome_trace(snapshot: TelemetrySnapshot) -> dict:
    """Build a ``{"traceEvents": [...]}`` document; ``ts`` is monotone."""
    tracks = _track_ids(snapshot)
    events: List[dict] = []
    for span in snapshot.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.cat or "span",
                "ph": "X",
                "ts": span.start * _SECONDS_TO_US,
                "dur": span.duration * _SECONDS_TO_US,
                "pid": 0,
                "tid": tracks[span.track],
                "args": span.args,
            }
        )
    for instant in snapshot.events:
        events.append(
            {
                "name": instant.name,
                "cat": instant.cat or "event",
                "ph": "i",
                "s": "t",
                "ts": instant.ts * _SECONDS_TO_US,
                "pid": 0,
                "tid": tracks[instant.track],
                "args": instant.args,
            }
        )
    events.sort(key=lambda e: (e["ts"], e["tid"], e["name"]))
    # Thread-name metadata renders each track as a labelled lane.
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": track or "(run)"},
        }
        for track, tid in sorted(tracks.items(), key=lambda kv: kv[1])
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": dict(snapshot.meta),
    }


def write_chrome_trace(snapshot: TelemetrySnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(snapshot), fh)
        fh.write("\n")


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    """``link.tx_bytes`` -> ``repro_link_tx_bytes``."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(snapshot: TelemetrySnapshot) -> str:
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for metric in snapshot.metrics:
        name = _sanitize(metric["name"])
        kind = metric["kind"]
        if seen_types.get(name) != kind:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        labels = metric["labels"]
        if kind == "histogram":
            for bucket in metric["buckets"]:
                le = bucket["le"]
                le_str = "+Inf" if le == "+Inf" else repr(float(le))
                le_label = 'le="%s"' % le_str
                lines.append(
                    f"{name}_bucket"
                    f"{_format_labels(labels, le_label)} "
                    f"{bucket['count']}"
                )
            lines.append(f"{name}_sum{_format_labels(labels)} {metric['sum']}")
            lines.append(f"{name}_count{_format_labels(labels)} {metric['count']}")
        else:
            lines.append(f"{name}{_format_labels(labels)} {metric['value']}")
    return "\n".join(lines) + "\n"


def write_prometheus(snapshot: TelemetrySnapshot, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus(snapshot))

"""Unified observability layer: metrics, spans/events, and exporters.

The paper's claims are all *measurements* — where iteration time goes
(Figure 4), how much traffic each strategy moves (Tables 4/5), how many
hops a gradient travels (§5) — so the reproduction carries a first-class
telemetry substrate:

* :class:`MetricsRegistry` — labelled counters, gauges, and histograms
  (``switch.packets_dropped{switch="tor0"}``);
* :class:`SpanTracer` — structured spans and instant events stamped with
  *simulated* time;
* :class:`TelemetryHub` — one per run, threaded to every component via
  ``Simulator.telemetry``; disabled (:data:`NULL_HUB`) by default so the
  hot paths pay only a branch;
* exporters — JSON snapshot, Chrome ``chrome://tracing`` trace, and a
  Prometheus-style text dump.

Enable per run via :class:`repro.distributed.ExperimentConfig` (on by
default there) or the ``repro train --trace-out/--metrics-out`` CLI flags.
"""

from .exporters import (
    to_chrome_trace,
    to_json,
    to_prometheus,
    write_chrome_trace,
    write_json,
    write_prometheus,
)
from .hub import NULL_HUB, TelemetryHub, TelemetrySnapshot
from .metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span, SpanTracer, TraceEvent

__all__ = [
    "TelemetryHub",
    "TelemetrySnapshot",
    "NULL_HUB",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "SpanTracer",
    "Span",
    "TraceEvent",
    "to_json",
    "write_json",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_prometheus",
    "write_prometheus",
]

"""The per-run telemetry hub: one registry + one tracer + collectors.

Every simulated component reaches telemetry through its simulator
(``self.sim.telemetry``), which defaults to the shared :data:`NULL_HUB` —
a disabled hub whose mutators return immediately.  Hot paths therefore
pay one attribute load and one branch when telemetry is off, which is
what keeps the "instrumented everywhere" design essentially free by
default.

*Collectors* are callbacks that run at :meth:`TelemetryHub.snapshot`
time; they scrape component state that is cheaper to read once at the end
(cumulative link byte counts, accelerator engine stats) than to mirror
on every packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .metrics import Gauge, Histogram, MetricsRegistry
from .tracing import Span, SpanTracer, TraceEvent

__all__ = ["TelemetryHub", "TelemetrySnapshot", "NULL_HUB"]


@dataclass
class TelemetrySnapshot:
    """A frozen, export-ready view of one run's telemetry."""

    metrics: List[dict] = field(default_factory=list)
    spans: List[Span] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    clock_end: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    # -- convenience accessors -----------------------------------------
    def _find(self, name: str, labels: Optional[dict] = None) -> List[dict]:
        wanted = {k: str(v) for k, v in (labels or {}).items()}
        return [
            m
            for m in self.metrics
            if m["name"] == name
            and all(m["labels"].get(k) == v for k, v in wanted.items())
        ]

    def value(self, name: str, **labels) -> float:
        """Sum of a counter/gauge across all label sets matching ``labels``."""
        return sum(m.get("value", 0.0) for m in self._find(name, labels))

    def has_metric(self, name: str, **labels) -> bool:
        return bool(self._find(name, labels))

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def events_named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def to_dict(self) -> dict:
        """JSON-ready plain-dict form (the JSON exporter's payload)."""
        return {
            "clock_end": self.clock_end,
            "meta": dict(self.meta),
            "metrics": self.metrics,
            "spans": [
                {
                    "name": s.name,
                    "cat": s.cat,
                    "track": s.track,
                    "start": s.start,
                    "end": s.end,
                    "args": s.args,
                }
                for s in self.spans
            ],
            "events": [
                {
                    "name": e.name,
                    "cat": e.cat,
                    "track": e.track,
                    "ts": e.ts,
                    "args": e.args,
                }
                for e in self.events
            ],
        }


class TelemetryHub:
    """Aggregation point for one run's metrics, spans, and events."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        max_trace_records: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(self.now, max_records=max_trace_records)
        self._collectors: List[Callable[["TelemetryHub"], None]] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the hub at a time source (the simulator binds itself)."""
        self._clock = clock

    # ------------------------------------------------------------------
    # Metric conveniences (no-ops while disabled)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        if self.enabled:
            self.metrics.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.histogram(name, **labels).observe(value)

    # ------------------------------------------------------------------
    # Tracing conveniences (no-ops while disabled)
    # ------------------------------------------------------------------
    def begin_span(self, name: str, cat: str = "", track: str = "", **args) -> int:
        if not self.enabled:
            return -1
        return self.tracer.begin(name, cat=cat, track=track, **args)

    def end_span(self, handle: int, **args) -> None:
        if self.enabled and handle >= 0:
            self.tracer.end(handle, **args)

    def span_at(
        self, name: str, start: float, end: float, cat: str = "",
        track: str = "", **args,
    ) -> None:
        if self.enabled:
            self.tracer.span_at(name, start, end, cat=cat, track=track, **args)

    def event(self, name: str, cat: str = "", track: str = "", **args) -> None:
        if self.enabled:
            self.tracer.event(name, cat=cat, track=track, **args)

    # ------------------------------------------------------------------
    # Snapshotting
    # ------------------------------------------------------------------
    def add_collector(self, fn: Callable[["TelemetryHub"], None]) -> None:
        """Register a scrape callback run once per :meth:`snapshot`."""
        self._collectors.append(fn)

    def snapshot(self, meta: Optional[dict] = None) -> TelemetrySnapshot:
        """Run collectors and freeze the current state for export.

        ``meta`` entries are merged into the snapshot's metadata block
        (experiment identity: strategy, workload, seed, ...).
        """
        for collector in self._collectors:
            collector(self)
        histograms = sum(
            1 for m in self.metrics.collect() if isinstance(m, Histogram)
        )
        gauges = sum(1 for m in self.metrics.collect() if isinstance(m, Gauge))
        merged = {
            "enabled": self.enabled,
            "n_metrics": len(self.metrics),
            "n_gauges": gauges,
            "n_histograms": histograms,
            "n_spans": len(self.tracer.spans),
            "n_events": len(self.tracer.events),
            "open_spans": self.tracer.open_spans,
            "trace_records_dropped": self.tracer.dropped,
        }
        if meta:
            merged.update(meta)
        return TelemetrySnapshot(
            metrics=self.metrics.as_dicts(),
            spans=list(self.tracer.spans),
            events=list(self.tracer.events),
            clock_end=self.now(),
            meta=merged,
        )


#: The shared disabled hub every simulator starts with.  All mutators
#: check ``enabled`` first, so this instance never accumulates state.
NULL_HUB = TelemetryHub(enabled=False)

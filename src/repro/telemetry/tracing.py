"""Structured spans and instant events over the simulated clock.

A *span* is a named interval ``[start, end]`` on one *track* (a device,
worker, or strategy name — it becomes the thread lane in the Chrome trace
viewer); an *event* is a single instant.  Both carry a category and a
small free-form ``args`` dict.  Timestamps come from whatever clock the
owning :class:`~repro.telemetry.hub.TelemetryHub` is bound to — for the
simulator that is :attr:`Simulator.now`, so traces show *simulated* time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

__all__ = ["Span", "TraceEvent", "SpanTracer"]


@dataclass
class Span:
    """A finished named interval on a track."""

    name: str
    start: float
    end: float
    cat: str = ""
    track: str = ""
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceEvent:
    """A single instant on a track."""

    name: str
    ts: float
    cat: str = ""
    track: str = ""
    args: Dict[str, object] = field(default_factory=dict)


class SpanTracer:
    """Collects spans and events; bounded so long runs cannot OOM."""

    def __init__(
        self,
        clock: Callable[[], float],
        max_records: int = 200_000,
    ) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        self.clock = clock
        self.max_records = max_records
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        #: Records discarded after the buffer filled (visible in snapshots
        #: so truncation is never silent).
        self.dropped = 0
        self._open: Dict[int, Span] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def _room(self) -> bool:
        if len(self.spans) + len(self.events) >= self.max_records:
            self.dropped += 1
            return False
        return True

    def begin(self, name: str, cat: str = "", track: str = "", **args) -> int:
        """Open a span now; returns a handle for :meth:`end`."""
        self._next_id += 1
        self._open[self._next_id] = Span(
            name=name,
            start=self.clock(),
            end=self.clock(),
            cat=cat,
            track=track,
            args=dict(args),
        )
        return self._next_id

    def end(self, handle: int, **args) -> None:
        """Close an open span at the current clock."""
        span = self._open.pop(handle, None)
        if span is None:
            return  # already closed, or begun while tracing was disabled
        span.end = self.clock()
        if args:
            span.args.update(args)
        if self._room():
            self.spans.append(span)

    def span_at(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "",
        track: str = "",
        **args,
    ) -> None:
        """Record a complete span whose endpoints are already known."""
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts: {end} < {start}")
        if self._room():
            self.spans.append(
                Span(name=name, start=start, end=end, cat=cat, track=track,
                     args=dict(args))
            )

    def event(self, name: str, cat: str = "", track: str = "", **args) -> None:
        """Record an instant event at the current clock."""
        if self._room():
            self.events.append(
                TraceEvent(name=name, ts=self.clock(), cat=cat, track=track,
                           args=dict(args))
            )

    @property
    def open_spans(self) -> int:
        return len(self._open)

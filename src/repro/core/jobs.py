"""Multi-job support: several training jobs sharing one iSwitch.

The paper positions iSwitch as "an extension to the programmable switch
[that] does not affect its regular network functions"; a production switch
would also host *several* training jobs at once (different tenants,
different models).  :class:`JobTable` gives each job its own aggregation
engine, membership set, and threshold, keyed by a 16-bit job id carried in
the data/control payloads.

Job 0 always exists (the single-job default), so all single-tenant code
paths work unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .accelerator import AcceleratorTiming, AggregationEngine
from .control_plane import MembershipTable

__all__ = ["JobState", "JobTable", "DEFAULT_JOB"]

DEFAULT_JOB = 0
MAX_JOB_ID = 0xFFFF


class JobState:
    """Per-job switch state: engine + members."""

    def __init__(
        self,
        job_id: int,
        dedup: bool = False,
        timing: Optional[AcceleratorTiming] = None,
        canonical: bool = False,
        codec=None,
    ) -> None:
        if not 0 <= job_id <= MAX_JOB_ID:
            raise ValueError(f"job id must fit 16 bits, got {job_id}")
        self.job_id = job_id
        self.engine = AggregationEngine(
            threshold=1,
            dedup=dedup,
            timing=timing,
            canonical_order=canonical,
            codec=codec,
        )
        self.members = MembershipTable()


class JobTable:
    """All jobs registered on one switch, created on demand."""

    def __init__(
        self,
        dedup: bool = False,
        timing: Optional[AcceleratorTiming] = None,
        max_jobs: int = 64,
        canonical: bool = False,
        codec=None,
    ) -> None:
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        self._dedup = dedup
        self._timing = timing
        self._canonical = canonical
        self._codec = codec
        self.max_jobs = max_jobs
        self._jobs: Dict[int, JobState] = {}
        self.get(DEFAULT_JOB)  # job 0 always exists

    def get(self, job_id: int) -> JobState:
        """Fetch (or lazily create) a job's state."""
        state = self._jobs.get(job_id)
        if state is None:
            if len(self._jobs) >= self.max_jobs:
                raise RuntimeError(
                    f"switch job table full ({self.max_jobs} jobs); "
                    "Leave an existing job first"
                )
            state = JobState(
                job_id,
                dedup=self._dedup,
                timing=self._timing,
                canonical=self._canonical,
                codec=self._codec,
            )
            self._jobs[job_id] = state
        return state

    def register(self, job_id: int) -> JobState:
        """Create a job's state, rejecting duplicates.

        Unlike :meth:`get` (lazy creation for the datapath), ``register``
        is the control-plane spelling: submitting the same job id twice is
        a tenant error, not an idempotent lookup.
        """
        if job_id in self._jobs:
            raise ValueError(
                f"job {job_id} is already registered on this switch"
            )
        return self.get(job_id)

    def peek(self, job_id: int) -> Optional[JobState]:
        """Fetch without creating."""
        return self._jobs.get(job_id)

    def remove(self, job_id: int) -> bool:
        """Drop a job's state entirely (its last member left).

        Job 0 is never removed — it is the default-job anchor.
        """
        if job_id == DEFAULT_JOB:
            return False
        return self._jobs.pop(job_id, None) is not None

    def __iter__(self) -> Iterator[JobState]:
        return iter(self._jobs.values())

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._jobs

"""The iSwitch control plane (paper §3.3, Figure 9).

The control plane keeps a lightweight **membership table** — one row per
worker or switch participating in the training job, recording its unique
ID, address, UDP port, type, and parent in the aggregation hierarchy —
and manages the accelerator (initialization, ``SetH``, ``Reset``).

Rows are added/removed via ``Join``/``Leave`` control messages (or
programmatically by the topology orchestrator, which models an operator
pre-configuring the switch).  The data plane consults the table to learn
which attached members should receive result broadcasts and which parent
switch partial aggregates flow to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["MemberType", "MemberEntry", "MembershipTable"]


class MemberType:
    """Row types in the membership table (Figure 9)."""

    WORKER = "worker"
    SWITCH = "switch"


@dataclass
class MemberEntry:
    """One row of the membership table.

    ``address`` plays the role of the paper's IP column (the simulator
    addresses devices by name), ``parent`` is the ID of the switch this
    member sends contributions to (``None`` for the root switch).
    """

    member_id: int
    address: str
    port: int
    member_type: str
    parent: Optional[int] = None


class MembershipTable:
    """The Join/Leave-maintained membership state of one switch."""

    def __init__(self) -> None:
        self._by_id: Dict[int, MemberEntry] = {}
        self._by_address: Dict[str, MemberEntry] = {}
        self._next_id = 0

    def join(
        self,
        address: str,
        port: int,
        member_type: str = MemberType.WORKER,
        parent: Optional[int] = None,
    ) -> MemberEntry:
        """Add a member; idempotent on address (re-join returns the row)."""
        existing = self._by_address.get(address)
        if existing is not None:
            return existing
        if member_type not in (MemberType.WORKER, MemberType.SWITCH):
            raise ValueError(f"unknown member type: {member_type!r}")
        entry = MemberEntry(
            member_id=self._next_id,
            address=address,
            port=port,
            member_type=member_type,
            parent=parent,
        )
        self._next_id += 1
        self._by_id[entry.member_id] = entry
        self._by_address[address] = entry
        return entry

    def leave(self, address: str) -> bool:
        """Remove a member by address; returns whether it was present."""
        entry = self._by_address.pop(address, None)
        if entry is None:
            return False
        del self._by_id[entry.member_id]
        return True

    def get(self, address: str) -> Optional[MemberEntry]:
        return self._by_address.get(address)

    def children_of(self, parent_id: Optional[int]) -> List[MemberEntry]:
        """Members whose parent column equals ``parent_id``."""
        return [e for e in self._by_id.values() if e.parent == parent_id]

    @property
    def workers(self) -> List[MemberEntry]:
        return [
            e for e in self._by_id.values() if e.member_type == MemberType.WORKER
        ]

    @property
    def addresses(self) -> List[str]:
        """All member addresses, in join order."""
        return [self._by_id[i].address for i in sorted(self._by_id)]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, address: str) -> bool:
        return address in self._by_address

"""The iSwitch wire protocol (paper §3.2, Figure 5, Table 2).

Packets belonging to in-switch training are tagged through the IP **ToS**
byte.  Three reserved values are used:

* :data:`TOS_CONTROL` — control messages (Figure 5a): a 1-byte ``Action``
  code plus an optional ``Value`` payload.
* :data:`TOS_DATA_UP` — gradient contributions flowing worker → switch →
  (optionally) parent switch (Figure 5b): an 8-byte ``Seg`` index followed
  by raw float32 gradient data.
* :data:`TOS_DATA_DOWN` — aggregated results broadcast switch → workers.
  The paper distinguishes directions implicitly by port; an explicit second
  ToS value keeps the simulated data plane honest without changing hop
  counts or packet sizes (both directions carry the same 8-byte ``Seg``
  header).

Gradient vectors are segmented for transmission by a :class:`SegmentPlan`:
each data frame carries ``Seg`` (8 bytes) + up to 1464 bytes = 366 float32
gradient elements.  ``Seg`` numbers are globally unique across aggregation
rounds (``seg = round * segments_per_vector + offset``) so the accelerator
never confuses two rounds' worth of the same vector offset.
"""

from __future__ import annotations

import enum
import math
import struct
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..netsim.packets import MAX_UDP_PAYLOAD, Packet

__all__ = [
    "TOS_CONTROL",
    "TOS_DATA_UP",
    "TOS_DATA_DOWN",
    "TOS_NUMERICS_MASK",
    "ISWITCH_TOS_VALUES",
    "ISWITCH_UDP_PORT",
    "SEG_HEADER_BYTES",
    "SEG_PAYLOAD_BYTES",
    "FLOATS_PER_SEGMENT",
    "FLOAT_BYTES",
    "MAX_JOB_ID",
    "MAX_SEG_INDEX",
    "Action",
    "ProtocolError",
    "JoinInfo",
    "ControlMessage",
    "DataSegment",
    "SegmentPlan",
    "encode_control",
    "encode_data",
    "decode_frame",
    "make_control_packet",
    "make_data_packet",
]

TOS_CONTROL = 0x04
TOS_DATA_UP = 0x08
TOS_DATA_DOWN = 0x0C
#: Low two bits of a *data* ToS byte: the numerics tag selecting the
#: gradient codec (0 = fp32, see PROTOCOL.md §8).  The three base values
#: above all have these bits clear, so untagged fp32 frames are
#: byte-identical to the pre-codec wire format.
TOS_NUMERICS_MASK = 0x03
ISWITCH_TOS_VALUES = frozenset({TOS_CONTROL, TOS_DATA_UP, TOS_DATA_DOWN})

#: The reserved UDP port iSwitch traffic uses (membership table, Figure 9).
ISWITCH_UDP_PORT = 9999

SEG_HEADER_BYTES = 8  # the 8-byte Seg field (Figure 5b)
FLOAT_BYTES = 4  # "raw float-point format", fp32
SEG_PAYLOAD_BYTES = MAX_UDP_PAYLOAD - SEG_HEADER_BYTES  # 1464 B
FLOATS_PER_SEGMENT = SEG_PAYLOAD_BYTES // FLOAT_BYTES  # 366 elements

#: Job ids ride in reserved high bits of existing fields (see
#: :class:`ControlMessage`); 7 bits keep every encoding uniform.
MAX_JOB_ID = 127
#: Seg indices share their 8-byte field with the job id: low 56 bits.
MAX_SEG_INDEX = (1 << 56) - 1


class Action(enum.IntEnum):
    """Control-message action codes (Table 2)."""

    JOIN = 1  #: Join the training job
    LEAVE = 2  #: Leave the training job
    RESET = 3  #: Clear accelerator buffers/counters on the switch
    SETH = 4  #: Set the aggregation threshold H on the switch
    FBCAST = 5  #: Force broadcasting a partially aggregated segment
    HELP = 6  #: Request a lost data packet for a worker
    HALT = 7  #: Suspend the training job on all workers
    ACK = 8  #: Confirm the success/failure of actions


class ProtocolError(ValueError):
    """A frame cannot be encoded to / decoded from the wire format.

    Raised for malformed, truncated, or out-of-range frames; decoding
    arbitrary bytes must raise this (or return a valid message), never
    crash with an unrelated exception.
    """


@dataclass(slots=True)
class JoinInfo:
    """The Value payload of a JOIN control message (16 bytes on the wire).

    Carries the metadata a switch needs to admit a member: what kind of
    node is joining, its rank (used as the canonical sender identity in
    live mode), and the gradient geometry it will stream.
    """

    member_type: str = "worker"  #: ``"worker"`` or ``"switch"``
    rank: int = 0
    n_elements: int = 0
    n_chunks: int = 0


@dataclass(slots=True)
class ControlMessage:
    """Payload of a control packet: the Action byte plus optional Value.

    ``job`` selects which training job the message addresses when one
    switch hosts several (see :mod:`repro.core.jobs`); it is encoded in
    the Value field's reserved bits, so packet sizes are unchanged.
    """

    action: Action
    value: Any = None
    job: int = 0

    @property
    def payload_size(self) -> int:
        """Action is 1 byte; Value sizes are modelled per action."""
        if self.value is None:
            return 1
        if self.action == Action.SETH:
            return 1 + 4  # H as a 32-bit integer
        if self.action in (Action.FBCAST, Action.HELP):
            return 1 + SEG_HEADER_BYTES  # the Seg index in question
        if self.action == Action.JOIN:
            return 1 + 16  # model meta-data (size, segment count, ...)
        if self.action == Action.ACK:
            return 1 + 1  # success/failure flag
        return 1 + 8


@dataclass(slots=True)
class DataSegment:
    """Payload of a data packet: the Seg index plus gradient values.

    ``data`` is a float32 array.  ``sender`` and ``commit_id`` identify the
    contribution for optional duplicate suppression during loss recovery
    (the real accelerator is a pure counter; see
    :class:`repro.core.accelerator.AggregationEngine`).
    """

    seg: int
    data: np.ndarray
    sender: str = ""
    commit_id: int = 0
    #: Training-job id for multi-tenant switches; carried in the high
    #: bits of the 8-byte Seg field, so packet sizes are unchanged.
    job: int = 0
    #: Wire footprint stamped by :func:`make_data_packet` (UDP payload
    #: bytes / Ethernet frames), so switches emit results with exactly the
    #: footprint the contributions had — including any wire multiplier.
    wire_payload: Optional[int] = None
    wire_frames: Optional[int] = None

    def __post_init__(self) -> None:
        if self.seg < 0:
            raise ValueError(f"Seg index must be >= 0, got {self.seg}")
        if not isinstance(self.data, np.ndarray):
            raise TypeError(
                f"DataSegment.data must be an ndarray, got {type(self.data).__name__}"
            )
        if self.data.dtype != np.float32:
            raise ValueError(
                f"DataSegment.data must be float32, got {self.data.dtype}; "
                "the wire codec would silently reinterpret other dtypes"
            )
        if self.data.ndim != 1:
            raise ValueError(
                f"DataSegment.data must be 1-D, got shape {self.data.shape}"
            )
        if not self.data.flags.c_contiguous:
            raise ValueError("DataSegment.data must be C-contiguous")

    @classmethod
    def trusted(
        cls,
        seg: int,
        data: np.ndarray,
        sender: str = "",
        commit_id: int = 0,
        job: int = 0,
        wire_payload: Optional[int] = None,
        wire_frames: Optional[int] = None,
    ) -> "DataSegment":
        """Validation-free constructor for arrays the caller already owns.

        The datapath creates one segment per chunk per round; every hot
        producer (plan splitting, engine completion, upstream forwarding)
        derives ``data`` from an array that went through ``__post_init__``
        once, so the float32/1-D/contiguity checks cannot newly fail.
        """
        s = object.__new__(cls)
        s.seg = seg
        s.data = data
        s.sender = sender
        s.commit_id = commit_id
        s.job = job
        s.wire_payload = wire_payload
        s.wire_frames = wire_frames
        return s


class SegmentPlan:
    """How one gradient vector of ``n_elements`` floats maps onto packets.

    ``frames_per_chunk`` groups consecutive frames into a single simulated
    packet *train* (see :class:`repro.netsim.packets.Packet`); semantics
    are unchanged because every worker uses the identical plan, so the
    aggregation unit is simply ``frames_per_chunk`` segments at once.

    ``wire_multiplier`` scales every packet's *wire* footprint (payload
    bytes and frame count) without touching the carried data.  The
    convergence experiments train small NumPy models but must move the
    paper's multi-megabyte vectors on the simulated network; a multiplier
    of k makes each chunk occupy exactly the bytes of k real chunks.
    """

    def __init__(
        self,
        n_elements: int,
        frames_per_chunk: int = 1,
        wire_multiplier: int = 1,
        bytes_per_element: int = FLOAT_BYTES,
        frame_overhead: int = 0,
    ) -> None:
        if n_elements < 1:
            raise ValueError(f"need at least one element, got {n_elements}")
        if frames_per_chunk < 1:
            raise ValueError(f"frames_per_chunk must be >= 1, got {frames_per_chunk}")
        if wire_multiplier < 1:
            raise ValueError(f"wire_multiplier must be >= 1, got {wire_multiplier}")
        if bytes_per_element < 1:
            raise ValueError(
                f"bytes_per_element must be >= 1, got {bytes_per_element}"
            )
        if not 0 <= frame_overhead <= SEG_PAYLOAD_BYTES - bytes_per_element:
            raise ValueError(
                f"frame_overhead must leave room for at least one element, "
                f"got {frame_overhead}"
            )
        self.n_elements = n_elements
        self.frames_per_chunk = frames_per_chunk
        self.wire_multiplier = wire_multiplier
        #: Wire width of one gradient element (4 = the paper's raw fp32;
        #: smaller values model compressed wires, see
        #: :mod:`repro.core.compression`).
        self.bytes_per_element = bytes_per_element
        #: Per-frame payload bytes spent before the first element (the
        #: scale/count words of compressed codecs, PROTOCOL.md §8).
        self.frame_overhead = frame_overhead
        self.elements_per_frame = (
            SEG_PAYLOAD_BYTES - frame_overhead
        ) // bytes_per_element
        self.n_frames = math.ceil(n_elements / self.elements_per_frame)
        self.n_chunks = math.ceil(self.n_frames / frames_per_chunk)
        self.elements_per_chunk = self.elements_per_frame * frames_per_chunk
        # Per-chunk geometry tables.  ``split``/``make_data_packet`` run once
        # per chunk per round on the hot path; all chunks but the last are
        # identical, so the ceil arithmetic is hoisted here.
        bounds = []
        frames = []
        for chunk in range(self.n_chunks):
            start = chunk * self.elements_per_chunk
            stop = min(start + self.elements_per_chunk, n_elements)
            bounds.append((start, stop))
            frames.append(math.ceil((stop - start) / self.elements_per_frame))
        self._chunk_bounds = bounds
        self._chunk_frames = frames
        # Per-chunk wire footprint (elements, UDP payload bytes, frames):
        # the values make_data_packet stamps on every outgoing chunk,
        # keyed by the chunk's expected element count so an off-plan
        # segment still falls back to explicit arithmetic.
        mult = wire_multiplier
        per_frame = SEG_HEADER_BYTES + frame_overhead
        self._wire_info = [
            (
                bounds[chunk][1] - bounds[chunk][0],
                mult
                * (
                    frames[chunk] * per_frame
                    + (bounds[chunk][1] - bounds[chunk][0]) * bytes_per_element
                ),
                frames[chunk] * mult,
            )
            for chunk in range(self.n_chunks)
        ]

    @property
    def wire_bytes(self) -> int:
        """Total UDP payload bytes for one full vector (headers excluded)."""
        return (
            self.n_frames * (SEG_HEADER_BYTES + self.frame_overhead)
            + self.n_elements * self.bytes_per_element
        )

    def chunk_bounds(self, chunk: int) -> tuple:
        """(start, stop) element indices of chunk ``chunk``."""
        if not 0 <= chunk < self.n_chunks:
            raise IndexError(f"chunk {chunk} out of range [0, {self.n_chunks})")
        return self._chunk_bounds[chunk]

    def chunk_frames(self, chunk: int) -> int:
        """Number of real Ethernet frames this chunk stands for."""
        if not 0 <= chunk < self.n_chunks:
            raise IndexError(f"chunk {chunk} out of range [0, {self.n_chunks})")
        return self._chunk_frames[chunk]

    def split(
        self,
        vector: np.ndarray,
        round_index: int,
        sender: str = "",
        commit_id: int = 0,
    ) -> List[DataSegment]:
        """Slice a gradient vector into per-chunk :class:`DataSegment`\\ s.

        Seg numbers are offset by ``round_index * n_chunks`` so they are
        globally unique across aggregation rounds.
        """
        if vector.shape != (self.n_elements,):
            raise ValueError(
                f"vector shape {vector.shape} != ({self.n_elements},)"
            )
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        base = round_index * self.n_chunks
        if vector.dtype != np.float32:
            vector = vector.astype(np.float32)
        else:
            vector = np.ascontiguousarray(vector)
        # Trusted construction: ``vector`` was just coerced to a contiguous
        # float32 array, so every slice satisfies the segment invariants.
        trusted = DataSegment.trusted
        return [
            trusted(
                base + chunk,
                vector[start:stop],
                sender=sender,
                commit_id=commit_id,
            )
            for chunk, (start, stop) in enumerate(self._chunk_bounds)
        ]

    def assemble(self, segments: Sequence[DataSegment]) -> np.ndarray:
        """Reassemble one round's segments into a full vector.

        Segments may arrive in any order; their round base is inferred from
        the smallest chunk offset present.  All ``n_chunks`` segments of
        the round must be present.
        """
        if len(segments) != self.n_chunks:
            raise ValueError(
                f"expected {self.n_chunks} segments, got {len(segments)}"
            )
        base = min(s.seg for s in segments)
        base -= base % self.n_chunks
        out = np.empty(self.n_elements, dtype=np.float32)
        seen = set()
        for seg in segments:
            chunk = seg.seg - base
            if not 0 <= chunk < self.n_chunks:
                raise ValueError(
                    f"segment {seg.seg} is not part of round base {base}"
                )
            if chunk in seen:
                raise ValueError(f"duplicate chunk {chunk} in round {base}")
            seen.add(chunk)
            start, stop = self.chunk_bounds(chunk)
            if seg.data.shape != (stop - start,):
                raise ValueError(
                    f"chunk {chunk} has {seg.data.shape[0]} elements, "
                    f"expected {stop - start}"
                )
            out[start:stop] = seg.data
        return out

    def round_of_seg(self, seg: int) -> int:
        """Which aggregation round a global Seg number belongs to."""
        return seg // self.n_chunks

    def chunk_of_seg(self, seg: int) -> int:
        """Chunk offset of a global Seg number within its round."""
        return seg % self.n_chunks


# ---------------------------------------------------------------------------
# Byte codec (docs/PROTOCOL.md §7)
# ---------------------------------------------------------------------------
#
# A wire frame is the 1-byte ToS tag followed by the UDP payload exactly as
# PROTOCOL.md lays it out.  On a real network the tag lives in the IP
# header's ToS byte, which portable UDP sockets can neither set per-packet
# nor read back; prefixing it keeps loopback frames self-describing while
# leaving every modelled payload byte identical.  All multi-byte fields are
# little-endian.

_MEMBER_CODES = {"worker": 1, "switch": 2}
_MEMBER_NAMES = {code: name for name, code in _MEMBER_CODES.items()}

#: JOIN Value layout: member code, rank, job, n_elements, n_chunks, reserved.
_JOIN_STRUCT = struct.Struct("<BBHIII")

_SETH_H_BITS = 24  # low bits of the 32-bit SETH Value; high 8 carry the job


def encode_control(message: ControlMessage) -> bytes:
    """Serialize a control message to its wire frame.

    The frame is exactly ``1 + message.payload_size`` bytes: the ToS tag
    plus the modelled Action/Value payload.  Raises :class:`ProtocolError`
    for values the layout cannot carry.
    """
    try:
        action = Action(message.action)
    except ValueError as exc:
        raise ProtocolError(f"unknown action {message.action!r}") from exc
    job = message.job
    if not isinstance(job, int) or not 0 <= job <= MAX_JOB_ID:
        raise ProtocolError(f"job id must be in [0, {MAX_JOB_ID}], got {job!r}")
    head = bytes((TOS_CONTROL, action))
    value = message.value
    if value is None:
        if job:
            raise ProtocolError(
                f"{action.name} without a Value has no field to carry job {job}"
            )
        return head
    if action == Action.JOIN:
        if not isinstance(value, JoinInfo):
            raise ProtocolError(
                f"JOIN Value must be a JoinInfo, got {type(value).__name__}"
            )
        code = _MEMBER_CODES.get(value.member_type)
        if code is None:
            raise ProtocolError(f"unknown member type {value.member_type!r}")
        if not 0 <= value.rank <= 0xFF:
            raise ProtocolError(f"rank must fit one byte, got {value.rank}")
        if not 0 <= value.n_elements <= 0xFFFFFFFF:
            raise ProtocolError(f"n_elements out of range: {value.n_elements}")
        if not 0 <= value.n_chunks <= 0xFFFFFFFF:
            raise ProtocolError(f"n_chunks out of range: {value.n_chunks}")
        return head + _JOIN_STRUCT.pack(
            code, value.rank, job, value.n_elements, value.n_chunks, 0
        )
    if not isinstance(value, int):
        raise ProtocolError(
            f"{action.name} Value must be an int, got {type(value).__name__}"
        )
    if action == Action.SETH:
        if not 0 <= value < 1 << _SETH_H_BITS:
            raise ProtocolError(f"SETH H must fit {_SETH_H_BITS} bits, got {value}")
        return head + struct.pack("<I", (job << _SETH_H_BITS) | value)
    if action == Action.ACK:
        if value not in (0, 1):
            raise ProtocolError(f"ACK flag must be 0 or 1, got {value}")
        return head + struct.pack("<B", (job << 1) | value)
    # FBCAST/HELP carry a Seg index; LEAVE/RESET/HALT reuse the same
    # 8-byte Value layout for any ad-hoc integer payload.
    if not 0 <= value <= MAX_SEG_INDEX:
        raise ProtocolError(
            f"{action.name} Value must be in [0, {MAX_SEG_INDEX}], got {value}"
        )
    return head + struct.pack("<Q", (job << 56) | value)


def encode_data(
    segment: DataSegment, downstream: bool = False, codec=None
) -> bytes:
    """Serialize one data segment to its wire frame (Figure 5b).

    The frame is the ToS tag, the 8-byte Seg field (job id in the high
    bits), then the payload.  Without a codec (or with fp32) the payload
    is raw little-endian float32 and the frame is byte-identical to the
    pre-codec wire format; a :class:`~repro.core.compression.GradientCodec`
    with a ``wire_tag`` sets the tag in the ToS low bits and lays the
    payload out per PROTOCOL.md §8.
    """
    if not 0 <= segment.job <= MAX_JOB_ID:
        raise ProtocolError(
            f"job id must be in [0, {MAX_JOB_ID}], got {segment.job}"
        )
    if segment.seg > MAX_SEG_INDEX:
        raise ProtocolError(f"Seg index {segment.seg} exceeds {MAX_SEG_INDEX}")
    tos = TOS_DATA_DOWN if downstream else TOS_DATA_UP
    if codec is None or codec.wire_tag == 0:
        if segment.data.size > FLOATS_PER_SEGMENT:
            raise ProtocolError(
                f"{segment.data.size} floats exceed one frame's "
                f"{FLOATS_PER_SEGMENT}-element capacity"
            )
        header = struct.pack("<BQ", tos, (segment.job << 56) | segment.seg)
        return header + segment.data.astype("<f4", copy=False).tobytes()
    if codec.wire_tag is None:
        raise ProtocolError(f"codec {codec.name!r} has no wire format")
    if segment.data.size > codec.elements_per_frame:
        raise ProtocolError(
            f"{segment.data.size} elements exceed one {codec.name} frame's "
            f"{codec.elements_per_frame}-element capacity"
        )
    header = struct.pack(
        "<BQ", tos | codec.wire_tag, (segment.job << 56) | segment.seg
    )
    return header + codec.encode_payload(segment.data, downstream=downstream)


def decode_frame(
    frame: Union[bytes, bytearray, memoryview],
) -> Tuple[int, Union[ControlMessage, DataSegment]]:
    """Parse a wire frame back into ``(tos, message)``.

    The inverse of :func:`encode_control` / :func:`encode_data`:
    fp32/control round-trips are lossless; compressed data frames decode
    to the dense float32 values the codec's grid represents (the returned
    ``tos`` keeps its numerics tag so callers know which codec applied).
    Malformed input of any kind raises :class:`ProtocolError`; no other
    exception escapes.
    """
    buf = bytes(frame)
    if not buf:
        raise ProtocolError("empty frame")
    tos = buf[0]
    if tos == TOS_CONTROL:
        return tos, _decode_control(buf)
    if (tos & ~TOS_NUMERICS_MASK) in (TOS_DATA_UP, TOS_DATA_DOWN):
        return tos, _decode_data(buf)
    raise ProtocolError(f"unknown ToS tag 0x{tos:02x}")


def _decode_job(word_high: int) -> int:
    if word_high > MAX_JOB_ID:
        raise ProtocolError(f"job id {word_high} exceeds {MAX_JOB_ID}")
    return word_high


def _decode_control(buf: bytes) -> ControlMessage:
    if len(buf) < 2:
        raise ProtocolError("control frame is missing its Action byte")
    try:
        action = Action(buf[1])
    except ValueError as exc:
        raise ProtocolError(f"unknown action code {buf[1]}") from exc
    body = buf[2:]
    if not body:
        return ControlMessage(action=action, value=None, job=0)
    if action == Action.JOIN:
        if len(body) != _JOIN_STRUCT.size:
            raise ProtocolError(
                f"JOIN Value must be {_JOIN_STRUCT.size} bytes, got {len(body)}"
            )
        code, rank, job, n_elements, n_chunks, reserved = _JOIN_STRUCT.unpack(body)
        if reserved:
            raise ProtocolError(f"JOIN reserved field must be zero, got {reserved}")
        member = _MEMBER_NAMES.get(code)
        if member is None:
            raise ProtocolError(f"unknown member code {code}")
        info = JoinInfo(
            member_type=member, rank=rank, n_elements=n_elements, n_chunks=n_chunks
        )
        return ControlMessage(action=action, value=info, job=_decode_job(job))
    if action == Action.SETH:
        if len(body) != 4:
            raise ProtocolError(f"SETH Value must be 4 bytes, got {len(body)}")
        word = struct.unpack("<I", body)[0]
        return ControlMessage(
            action=action,
            value=word & ((1 << _SETH_H_BITS) - 1),
            job=_decode_job(word >> _SETH_H_BITS),
        )
    if action == Action.ACK:
        if len(body) != 1:
            raise ProtocolError(f"ACK Value must be 1 byte, got {len(body)}")
        return ControlMessage(action=action, value=body[0] & 1, job=body[0] >> 1)
    if len(body) != SEG_HEADER_BYTES:
        raise ProtocolError(
            f"{action.name} Value must be {SEG_HEADER_BYTES} bytes, got {len(body)}"
        )
    word = struct.unpack("<Q", body)[0]
    return ControlMessage(
        action=action, value=word & MAX_SEG_INDEX, job=_decode_job(word >> 56)
    )


def _decode_data(buf: bytes) -> DataSegment:
    if len(buf) < 1 + SEG_HEADER_BYTES:
        raise ProtocolError(
            f"data frame shorter than its {SEG_HEADER_BYTES}-byte Seg header"
        )
    tag = buf[0] & TOS_NUMERICS_MASK
    body_len = len(buf) - 1 - SEG_HEADER_BYTES
    if tag:
        # Compressed frame: the codec registered for the numerics tag owns
        # the payload layout (PROTOCOL.md §8).  Imported lazily — the
        # compression module builds on this one's constants.
        from .compression import codec_for_tag

        codec = codec_for_tag(tag)
        downstream = (buf[0] & ~TOS_NUMERICS_MASK) == TOS_DATA_DOWN
        word = struct.unpack_from("<Q", buf, 1)[0]
        data = codec.decode_payload(
            buf[1 + SEG_HEADER_BYTES :], downstream=downstream
        )
        return DataSegment(
            seg=word & MAX_SEG_INDEX,
            data=np.ascontiguousarray(data, dtype=np.float32),
            job=_decode_job(word >> 56),
        )
    if body_len % FLOAT_BYTES:
        raise ProtocolError(
            f"data payload of {body_len} B is not whole float32 elements"
        )
    if body_len > SEG_PAYLOAD_BYTES:
        raise ProtocolError(
            f"data payload of {body_len} B exceeds one frame "
            f"({SEG_PAYLOAD_BYTES} B max)"
        )
    word = struct.unpack_from("<Q", buf, 1)[0]
    data = np.frombuffer(buf, dtype="<f4", offset=1 + SEG_HEADER_BYTES)
    return DataSegment(
        seg=word & MAX_SEG_INDEX,
        data=data.astype(np.float32),  # a fresh, writable, native-order copy
        job=_decode_job(word >> 56),
    )


def make_control_packet(
    src: str, dst: str, message: ControlMessage, src_port: int = ISWITCH_UDP_PORT
) -> Packet:
    """Build a ToS-tagged control packet (Figure 5a)."""
    return Packet(
        src=src,
        dst=dst,
        payload_size=message.payload_size,
        tos=TOS_CONTROL,
        payload=message,
        src_port=src_port,
        dst_port=ISWITCH_UDP_PORT,
        job=message.job,
    )


def make_data_packet(
    src: str,
    dst: str,
    segment: DataSegment,
    plan: SegmentPlan,
    downstream: bool = False,
    src_port: int = ISWITCH_UDP_PORT,
) -> Packet:
    """Build a ToS-tagged data packet (train) for one chunk (Figure 5b)."""
    chunk = segment.seg % plan.n_chunks
    n_elements, payload_size, frames = plan._wire_info[chunk]
    if segment.data.size != n_elements:
        # Off-plan segment (e.g. a truncated retransmission): recompute.
        mult = plan.wire_multiplier
        chunk_frames = plan._chunk_frames[chunk]
        frames = chunk_frames * mult
        payload_size = mult * (
            chunk_frames * (SEG_HEADER_BYTES + plan.frame_overhead)
            + segment.data.size * plan.bytes_per_element
        )
    segment.wire_payload = payload_size
    segment.wire_frames = frames
    # Trusted construction: the plan guarantees each chunk's payload fits
    # its frame count (validated when the plan was built).
    return Packet.trusted(
        src,
        dst,
        payload_size,
        TOS_DATA_DOWN if downstream else TOS_DATA_UP,
        segment,
        src_port,
        ISWITCH_UDP_PORT,
        frames,
        segment.job,
    )

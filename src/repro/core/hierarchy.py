"""Hierarchical aggregation across the rack-scale switch tree (paper §3.4).

A single-rack deployment has one iSwitch aggregating all workers.  At rack
scale (Figure 10) each ToR iSwitch aggregates its local workers and
forwards the partial sum to the switch above; the root switch completes
the global sum and broadcasts it back down, with each ToR fanning the
result out to its rack.  "Such a design leverages the existing rack-scale
network architecture and does not introduce additional hardware or network
topology changes."

These helpers take a :class:`~repro.netsim.topology.Network` whose
switches were built with an :class:`~repro.core.switch.ISwitch` factory
and wire up the membership tables, parent pointers, per-switch aggregation
thresholds, and the inter-switch routes the result path needs.
"""

from __future__ import annotations

from typing import List

from ..netsim.switch import EthernetSwitch
from ..netsim.topology import Network
from .control_plane import MemberType
from .switch import ISwitch

__all__ = [
    "iswitch_factory",
    "dedup_iswitch_factory",
    "make_iswitch_factory",
    "configure_aggregation",
    "aggregation_switches",
]


def iswitch_factory(sim, name: str) -> ISwitch:
    """A ``switch_factory`` for the topology builders."""
    return ISwitch(sim, name)


def dedup_iswitch_factory(sim, name: str) -> ISwitch:
    """An iSwitch factory with duplicate suppression enabled — required on
    lossy links, where Help-triggered retransmissions must be idempotent."""
    return ISwitch(sim, name, dedup=True)


def make_iswitch_factory(
    dedup: bool = False, canonical: bool = False, codec=None
):
    """Build an iSwitch factory with the given engine options.

    ``canonical`` selects canonical-order summation (see
    :class:`~repro.core.accelerator.AggregationEngine`), used when the
    simulator must be bit-comparable with the live UDP backend.
    ``codec`` selects the aggregation numerics every engine in the tree
    runs (``None`` = fp32; see :mod:`repro.core.compression`).
    """

    def factory(sim, name: str) -> ISwitch:
        return ISwitch(sim, name, dedup=dedup, canonical=canonical, codec=codec)

    return factory


def _require_iswitch(switch: EthernetSwitch) -> ISwitch:
    if not isinstance(switch, ISwitch):
        raise TypeError(
            f"switch {switch.name} is a plain {type(switch).__name__}; build "
            "the topology with switch_factory=iswitch_factory"
        )
    return switch


def _port_toward(switch: EthernetSwitch, device) -> object:
    for port in switch.ports:
        if port.peer.device is device:
            return port
    raise ValueError(f"{switch.name} has no link toward {device.name}")


def configure_aggregation(net: Network, job: int = 0) -> List[ISwitch]:
    """Set up (possibly hierarchical) in-switch aggregation on ``net``.

    * Every worker becomes a member of its ToR iSwitch.
    * Every non-root switch points its parent at the switch reached by its
      default (uplink) route — this handles the two-layer rack tree and
      the full three-tier ToR→AGG→Core hierarchy alike — becomes a member
      of that parent, and both directions learn switch-name routes for
      the partial-sum/result traffic.
    * Each switch's H defaults to its member count (local workers for
      ToRs, child switches above).

    ``job`` selects which per-switch job table entry the membership lands
    in (0 = the default single-tenant job).

    Returns all participating iSwitches, leaf-to-root.
    """
    switches = [_require_iswitch(s) for s in net.switches]
    root = _require_iswitch(net.root) if net.root is not None else None

    for worker, tor in zip(net.workers, net.tor_of_worker):
        _require_iswitch(tor).add_member(worker.name, MemberType.WORKER, job=job)

    for switch in switches:
        if switch is root:
            continue
        uplink = switch.default_route
        if uplink is None:
            raise ValueError(
                f"switch {switch.name} has no uplink (default route) and is "
                "not the root; cannot infer the aggregation hierarchy"
            )
        parent = _require_iswitch(uplink.peer.device)
        switch.set_parent(parent.name)
        parent.add_member(switch.name, MemberType.SWITCH, job=job)
        # The generic topology routes host names only; aggregation
        # results travel switch-to-switch, so teach both directions.
        parent.add_route(switch.name, _port_toward(parent, switch))
        switch.add_route(parent.name, _port_toward(switch, parent))
    return switches


def aggregation_switches(net: Network) -> List[ISwitch]:
    """All iSwitches in ``net`` (validated), leaf-to-root."""
    return [_require_iswitch(s) for s in net.switches]

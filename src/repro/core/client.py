"""Worker-side endpoint of the iSwitch protocol.

Each training worker owns an :class:`AggregationClient` bound to its
host's iSwitch UDP port.  The client

* streams a gradient vector to the switch as a train of ToS-tagged data
  packets (the NIC serializes them back to back, which is what lets the
  accelerator aggregate on the fly while later packets are still in
  flight);
* collects the aggregated segments broadcast back by the switch,
  reassembles them into full vectors per aggregation round, and invokes a
  completion callback;
* speaks the control protocol (Join/Leave/Reset/SetH/Help) and can run a
  timeout-driven loss-recovery loop, implementing the paper's "offload
  the majority of tasks of handling lossy packets to workers".
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional

import numpy as np

from ..netsim.events import Event
from ..netsim.node import Host
from ..netsim.packets import Packet
from .protocol import (
    ISWITCH_UDP_PORT,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    Action,
    ControlMessage,
    DataSegment,
    SegmentPlan,
    make_control_packet,
    make_data_packet,
)

__all__ = ["AggregationClient"]

RoundCallback = Callable[[int, np.ndarray], None]
ControlCallback = Callable[[ControlMessage], None]


class AggregationClient:
    """The per-worker protocol endpoint for in-switch aggregation."""

    def __init__(
        self,
        host: Host,
        switch_address: str,
        plan: SegmentPlan,
        on_round_complete: Optional[RoundCallback] = None,
        on_control: Optional[ControlCallback] = None,
        recovery_timeout: Optional[float] = None,
        job: int = 0,
        codec=None,
        max_recovery_attempts: Optional[int] = None,
        on_round_abandoned: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.host = host
        self.switch_address = switch_address
        self.plan = plan
        self.job = job
        #: Optional :class:`repro.core.compression.GradientCodec`; when
        #: set, gradients suffer its quantization loss before leaving the
        #: worker (the wire width itself comes from the plan's
        #: ``bytes_per_element``).
        self.codec = codec
        if codec is not None and (
            plan.bytes_per_element != codec.bytes_per_element
            or plan.frame_overhead != codec.frame_overhead
        ):
            # Historical silent no-op: the codec quantized the gradient
            # but the plan still billed fp32-shaped frames, so nothing
            # shrank on the wire.  Build the plan from the codec's
            # geometry (e.g. via make_plan(..., codec=...)) instead.
            warnings.warn(
                f"AggregationClient codec {codec.name!r} does not match the "
                f"segment plan geometry ({plan.bytes_per_element} B/elt, "
                f"{plan.frame_overhead} B frame overhead vs the codec's "
                f"{codec.bytes_per_element}/{codec.frame_overhead}); the "
                "wire accounting still reflects the plan, not the codec. "
                "Pass a plan built with the codec's geometry.",
                DeprecationWarning,
                stacklevel=2,
            )
        self.on_round_complete = on_round_complete
        self.on_control = on_control
        #: Base Help-retry timeout (seconds of simulated time), or ``None``
        #: to disable the loss-recovery loop entirely.  Should comfortably
        #: exceed one round-trip *plus* the slowest peer's compute time —
        #: a premature watchdog is harmless (Help on an incomplete segment
        #: is ignored or answered by retransmits the dedup engine drops)
        #: but wastes packets.
        self.recovery_timeout = recovery_timeout
        #: Cap on watchdog firings per round.  ``None`` (default) retries
        #: forever — correct when every round is guaranteed to eventually
        #: complete, but it deadlocks the simulator's event loop if a
        #: round becomes *unsatisfiable* (e.g. membership shrank and the
        #: round was force-completed elsewhere).  Fault-injected runs set
        #: a finite cap so abandoned rounds go quiet instead of keeping
        #: the run alive.
        self.max_recovery_attempts = max_recovery_attempts
        #: Rounds whose watchdog hit ``max_recovery_attempts`` and gave up.
        self.abandoned_rounds: set = set()
        #: Called with the round index when a round is abandoned, so the
        #: owning strategy can account for the permanently missed update
        #: (e.g. advance its iteration counter) instead of waiting forever.
        self.on_round_abandoned = on_round_abandoned
        self._partial: Dict[int, Dict[int, np.ndarray]] = {}
        self._completed: set = set()
        self._watchdogs: Dict[int, Event] = {}
        #: Consecutive watchdog firings per round (drives the exponential
        #: backoff so a round gated on slow peers doesn't spam Help).
        self._watchdog_attempts: Dict[int, int] = {}
        #: Recently sent segments by global Seg number, kept only when
        #: loss recovery is armed, so a relayed Help can be answered by
        #: retransmitting the original contribution.
        self._sent: Dict[int, DataSegment] = {}
        #: Simulated time each round's gradient left this client, kept so
        #: the completion span covers stream + in-switch + broadcast.
        self._round_started: Dict[int, float] = {}
        self._commit_counter = 0
        self.rounds_completed = 0
        self.help_requests = 0
        self.retransmissions = 0
        # Several clients (different jobs) may share one host; the first
        # binds the iSwitch port and fans packets out to every registered
        # client, each of which filters on its job id.
        registry = getattr(host, "_iswitch_clients", None)
        if registry is None:
            registry = []
            host._iswitch_clients = registry

            def dispatch(packet: Packet) -> None:
                for client in registry:
                    client._receive(packet)

            def dispatch_train(train) -> None:
                for client in registry:
                    client._receive_train(train)

            host.bind(ISWITCH_UDP_PORT, dispatch)
            host.bind_train(ISWITCH_UDP_PORT, dispatch_train)
        registry.append(self)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_gradient(self, vector: np.ndarray, round_index: int) -> int:
        """Stream one gradient vector for ``round_index``; returns commit id.

        All chunks are offered to the NIC immediately; the link transmit
        queue serializes them back to back, so the last byte leaves at
        exactly ``vector_wire_bytes * 8 / bandwidth`` after the first.
        """
        self._commit_counter += 1
        commit_id = self._commit_counter
        self._round_started.setdefault(round_index, self.host.sim.now)
        if len(self._round_started) > 1024:
            for old in sorted(self._round_started)[:512]:
                del self._round_started[old]
        if self.codec is not None:
            vector = self.codec.roundtrip(vector)
        segments = self.plan.split(
            vector, round_index, sender=self.host.name, commit_id=commit_id
        )
        if self.host.sim.batch_transport:
            if self.recovery_timeout is None:
                # Fused stamp + packetize: fresh plan splits always match
                # the plan's per-chunk wire table, so this inlines
                # make_data_packet without its off-plan fallback.
                job = self.job
                src = self.host.name
                dst = self.switch_address
                trusted = Packet.trusted
                packets = []
                for segment, (_, payload_size, frames) in zip(
                    segments, self.plan._wire_info
                ):
                    segment.job = job
                    segment.wire_payload = payload_size
                    segment.wire_frames = frames
                    packets.append(
                        trusted(
                            src,
                            dst,
                            payload_size,
                            TOS_DATA_UP,
                            segment,
                            ISWITCH_UDP_PORT,
                            ISWITCH_UDP_PORT,
                            frames,
                            job,
                        )
                    )
            else:
                packets = []
                for segment in segments:
                    segment.job = self.job
                    frozen = segment.data.view()
                    frozen.flags.writeable = False
                    segment.data = frozen
                    packets.append(
                        make_data_packet(
                            self.host.name, self.switch_address, segment, self.plan
                        )
                    )
            self.host.send_burst(packets)
        else:
            for segment in segments:
                segment.job = self.job
                if self.recovery_timeout is not None:
                    # These segments double as the retransmission cache, so
                    # the engine must not adopt (and sum into) their arrays;
                    # a read-only view makes it copy on first arrival
                    # instead.
                    frozen = segment.data.view()
                    frozen.flags.writeable = False
                    segment.data = frozen
                self.host.send(
                    make_data_packet(
                        self.host.name, self.switch_address, segment, self.plan
                    )
                )
        if self.recovery_timeout is not None:
            for segment in segments:
                self._sent[segment.seg] = segment
            if len(self._sent) > 8 * self.plan.n_chunks:
                for old in sorted(self._sent)[: 4 * self.plan.n_chunks]:
                    del self._sent[old]
            self._arm_watchdog(round_index)
        return commit_id

    # ------------------------------------------------------------------
    # Control operations
    # ------------------------------------------------------------------
    def join(self, member_type: str = "worker") -> None:
        self._control(Action.JOIN, member_type)

    def leave(self) -> None:
        self._control(Action.LEAVE)

    def reset_switch(self) -> None:
        self._control(Action.RESET)

    def set_threshold(self, h: int) -> None:
        self._control(Action.SETH, h)

    def request_help(self, seg: int) -> None:
        """Ask the switch to retransmit the result for one lost segment."""
        self.help_requests += 1
        telemetry = self.host.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("client.help_requests", 1, worker=self.host.name)
            telemetry.event(
                "client.help_request", cat="recovery", track=self.host.name,
                seg=seg,
            )
        self._control(Action.HELP, seg)

    def _control(self, action: Action, value=None) -> None:
        self.host.send(
            make_control_packet(
                self.host.name,
                self.switch_address,
                ControlMessage(action, value, job=self.job),
            )
        )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _receive(self, packet: Packet) -> None:
        if packet.tos == TOS_DATA_DOWN:
            if packet.payload.job != self.job:
                return  # another tenant's results on a shared host
            self._receive_result(packet.payload)
        elif packet.tos == TOS_CONTROL:
            message = packet.payload
            if isinstance(message, ControlMessage) and message.job != self.job:
                return
            if (
                isinstance(message, ControlMessage)
                and message.action == Action.HELP
            ):
                self._retransmit(int(message.value))
            elif self.on_control is not None:
                self.on_control(message)

    def _receive_train(self, train) -> None:
        """Batched receive: process a result train's packets in order.

        Per-packet semantics are preserved exactly — chunks land in
        ``_partial`` in the train's (arrival) order and the round finishes
        during the same call once its last chunk lands, just without one
        dispatch event per packet.  Result packets (the dominant train
        shape: a whole round's broadcast) take an inlined fast path;
        anything else goes through the per-packet arbiter.
        """
        plan = self.plan
        n_chunks = plan.n_chunks
        job = self.job
        completed = self._completed
        partial = self._partial
        guard = (
            self.recovery_timeout is not None
            and self.on_round_abandoned is not None
        )
        for packet in train.packets:
            if packet.tos != TOS_DATA_DOWN:
                self._receive(packet)
                continue
            segment = packet.payload
            if segment.job != job:
                continue
            round_index, chunk = divmod(segment.seg, n_chunks)
            if round_index in completed:
                continue
            chunks = partial.get(round_index)
            if chunks is None:
                partial[round_index] = chunks = {}
            chunks[chunk] = segment.data
            if len(chunks) == n_chunks:
                self._finish_round(round_index)
            elif guard:
                self._guard_broadcast_rounds(round_index)

    def _retransmit(self, seg: int) -> None:
        """Answer a switch-relayed Help: resend our own contribution.

        The engine's dedup mode drops the copy if the original did arrive,
        so retransmission is always safe.
        """
        segment = self._sent.get(seg)
        if segment is None:
            return
        self.retransmissions += 1
        telemetry = self.host.sim.telemetry
        if telemetry.enabled:
            telemetry.inc("client.retransmissions", 1, worker=self.host.name)
            telemetry.event(
                "client.retransmit", cat="recovery", track=self.host.name,
                seg=seg,
            )
        self.host.send(
            make_data_packet(
                self.host.name, self.switch_address, segment, self.plan
            )
        )

    def _receive_result(self, segment: DataSegment) -> None:
        round_index = self.plan.round_of_seg(segment.seg)
        if round_index in self._completed:
            return  # late duplicate of an already-assembled round
        chunk = self.plan.chunk_of_seg(segment.seg)
        chunks = self._partial.setdefault(round_index, {})
        chunks[chunk] = segment.data  # duplicate results simply overwrite
        if len(chunks) == self.plan.n_chunks:
            self._finish_round(round_index)
        elif (
            self.recovery_timeout is not None
            and self.on_round_abandoned is not None
        ):
            self._guard_broadcast_rounds(round_index)

    def _guard_broadcast_rounds(self, round_index: int) -> None:
        """Arm watchdogs for a partially received round *and* recent gaps.

        :meth:`send_gradient` only guards rounds this client submitted
        under its own numbering; with arrival renumbering (async mode)
        the switch's round indices are assigned on arrival, so a
        broadcast whose packets were *all* lost here leaves no partial
        state and no timer.  Rounds complete in renumbered order, so a
        chunk for round ``r`` means every nearby earlier round's
        broadcast already happened — guard the small trailing window so
        fully-dropped rounds get Help-recovered too.

        Only armed when an abandonment callback is wired (async mode):
        under submission numbering every receivable round already has a
        watchdog from :meth:`send_gradient`, and guarding gaps would
        resurrect rounds a rejoined member deliberately skipped.
        """
        for guarded in range(max(0, round_index - 8), round_index + 1):
            if (
                guarded not in self._completed
                and guarded not in self.abandoned_rounds
            ):
                self._arm_watchdog(guarded)

    def _finish_round(self, round_index: int) -> None:
        chunks = self._partial.pop(round_index)
        self._completed.add(round_index)
        if len(self._completed) > 1024:
            # Old rounds can never resurface; keep the set bounded.
            for done in sorted(self._completed)[:512]:
                self._completed.discard(done)
        watchdog = self._watchdogs.pop(round_index, None)
        if watchdog is not None:
            watchdog.cancel()
        self._watchdog_attempts.pop(round_index, None)
        # Chunks cover [0, n_chunks) exactly once and the plan's bounds are
        # contiguous in chunk order, so ordered concatenation reproduces
        # the per-chunk slice assignment in one call.
        out = np.concatenate(
            [chunks[chunk] for chunk in range(self.plan.n_chunks)]
        )
        if out.shape[0] != self.plan.n_elements:
            raise ValueError(
                f"round {round_index}: assembled {out.shape[0]} elements, "
                f"expected {self.plan.n_elements}"
            )
        self.rounds_completed += 1
        telemetry = self.host.sim.telemetry
        if telemetry.enabled:
            telemetry.inc(
                "client.rounds_completed", 1, worker=self.host.name
            )
            started = self._round_started.pop(round_index, None)
            if started is not None:
                telemetry.span_at(
                    "client.round",
                    started,
                    self.host.sim.now,
                    cat="iswitch",
                    track=self.host.name,
                    round=round_index,
                )
        else:
            self._round_started.pop(round_index, None)
        if self.on_round_complete is not None:
            self.on_round_complete(round_index, out)

    # ------------------------------------------------------------------
    # Loss recovery
    # ------------------------------------------------------------------
    def _arm_watchdog(self, round_index: int) -> None:
        """(Re)arm the per-round loss-recovery timer.

        This is the worker half of the paper's loss handling ("offload
        the majority of tasks of handling lossy packets to workers").
        The cycle is:

        1. :meth:`send_gradient` arms a watchdog for the round (only when
           ``recovery_timeout`` is set) and records every sent segment in
           ``_sent``.
        2. If the round's broadcast completes in time,
           :meth:`_finish_round` cancels the timer.  Otherwise ``check``
           fires: for each chunk still missing from ``_partial`` it sends
           ``Help(seg)`` to the switch.
        3. The switch answers from its result cache (covers a lost
           *downstream* broadcast) or relays the Help to all members,
           whose clients re-send their original contribution from
           ``_sent`` (covers a lost *upstream* contribution; the engine's
           dedup mode makes the re-send idempotent).
        4. The watchdog rearms with exponential backoff —
           ``recovery_timeout * 2**min(attempts, 8)`` — so a round merely
           gated on slow peers doesn't generate a Help storm, and stops
           for good after ``max_recovery_attempts`` firings (if set).
        """
        if round_index in self._watchdogs:
            return

        def check() -> None:
            self._watchdogs.pop(round_index, None)
            if round_index in self._completed:
                return
            telemetry = self.host.sim.telemetry
            if telemetry.enabled:
                telemetry.event(
                    "client.watchdog_fired",
                    cat="recovery",
                    track=self.host.name,
                    round=round_index,
                )
            attempts = self._watchdog_attempts.get(round_index, 0) + 1
            self._watchdog_attempts[round_index] = attempts
            if (
                self.max_recovery_attempts is not None
                and attempts > self.max_recovery_attempts
            ):
                # Give up: the round is presumed unsatisfiable (e.g. it
                # straddled a membership change or switch Reset).  Going
                # quiet lets the simulator drain instead of retrying an
                # outcome that cannot happen.
                self.abandoned_rounds.add(round_index)
                self._watchdog_attempts.pop(round_index, None)
                self._partial.pop(round_index, None)
                if telemetry.enabled:
                    telemetry.inc(
                        "client.rounds_abandoned", 1, worker=self.host.name
                    )
                if self.on_round_abandoned is not None:
                    self.on_round_abandoned(round_index)
                return
            received = set(self._partial.get(round_index, {}))
            missing = set(range(self.plan.n_chunks)) - received
            base = round_index * self.plan.n_chunks
            for chunk in sorted(missing):
                self.request_help(base + chunk)
            self._arm_watchdog(round_index)

        # Exponential backoff: a round stalled on slow peers (not loss)
        # shouldn't generate a Help storm while it waits.
        attempts = self._watchdog_attempts.get(round_index, 0)
        timeout = self.recovery_timeout * (2 ** min(attempts, 8))
        self._watchdogs[round_index] = self.host.sim.schedule(
            timeout, check, name=f"watchdog:r{round_index}"
        )

    def cancel_recovery(self) -> None:
        """Silence every armed watchdog (e.g. when this worker crashes).

        A departed member can never satisfy its pending rounds, and its
        timers would otherwise keep the event loop alive; the fault
        injector calls this when it takes a worker down.
        """
        for watchdog in self._watchdogs.values():
            watchdog.cancel()
        self._watchdogs.clear()
        self._watchdog_attempts.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_rounds(self) -> int:
        """Rounds with at least one received chunk but not yet complete."""
        return len(self._partial)

"""The iSwitch: a programmable switch with the aggregation accelerator
integrated into its data plane as a bump-in-the-wire (paper §3.3, Figure 6).

The input arbiter inspects the IP ToS byte of every packet:

* untagged packets take the regular forwarding path of the parent
  :class:`~repro.netsim.switch.EthernetSwitch` — iSwitch "does not affect
  the regular network functions";
* :data:`~repro.core.protocol.TOS_DATA_UP` packets feed the
  :class:`~repro.core.accelerator.AggregationEngine`; when a segment
  completes, the summed result is either broadcast to all local members
  (single-switch mode) or forwarded to the parent switch (hierarchical
  mode, §3.4);
* :data:`~repro.core.protocol.TOS_DATA_DOWN` packets (results arriving
  from a parent switch) are re-broadcast to the local members;
* :data:`~repro.core.protocol.TOS_CONTROL` packets go to the control
  plane (Join/Leave/Reset/SetH/FBcast/Help/Halt — Table 2).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..netsim.events import Simulator
from ..netsim.link import LinkEnd
from ..netsim.packets import Packet, PacketTrain
from ..netsim.switch import DEFAULT_SWITCH_LATENCY, EthernetSwitch
from .accelerator import AcceleratorTiming, AggregationEngine
from .control_plane import MembershipTable, MemberType
from .jobs import DEFAULT_JOB, JobTable
from .protocol import (
    FLOAT_BYTES,
    FLOATS_PER_SEGMENT,
    ISWITCH_UDP_PORT,
    SEG_HEADER_BYTES,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    Action,
    ControlMessage,
    DataSegment,
    make_control_packet,
)

__all__ = ["ISwitch"]


class ISwitch(EthernetSwitch):
    """An Ethernet switch extended with in-switch gradient aggregation."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        latency: float = DEFAULT_SWITCH_LATENCY,
        dedup: bool = False,
        timing: Optional[AcceleratorTiming] = None,
        canonical: bool = False,
        codec=None,
    ) -> None:
        super().__init__(sim, name, latency=latency)
        #: Per-job aggregation state; job 0 is the single-tenant default.
        self.jobs = JobTable(
            dedup=dedup, timing=timing, canonical=canonical, codec=codec
        )
        #: Address of the parent iSwitch for hierarchical aggregation,
        #: or ``None`` if this switch is the (local) aggregation root.
        self.parent_address: Optional[str] = None
        self.result_broadcasts = 0
        self.upstream_forwards = 0
        self.control_messages = 0

    # ------------------------------------------------------------------
    # Configuration (programmatic equivalents of the control messages)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> AggregationEngine:
        """The default job's engine (single-tenant convenience)."""
        return self.jobs.get(DEFAULT_JOB).engine

    @engine.setter
    def engine(self, engine: AggregationEngine) -> None:
        self.jobs.get(DEFAULT_JOB).engine = engine

    @property
    def members(self) -> MembershipTable:
        """The default job's membership table."""
        return self.jobs.get(DEFAULT_JOB).members

    def add_member(
        self,
        address: str,
        member_type: str = MemberType.WORKER,
        job: int = DEFAULT_JOB,
    ) -> None:
        """Register a local member (worker or child switch) and grow H.

        "By default, H is equal to the number of workers" (§3.2) — here,
        the number of directly attached members contributing to this
        switch for the given job.  An explicit ``SetH`` overrides this.
        """
        state = self.jobs.get(job)
        state.members.join(address, ISWITCH_UDP_PORT, member_type)
        state.engine.set_threshold(len(state.members))

    def set_parent(self, address: Optional[str]) -> None:
        self.parent_address = address

    # ------------------------------------------------------------------
    # Input arbiter
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, in_port: LinkEnd) -> None:
        self.rx_packets += 1
        self.rx_bytes += packet.wire_size
        self._arbitrate(packet, in_port)

    def _arbitrate(self, packet: Packet, in_port: LinkEnd) -> None:
        tos = packet.tos
        if tos == TOS_DATA_UP:
            self._handle_contribution(packet)
        elif tos == TOS_DATA_DOWN:
            self._handle_result_from_parent(packet)
        elif tos == TOS_CONTROL:
            self._handle_control(packet)
        else:
            self.process(packet, in_port)

    def handle_train(self, train: PacketTrain, in_port: LinkEnd) -> None:
        """Batched arbiter: ingest or fan out a whole train in one call.

        Trains are single-flow by construction (one sender burst, or one
        switch's result emissions), so the common cases are a uniform
        ``TOS_DATA_UP`` train into the aggregation engine and a uniform
        ``TOS_DATA_DOWN`` train fanned out to members.  Anything mixed
        falls back to the per-packet arbiter.
        """
        packets = train.packets
        n = len(packets)
        self.rx_packets += n
        nbytes = 0
        tos = packets[0].tos
        uniform = True
        for packet in packets:
            nbytes += packet.wire_size
            if packet.tos != tos:
                uniform = False
        self.rx_bytes += nbytes
        if n > 1 and uniform:
            if tos == TOS_DATA_UP:
                if self._ingest_contribution_train(train, in_port):
                    return
            elif tos == TOS_DATA_DOWN:
                self._fanout_train(train)
                return
        for packet in packets:
            self._arbitrate(packet, in_port)

    # ------------------------------------------------------------------
    # Data plane: aggregation path
    # ------------------------------------------------------------------
    def _handle_contribution(self, packet: Packet) -> None:
        segment = packet.payload
        if not isinstance(segment, DataSegment):
            raise TypeError(
                f"{self.name}: data packet carries {type(segment).__name__}, "
                "expected DataSegment"
            )
        state = self.jobs.get(segment.job)
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            if segment.job:
                telemetry.inc(
                    "switch.contributions", 1, switch=self.name, job=segment.job
                )
            else:
                telemetry.inc("switch.contributions", 1, switch=self.name)
            if state.engine.clock is None:
                # Arm the engine's first-arrival stamping lazily so the
                # datapath stays timestamp-free while telemetry is off.
                state.engine.clock = telemetry.now
        latency = state.engine.processing_latency(packet.payload_size)
        result = state.engine.contribute(segment)
        if result is None:
            return
        # Vector-granularity engines emit a whole round at once.
        results = result if isinstance(result, list) else [result]
        for completed in results:
            completed.job = segment.job
            if telemetry.enabled:
                done = self.sim.now + latency
                started = state.engine.consume_span_start(completed.seg)
                telemetry.span_at(
                    "segment.aggregate",
                    started if started is not None else self.sim.now,
                    done,
                    cat="aggregation",
                    track=self.name,
                    seg=completed.seg,
                    job=completed.job,
                )
                if completed.job:
                    telemetry.inc(
                        "switch.segments_completed",
                        1,
                        switch=self.name,
                        job=completed.job,
                    )
                else:
                    telemetry.inc(
                        "switch.segments_completed", 1, switch=self.name
                    )
            self.sim.schedule_fire(
                latency + self.latency,
                lambda seg=completed: self._emit_result(seg),
                "agg-complete",
            )

    def _ingest_contribution_train(
        self, train: PacketTrain, in_port: LinkEnd
    ) -> bool:
        """Aggregate a whole train of contributions in one call.

        Returns ``False`` — before touching any state — when the train is
        not a single-job run of :class:`DataSegment` payloads; the caller
        then falls back to the per-packet arbiter.

        Exactness: contributions enter the engine in packet order (the
        per-packet arrival order), each completion's emission time is
        computed from its *own* packet's carried arrival (preserving the
        paper's on-the-fly overlap), and emissions are sorted by
        ``(time, completion order)`` — the key the event heap would have
        used for the per-packet emission events.
        """
        packets = train.packets
        segments = []
        job = None
        size0 = packets[0].payload_size
        uniform_size = True
        for packet in packets:
            segment = packet.payload
            if not isinstance(segment, DataSegment):
                return False
            if job is None:
                job = segment.job
            elif segment.job != job:
                return False
            if packet.payload_size != size0:
                uniform_size = False
            segments.append(segment)
        state = self.jobs.get(job)
        engine = state.engine
        sim = self.sim
        telemetry = sim.telemetry
        n = len(packets)
        clocks = None
        if telemetry.enabled:
            if job:
                telemetry.inc(
                    "switch.contributions", n, switch=self.name, job=job
                )
            else:
                telemetry.inc("switch.contributions", n, switch=self.name)
            # Stamp each contribution with its own carried arrival: one
            # train = one simulator event, so the engine's shared clock
            # would record the last packet's arrival for every segment.
            clocks = [float(a) for a in train.arrivals]
        # One processing_latency accrual per packet, exactly like the
        # per-packet path (it also accumulates the engine's busy_time).
        if uniform_size:
            latency0 = engine.processing_latency(size0)
            stats = engine.stats
            for _ in range(n - 1):
                # Repeated adds, not one multiply: busy_time must match
                # the per-packet accumulation bit for bit.
                stats.busy_time += latency0
            latencies = [latency0] * n
        else:
            latencies = [
                engine.processing_latency(packet.payload_size)
                for packet in packets
            ]
        completions = engine.contribute_batch(segments, clocks=clocks)
        if not completions:
            return True
        arrivals = train.arrivals
        if isinstance(arrivals, np.ndarray):
            arrivals = arrivals.tolist()  # python floats, identical values
        switch_latency = self.latency
        items: List[Tuple[float, int, DataSegment]] = []
        for order, (i, completed) in enumerate(completions):
            completed.job = job
            arrival = float(arrivals[i])
            latency = latencies[i]
            # Match the per-packet float association exactly:
            # schedule_fire(latency + self.latency) adds the *summed*
            # delay to the arrival in one operation.
            emit_delay = latency + switch_latency
            if telemetry.enabled:
                started = engine.consume_span_start(completed.seg)
                done = arrival + latency
                # Trains from different links deliver in last-arrival
                # order, so under retransmission a completion can carry
                # an earlier logical arrival than the recorded first
                # arrival; clamp so the span stays well-formed.
                span_start = started if started is not None else arrival
                if span_start > done:
                    span_start = done
                telemetry.span_at(
                    "segment.aggregate",
                    span_start,
                    done,
                    cat="aggregation",
                    track=self.name,
                    seg=completed.seg,
                    job=completed.job,
                )
                if completed.job:
                    telemetry.inc(
                        "switch.segments_completed",
                        1,
                        switch=self.name,
                        job=completed.job,
                    )
                else:
                    telemetry.inc(
                        "switch.segments_completed", 1, switch=self.name
                    )
            items.append((arrival + emit_delay, order, completed))
        # One logical "agg-complete" event per completion.
        sim.count_batched(len(items), "agg-complete")
        items.sort(key=lambda item: (item[0], item[1]))
        self._emit_results_train(items)
        return True

    def _fanout_train(self, train: PacketTrain) -> None:
        """Batched :meth:`_handle_result_from_parent`: re-broadcast a train."""
        arrivals = train.arrivals
        if isinstance(arrivals, np.ndarray):
            arrivals = arrivals.tolist()  # python floats, identical values
        latency = self.latency
        items = [
            (float(arrivals[i]) + latency, i, packet.payload)
            for i, packet in enumerate(train.packets)
        ]
        self.sim.count_batched(len(items), "fanout")
        self._broadcast_results_train(items)

    def _emit_results_train(
        self, items: List[Tuple[float, int, DataSegment]]
    ) -> None:
        """Train variant of :meth:`_emit_result` for a batch of results.

        ``items`` are ``(emission_time, order, segment)`` sorted by the
        per-packet event key; emission times become per-packet ready
        times on the egress trains.
        """
        if self.parent_address is None:
            self._broadcast_results_train(items)
            return
        telemetry = self.sim.telemetry
        egress = self.lookup(self.parent_address)
        if egress is None:
            self.dropped_packets += len(items)
            return
        packets = []
        ready = np.empty(len(items), dtype=np.float64)
        self.upstream_forwards += len(items)
        log_events = telemetry.enabled
        for i, (time, _, result) in enumerate(items):
            if log_events:
                telemetry.event(
                    "segment.forward_up",
                    cat="aggregation",
                    track=self.name,
                    seg=result.seg,
                )
            up_data = result.data.view()
            up_data.flags.writeable = False
            up = DataSegment.trusted(
                result.seg,
                up_data,
                sender=self.name,
                commit_id=result.seg,
                job=result.job,
                wire_payload=result.wire_payload,
                wire_frames=result.wire_frames,
            )
            packets.append(
                self._data_packet(self.parent_address, up, downstream=False)
            )
            ready[i] = time
        egress.send_train(packets, ready)

    def _broadcast_results_train(
        self, items: List[Tuple[float, int, DataSegment]]
    ) -> None:
        """Train variant of :meth:`_broadcast_result`: one egress train per
        member carrying every completed segment, with the per-packet
        emission times as ready times."""
        telemetry = self.sim.telemetry
        by_job: dict = {}
        job_order = []
        for item in items:
            job = item[2].job
            group = by_job.get(job)
            if group is None:
                by_job[job] = group = []
                job_order.append(job)
            group.append(item)
        for job in job_order:
            # Same guard as the per-packet path: a job evicted between
            # completion and fan-out is not resurrected.
            state = self.jobs.peek(job)
            if state is None:
                continue
            group = by_job[job]
            self.result_broadcasts += len(group)
            if telemetry.enabled:
                if job:
                    telemetry.inc(
                        "switch.result_broadcasts",
                        len(group),
                        switch=self.name,
                        job=job,
                    )
                else:
                    telemetry.inc(
                        "switch.result_broadcasts",
                        len(group),
                        switch=self.name,
                    )
                for _, _, result in group:
                    telemetry.event(
                        "segment.broadcast",
                        cat="aggregation",
                        track=self.name,
                        seg=result.seg,
                        job=job,
                    )
            ready = np.empty(len(group), dtype=np.float64)
            for i, item in enumerate(group):
                ready[i] = item[0]
            # Every member gets an identical train except for the packet
            # destinations: build it once, clone per member.  The template
            # itself is never sent (transmission stamps hops/created_at).
            template = [
                self._data_packet("", item[2], downstream=True)
                for item in group
            ]
            for entry in state.members.addresses:
                egress = self.lookup(entry)
                if egress is None:
                    self.dropped_packets += len(group)
                    continue
                egress.send_train(
                    [packet.clone_to(entry) for packet in template], ready
                )

    def _emit_result(self, result: DataSegment) -> None:
        """Ship a completed segment: up the hierarchy, or down to members."""
        if self.parent_address is not None:
            self.upstream_forwards += 1
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                telemetry.event(
                    "segment.forward_up",
                    cat="aggregation",
                    track=self.name,
                    seg=result.seg,
                )
            # A read-only view: the parent's engine must copy on first
            # arrival rather than adopt this array, because it also backs
            # this switch's Help cache and the eventual fanout payloads.
            up_data = result.data.view()
            up_data.flags.writeable = False
            up = DataSegment(
                seg=result.seg,
                data=up_data,
                sender=self.name,
                commit_id=result.seg,
                job=result.job,
                wire_payload=result.wire_payload,
                wire_frames=result.wire_frames,
            )
            self._send_data(self.parent_address, up, downstream=False)
        else:
            self._broadcast_result(result)

    def _broadcast_result(self, result: DataSegment) -> None:
        """Send the summed segment to every local member (Figure 1c)."""
        # The job may have been evicted (last member left) between the
        # segment completing and this delayed fan-out; don't resurrect it.
        state = self.jobs.peek(result.job)
        if state is None:
            return
        self.result_broadcasts += 1
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            if result.job:
                telemetry.inc(
                    "switch.result_broadcasts",
                    1,
                    switch=self.name,
                    job=result.job,
                )
            else:
                telemetry.inc("switch.result_broadcasts", 1, switch=self.name)
            telemetry.event(
                "segment.broadcast",
                cat="aggregation",
                track=self.name,
                seg=result.seg,
                job=result.job,
            )
        for entry in state.members.addresses:
            self._send_data(entry, result, downstream=True)

    def _handle_result_from_parent(self, packet: Packet) -> None:
        """A globally aggregated segment arrived from above: fan it out."""
        segment = packet.payload
        self.sim.schedule_fire(
            self.latency,
            lambda: self._broadcast_result(segment),
            "fanout",
        )

    def _data_packet(
        self, dst: str, segment: DataSegment, downstream: bool
    ) -> Packet:
        if segment.wire_payload is not None and segment.wire_frames is not None:
            payload_size, frames = segment.wire_payload, segment.wire_frames
        else:
            # Reconstructed from the carried data (Help retransmissions of
            # unstamped segments): one Seg header per real frame, fp32.
            frames = max(1, math.ceil(segment.data.size / FLOATS_PER_SEGMENT))
            payload_size = (
                frames * SEG_HEADER_BYTES + segment.data.size * FLOAT_BYTES
            )
        # Trusted construction: stamped footprints passed validation when
        # the contribution was built; reconstructed ones fit by definition.
        return Packet.trusted(
            self.name,
            dst,
            payload_size,
            TOS_DATA_DOWN if downstream else TOS_DATA_UP,
            segment,
            ISWITCH_UDP_PORT,
            ISWITCH_UDP_PORT,
            frames,
            0,
        )

    def _send_data(self, dst: str, segment: DataSegment, downstream: bool) -> None:
        egress = self.lookup(dst)
        if egress is None:
            self.dropped_packets += 1
            return
        egress.send(self._data_packet(dst, segment, downstream))

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _handle_control(self, packet: Packet) -> None:
        message = packet.payload
        if not isinstance(message, ControlMessage):
            raise TypeError(
                f"{self.name}: control packet carries "
                f"{type(message).__name__}, expected ControlMessage"
            )
        self.control_messages += 1
        action = message.action
        telemetry = self.sim.telemetry
        if telemetry.enabled:
            telemetry.inc(
                "switch.control_messages",
                1,
                switch=self.name,
                action=action.name.lower(),
            )
        state = self.jobs.get(message.job)
        if action == Action.JOIN:
            member_type = message.value or MemberType.WORKER
            state.members.join(packet.src, packet.src_port, member_type)
            state.engine.set_threshold(len(state.members))
            self._ack(packet.src, success=True, job=message.job)
        elif action == Action.LEAVE:
            removed = state.members.leave(packet.src)
            if state.members:
                state.engine.set_threshold(len(state.members))
                self._sweep_after_threshold_change(state, message.job)
            elif message.job != DEFAULT_JOB:
                self.jobs.remove(message.job)
            self._ack(packet.src, success=removed, job=message.job)
        elif action == Action.RESET:
            state.engine.reset()
            self._ack(packet.src, success=True, job=message.job)
        elif action == Action.SETH:
            state.engine.set_threshold(int(message.value))
            self._sweep_after_threshold_change(state, message.job)
            self._ack(packet.src, success=True, job=message.job)
        elif action == Action.FBCAST:
            result = state.engine.force_broadcast(int(message.value))
            if result is not None:
                result.job = message.job
                self._emit_result(result)
        elif action == Action.HELP:
            self._handle_help(packet.src, int(message.value), message.job)
        elif action == Action.HALT:
            # Relay the suspension to every member (and down the tree).
            for address in state.members.addresses:
                self._send_control(
                    address, ControlMessage(Action.HALT, job=message.job)
                )
        elif action == Action.ACK:
            pass  # terminal; counted above
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown control action: {action}")

    def _sweep_after_threshold_change(self, state, job: int) -> None:
        """Emit segments stranded by a threshold decrease (Leave/SetH).

        Lowering H never triggers :meth:`AggregationEngine.contribute`'s
        completion check, so a segment sitting at ``count >= H`` would
        otherwise wait forever for a contribution that is not coming —
        exactly the stall a departing member leaves behind mid-round.
        """
        for completed in state.engine.sweep_completed():
            completed.job = job
            telemetry = self.sim.telemetry
            if telemetry.enabled:
                telemetry.event(
                    "segment.swept",
                    cat="aggregation",
                    track=self.name,
                    seg=completed.seg,
                    job=job,
                )
            self.sim.schedule_fire(
                self.latency,
                lambda seg=completed: self._emit_result(seg),
                "agg-sweep",
            )

    def _handle_help(self, requester: str, seg: int, job: int = DEFAULT_JOB) -> None:
        """Retransmit a lost result, or escalate the request (§3.3).

        The switch keeps only "simple tasks such as accepting/forwarding
        control messages":

        * if the segment result is cached (the downstream copy was what
          got lost), resend it to the requester alone;
        * otherwise the *aggregation itself* is incomplete — some worker's
          contribution was lost — so relay the Help to the parent switch
          (whose cache may hold the global copy) and to all local members,
          asking them to retransmit their contribution for that segment.
          Workers store recent commits and resend; duplicate suppression
          in the engine (dedup mode) makes the retransmissions idempotent.
        """
        state = self.jobs.get(job)
        cached = state.engine.cached_result(seg)
        if cached is not None:
            cached.job = job
            self._send_data(requester, cached, downstream=True)
            return
        if self.parent_address is not None:
            self._send_control(
                self.parent_address, ControlMessage(Action.HELP, seg, job=job)
            )
        for address in state.members.addresses:
            self._send_control(
                address, ControlMessage(Action.HELP, seg, job=job)
            )

    def _ack(self, dst: str, success: bool, job: int = DEFAULT_JOB) -> None:
        self._send_control(dst, ControlMessage(Action.ACK, success, job=job))

    def _send_control(self, dst: str, message: ControlMessage) -> None:
        egress = self.lookup(dst)
        if egress is None:
            self.dropped_packets += 1
            return
        egress.send(make_control_packet(self.name, dst, message))

"""Gradient wire codecs: trading precision for communication time.

The paper transmits gradients in "raw float-point format" (fp32) and cites
bandwidth-oriented follow-ups (GradiVeQ [56]) as complementary.  This
module implements that direction end-to-end: a :class:`GradientCodec`
determines how many bytes each gradient element occupies on the wire, how
a chunk's payload is laid out byte-for-byte (docs/PROTOCOL.md §8), and the
precision loss incurred.

Every codec provides two coupled views of the same quantizer:

* :meth:`GradientCodec.roundtrip` — the *loss model* the simulator applies
  to a whole gradient vector (encode ∘ decode, vectorized, idempotent);
* :meth:`GradientCodec.encode_payload` / :meth:`~GradientCodec.decode_payload`
  — the *wire format* of one chunk's payload, used by the byte codec in
  :mod:`repro.core.protocol` for the live UDP backend.

Both views quantize onto the same value grid, so a simulated run and a
live run of the same experiment see bit-identical numerics (the sim↔live
conformance suite asserts this per codec).

``int32-bs`` follows SwitchML (Sapio et al.): switch dataplanes cannot sum
floats, so the wire carries block-scaled integer mantissas that the switch
sums in int32 accumulators.  Integer addition is associative, which makes
this codec's in-switch summation *order independent* — fp32 summation is
not (see DESIGN.md §12 and ``canonical_order`` on the aggregation engine).

===========  =====  ===  ==================================================
Codec        B/elt  Tag  Scheme
===========  =====  ===  ==================================================
``fp32``       4     0   identity (the paper's format)
``fp16``       2     1   IEEE half precision
``int8``       1     --  linear quantization, one fp32 scale per vector
``int32-bs``   2     2   block-scaled integer mantissas, int32 summation
``topk``       4     3   per-frame top-k sparsification, index+value pairs
===========  =====  ===  ==================================================

``Tag`` is the 2-bit numerics tag carried in the low bits of the data ToS
byte (``--`` = simulator-only loss model, no wire format).  ``B/elt`` is
the wire width a :class:`~repro.core.protocol.SegmentPlan` models; codecs
with a per-frame scale/count word also declare ``frame_overhead`` bytes.

Examples
--------
Quantization is idempotent and exact on its own grid:

>>> import numpy as np
>>> codec = get_codec("int32-bs")
>>> x = np.array([0.5, -0.25, 3.14159], dtype=np.float32)
>>> once = codec.roundtrip(x)
>>> np.array_equal(codec.roundtrip(once), once)
True
>>> float(np.max(np.abs(once - x))) <= 2.0 ** -(codec.exponent + 1)
True

The wire format round-trips through the same grid:

>>> payload = codec.encode_payload(x)
>>> len(payload)  # 4-byte scale word + 2 bytes per element
10
>>> np.array_equal(codec.decode_payload(payload), once)
True

Top-k keeps only the ``ceil(n/4)`` largest-magnitude elements per frame:

>>> topk = get_codec("topk")
>>> sparse = topk.roundtrip(
...     np.array([4.0, -0.1, 0.2, -9.0, 5.5], dtype=np.float32))
>>> sparse.tolist()
[0.0, 0.0, 0.0, -9.0, 5.5]
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from .protocol import ProtocolError, SEG_PAYLOAD_BYTES

__all__ = [
    "GradientCodec",
    "Float32Codec",
    "Float16Codec",
    "Int8Codec",
    "Int32BlockScaledCodec",
    "TopKCodec",
    "get_codec",
    "codec_for_tag",
    "CODECS",
    "WIRE_CODECS",
]


class GradientCodec:
    """Base: a named element width, a wire layout, and a loss model."""

    name: str = "base"
    #: Wire bytes one gradient element occupies (the SegmentPlan width).
    bytes_per_element: int = 4
    #: Extra payload bytes per frame (scale/count words), before elements.
    frame_overhead: int = 0
    #: 2-bit numerics tag in the data ToS byte, or ``None`` for codecs
    #: that are simulator-only loss models without a wire format.
    wire_tag: Optional[int] = None
    #: True when the aggregation engine may sum this codec's contributions
    #: in integer accumulators (see ``AggregationEngine``).
    integer_sum: bool = False
    #: True when in-switch summation of this codec's frames is exactly
    #: order independent (integer addition), so the live switch needs no
    #: ``canonical_order`` to stay bit-comparable with the simulator.
    order_independent: bool = False

    @property
    def elements_per_frame(self) -> int:
        """Gradient elements one real wire frame can carry."""
        return (SEG_PAYLOAD_BYTES - self.frame_overhead) // self.bytes_per_element

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        """Apply the codec's quantization loss (encode ∘ decode).

        Returns float32; must be idempotent (a fixed point of itself) and
        must equal per-frame ``decode_payload(encode_payload(...))`` so
        the simulator and the live backend see identical values.
        """
        raise NotImplementedError

    def finalize_sum(self, total: np.ndarray) -> np.ndarray:
        """Post-process a completed aggregate before it leaves the switch.

        Models the rounding the *downstream* wire format imposes on the
        result: identity for fp32/topk (results travel as raw float32
        values), fp16 rounds the sum onto the half-precision grid, and
        ``int32-bs`` renormalizes the integer sum back into the 16-bit
        downstream mantissa range.  Applying it in the simulator keeps
        sim aggregates bit-identical to what live workers decode.
        """
        return total

    def encode_payload(self, data: np.ndarray, downstream: bool = False) -> bytes:
        """Serialize one chunk's float32 data to its wire payload bytes
        (everything after the 8-byte Seg header)."""
        raise ProtocolError(f"codec {self.name!r} has no wire format")

    def decode_payload(
        self, payload: bytes, downstream: bool = False
    ) -> np.ndarray:
        """Parse one chunk's payload bytes back to a dense float32 array.

        Malformed payloads raise :class:`ProtocolError`.
        """
        raise ProtocolError(f"codec {self.name!r} has no wire format")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class Float32Codec(GradientCodec):
    """Identity: the paper's raw fp32 wire format."""

    name = "fp32"
    bytes_per_element = 4
    wire_tag = 0

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        return np.asarray(vector, dtype=np.float32)

    def encode_payload(self, data: np.ndarray, downstream: bool = False) -> bytes:
        return np.asarray(data, dtype="<f4").tobytes()

    def decode_payload(
        self, payload: bytes, downstream: bool = False
    ) -> np.ndarray:
        if len(payload) % 4:
            raise ProtocolError(
                f"fp32 payload of {len(payload)} B is not whole float32 elements"
            )
        return np.frombuffer(payload, dtype="<f4").astype(np.float32)


class Float16Codec(GradientCodec):
    """IEEE half precision: 2 bytes/element, ~3 decimal digits.

    fp16→fp32 conversion is exact, so decoded values re-encode to the
    identical bytes; only the first encode rounds.
    """

    name = "fp16"
    bytes_per_element = 2
    wire_tag = 1

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        # Values beyond ±65504 overflow to ±inf — intended, not an error.
        with np.errstate(over="ignore"):
            return np.asarray(vector, dtype=np.float16).astype(np.float32)

    def finalize_sum(self, total: np.ndarray) -> np.ndarray:
        # A sum of fp16-grid values is not itself on the fp16 grid
        # (e.g. 1.0 + 2**-11); the downstream frames round it there, so
        # the engine must model that or sim and live would diverge.
        return self.roundtrip(total)

    def encode_payload(self, data: np.ndarray, downstream: bool = False) -> bytes:
        with np.errstate(over="ignore"):
            return np.asarray(data, dtype="<f2").tobytes()

    def decode_payload(
        self, payload: bytes, downstream: bool = False
    ) -> np.ndarray:
        if len(payload) % 2:
            raise ProtocolError(
                f"fp16 payload of {len(payload)} B is not whole float16 elements"
            )
        if len(payload) > SEG_PAYLOAD_BYTES:
            raise ProtocolError(
                f"fp16 payload of {len(payload)} B exceeds one frame"
            )
        return np.frombuffer(payload, dtype="<f2").astype(np.float32)


class Int8Codec(GradientCodec):
    """Linear int8 quantization with a per-vector fp32 scale.

    ``q = round(x / scale)`` with ``scale = max|x| / 127``; zero vectors
    pass through untouched.  The scale itself costs 4 bytes per vector —
    negligible against the 4x element shrink, and the wire model's
    per-frame Seg header already dwarfs it.

    The scale is *data dependent*, so contributions from different workers
    land on different grids and cannot be summed as integers — this codec
    stays a simulator-only loss model (no wire tag); ``int32-bs`` is the
    switch-summable fixed-point format.
    """

    name = "int8"
    bytes_per_element = 1

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float32)
        peak = float(np.abs(vector).max()) if vector.size else 0.0
        if peak == 0.0:
            return vector.copy()
        scale = peak / 127.0
        quantized = np.clip(np.rint(vector / scale), -127, 127)
        return (quantized * scale).astype(np.float32)


class Int32BlockScaledCodec(GradientCodec):
    """Block-scaled integers summed in int32 accumulators (SwitchML-style).

    Every value is a mantissa on the fixed grid ``2**-exponent``:

    * **upstream** frames carry a 4-byte scale word (= ``exponent``) and
      int16 mantissas ``m = clip(round(x * 2**e), ±32767)`` — 2 B/element,
      half the fp32 wire;
    * the switch widens mantissas to **int32 accumulators** and sums them.
      Integer addition is associative, so the aggregate is independent of
      packet arrival order — no ``canonical_order`` needed;
    * a completed sum is renormalized with an arithmetic right shift of
      ``sum_shift`` bits (:meth:`finalize_sum`) so it fits int16 again,
      and **downstream** frames carry scale word ``exponent - sum_shift``
      with int16 mantissas — results travel at 2 B/element too.

    With the defaults (``exponent=12``, ``sum_shift=4``) the representable
    range is ±8.0 at 2**-12 ≈ 2.4e-4 resolution, exact for up to
    ``2**sum_shift = 16`` contributors; beyond that the downstream encode
    saturates.  Out-of-range values saturate and NaN quantizes to 0 (a
    switch ALU has no NaN).  All sums of ≤512 contributions stay below
    2**24 mantissa units, where fp32 addition of grid values is *exact* —
    so the engine's float path, its int32 path, and the live switch agree
    bit for bit (DESIGN.md §12).
    """

    name = "int32-bs"
    bytes_per_element = 2
    frame_overhead = 4  # the per-chunk scale word
    wire_tag = 2
    integer_sum = True
    order_independent = True

    def __init__(self, exponent: int = 12, sum_shift: int = 4) -> None:
        if not 1 <= exponent <= 24:
            raise ValueError(f"exponent must be in [1, 24], got {exponent}")
        if not 0 <= sum_shift < exponent:
            raise ValueError(
                f"sum_shift must be in [0, exponent), got {sum_shift}"
            )
        self.exponent = exponent
        self.sum_shift = sum_shift

    _M_MAX = 32767  # int16 saturation bound

    def _mantissa(self, vector: np.ndarray, exponent: int) -> np.ndarray:
        x = np.asarray(vector, dtype=np.float32)
        scaled = np.where(np.isnan(x), 0.0, x).astype(np.float64)
        scaled *= float(1 << exponent)
        return np.clip(
            np.rint(scaled), -self._M_MAX, self._M_MAX
        ).astype(np.int32)

    @staticmethod
    def _dequantize(mantissa: np.ndarray, exponent: int) -> np.ndarray:
        return mantissa.astype(np.float32) * np.float32(2.0 ** -exponent)

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        return self._dequantize(
            self._mantissa(vector, self.exponent), self.exponent
        )

    # -- aggregation hooks (see AggregationEngine) ----------------------
    def engine_ingest(self, data: np.ndarray) -> np.ndarray:
        """Contribution values → int32 mantissas (exact: data is on-grid)."""
        return self._mantissa(data, self.exponent)

    def engine_emit(self, accumulator: np.ndarray) -> np.ndarray:
        """Integer sum → renormalized float32 result (the downstream grid)."""
        shifted = np.clip(
            accumulator >> self.sum_shift, -self._M_MAX, self._M_MAX
        )
        return self._dequantize(shifted, self.exponent - self.sum_shift)

    def finalize_sum(self, total: np.ndarray) -> np.ndarray:
        # The float sum of on-grid contributions is exact (< 2**24 mantissa
        # units), so recovering the integer sum loses nothing.
        mantissa_sum = np.rint(
            np.asarray(total, dtype=np.float64) * float(1 << self.exponent)
        ).astype(np.int64)
        return self.engine_emit(mantissa_sum)

    # -- wire format (PROTOCOL.md §8.3) ---------------------------------
    def encode_payload(self, data: np.ndarray, downstream: bool = False) -> bytes:
        exponent = self.exponent - self.sum_shift if downstream else self.exponent
        mantissa = self._mantissa(data, exponent)
        return struct.pack("<i", exponent) + mantissa.astype("<i2").tobytes()

    def decode_payload(
        self, payload: bytes, downstream: bool = False
    ) -> np.ndarray:
        if len(payload) < 4:
            raise ProtocolError(
                f"int32-bs payload of {len(payload)} B lacks its scale word"
            )
        if (len(payload) - 4) % 2:
            raise ProtocolError(
                f"int32-bs payload of {len(payload)} B is not whole mantissas"
            )
        if len(payload) > SEG_PAYLOAD_BYTES:
            raise ProtocolError(
                f"int32-bs payload of {len(payload)} B exceeds one frame"
            )
        scale = struct.unpack_from("<i", payload)[0]
        expected = self.exponent - self.sum_shift if downstream else self.exponent
        if scale != expected:
            raise ProtocolError(
                f"int32-bs scale word {scale} != configured exponent {expected}"
            )
        mantissa = np.frombuffer(payload, dtype="<i2", offset=4).astype(np.int32)
        return self._dequantize(mantissa, scale)


class TopKCodec(GradientCodec):
    """Per-frame top-k sparsification with index+value pairs.

    Upstream, each frame keeps only the ``k = ceil(n/4)`` largest-magnitude
    elements of its ``n`` dense elements (ties broken toward the lower
    index; NaN counts as largest).  The payload is self-describing::

        u16 dense_n | u16 k | k × u16 index (strictly increasing) | k × f4

    When ``k == dense_n`` the index array is omitted and the values are the
    full dense frame — the form every *downstream* (result) frame uses,
    since an aggregate is the union of the workers' k-sets and therefore
    dense.  The ``bytes_per_element = 4`` plan width models that downstream
    footprint; actual upstream frames are ~2.6x smaller (6 bytes per kept
    element).  Values themselves stay exact fp32, so the only loss is the
    zeroed (1 - 1/4) tail of each frame.
    """

    name = "topk"
    bytes_per_element = 4
    frame_overhead = 4  # the per-chunk dense_n/k count words
    wire_tag = 3
    #: Kept fraction of each frame's elements.
    ratio = 0.25

    #: Dense elements per real wire frame — also the block size
    #: :meth:`roundtrip` sparsifies over, so simulated chunking (several
    #: frames per chunk) selects exactly what live per-frame encoding does.
    BLOCK = (SEG_PAYLOAD_BYTES - 4) // 4  # 365

    @staticmethod
    def _k_for(n: int) -> int:
        return -(-n // 4)  # ceil(n * ratio) with ratio = 1/4

    @staticmethod
    def _select(block: np.ndarray, k: int) -> np.ndarray:
        magnitude = np.abs(block)
        magnitude = np.where(np.isnan(magnitude), np.inf, magnitude)
        order = np.argsort(-magnitude, kind="stable")[:k]
        return np.sort(order)

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float32)
        out = np.zeros_like(vector)
        for start in range(0, vector.size, self.BLOCK):
            block = vector[start : start + self.BLOCK]
            idx = self._select(block, self._k_for(block.size))
            out[start : start + self.BLOCK][idx] = block[idx]
        return out

    # -- wire format (PROTOCOL.md §8.4) ---------------------------------
    def encode_payload(self, data: np.ndarray, downstream: bool = False) -> bytes:
        data = np.asarray(data, dtype=np.float32)
        n = data.size
        if not 1 <= n <= self.BLOCK:
            raise ProtocolError(
                f"topk frame must carry 1..{self.BLOCK} elements, got {n}"
            )
        k = n if downstream else min(n, self._k_for(n))
        if k >= n:  # dense form: index array omitted
            return struct.pack("<HH", n, n) + data.astype("<f4").tobytes()
        idx = self._select(data, k)
        return (
            struct.pack("<HH", n, k)
            + idx.astype("<u2").tobytes()
            + data[idx].astype("<f4").tobytes()
        )

    def decode_payload(
        self, payload: bytes, downstream: bool = False
    ) -> np.ndarray:
        if len(payload) < 4:
            raise ProtocolError(
                f"topk payload of {len(payload)} B lacks its count words"
            )
        n, k = struct.unpack_from("<HH", payload)
        if not 1 <= n <= self.BLOCK:
            raise ProtocolError(
                f"topk dense_n {n} outside 1..{self.BLOCK}"
            )
        if k > n:
            raise ProtocolError(f"topk k {k} exceeds dense_n {n}")
        if k == n:  # dense form
            if len(payload) != 4 + 4 * n:
                raise ProtocolError(
                    f"dense topk payload must be {4 + 4 * n} B, got {len(payload)}"
                )
            return np.frombuffer(payload, dtype="<f4", offset=4).astype(
                np.float32
            )
        if len(payload) != 4 + 6 * k:
            raise ProtocolError(
                f"sparse topk payload must be {4 + 6 * k} B, got {len(payload)}"
            )
        idx = np.frombuffer(payload, dtype="<u2", offset=4, count=k).astype(
            np.int64
        )
        if idx.size and (idx[-1] >= n or np.any(np.diff(idx) <= 0)):
            raise ProtocolError(
                "topk indices must be strictly increasing and < dense_n"
            )
        values = np.frombuffer(payload, dtype="<f4", offset=4 + 2 * k, count=k)
        out = np.zeros(n, dtype=np.float32)
        out[idx] = values
        return out


CODECS = {
    codec.name: codec
    for codec in (
        Float32Codec(),
        Float16Codec(),
        Int8Codec(),
        Int32BlockScaledCodec(),
        TopKCodec(),
    )
}

#: Codecs with a wire format, keyed by their 2-bit ToS numerics tag.
WIRE_CODECS = {
    codec.wire_tag: codec
    for codec in CODECS.values()
    if codec.wire_tag is not None
}


def get_codec(name: str) -> GradientCodec:
    """Look up a codec by name (fp32 | fp16 | int8 | int32-bs | topk)."""
    try:
        return CODECS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; choose from {sorted(CODECS)}"
        ) from None


def codec_for_tag(tag: int) -> GradientCodec:
    """Look up a wire codec by its ToS numerics tag."""
    try:
        return WIRE_CODECS[tag]
    except KeyError:
        raise ProtocolError(f"unknown numerics tag {tag}") from None

"""Gradient wire codecs: trading precision for communication time.

The paper transmits gradients in "raw float-point format" (fp32) and cites
bandwidth-oriented follow-ups (GradiVeQ [56]) as complementary.  This
extension implements that direction: a :class:`GradientCodec` determines
how many bytes each gradient element occupies on the wire, and the
precision loss incurred.

The simulated accelerator dequantizes on ingest and accumulates in fp32
(as an FPGA datapath with widening converters would), so codecs compose
with in-switch aggregation: the *wire* shrinks, the summation math keeps
fp32 dynamics, and the only error is the encode-side rounding — which
:meth:`GradientCodec.roundtrip` applies so training feels exactly the
precision that reached the switch.

===========  =====  ==================================================
Codec        B/elt  Scheme
===========  =====  ==================================================
``fp32``       4    identity (the paper's format)
``fp16``       2    IEEE half precision
``int8``       1    linear quantization, one fp32 scale per vector
===========  =====  ==================================================
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GradientCodec",
    "Float32Codec",
    "Float16Codec",
    "Int8Codec",
    "get_codec",
    "CODECS",
]


class GradientCodec:
    """Base: a named element width plus a precision-loss model."""

    name: str = "base"
    bytes_per_element: int = 4

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        """Apply the codec's quantization loss (encode ∘ decode).

        Returns float32; must be idempotent (a fixed point of itself).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class Float32Codec(GradientCodec):
    """Identity: the paper's raw fp32 wire format."""

    name = "fp32"
    bytes_per_element = 4

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        return np.asarray(vector, dtype=np.float32)


class Float16Codec(GradientCodec):
    """IEEE half precision: 2 bytes/element, ~3 decimal digits."""

    name = "fp16"
    bytes_per_element = 2

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        return np.asarray(vector, dtype=np.float16).astype(np.float32)


class Int8Codec(GradientCodec):
    """Linear int8 quantization with a per-vector fp32 scale.

    ``q = round(x / scale)`` with ``scale = max|x| / 127``; zero vectors
    pass through untouched.  The scale itself costs 4 bytes per vector —
    negligible against the 4x element shrink, and the wire model's
    per-frame Seg header already dwarfs it.
    """

    name = "int8"
    bytes_per_element = 1

    def roundtrip(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float32)
        peak = float(np.abs(vector).max()) if vector.size else 0.0
        if peak == 0.0:
            return vector.copy()
        scale = peak / 127.0
        quantized = np.clip(np.rint(vector / scale), -127, 127)
        return (quantized * scale).astype(np.float32)


CODECS = {
    codec.name: codec
    for codec in (Float32Codec(), Float16Codec(), Int8Codec())
}


def get_codec(name: str) -> GradientCodec:
    """Look up a codec by name (fp32 | fp16 | int8)."""
    try:
        return CODECS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; choose from {sorted(CODECS)}"
        ) from None

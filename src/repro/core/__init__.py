"""The paper's primary contribution: the iSwitch in-switch aggregation
system — protocol, accelerator, extended switch, control plane, worker
client, and rack-scale hierarchical aggregation.
"""

from .accelerator import (
    AcceleratorTiming,
    AggregationEngine,
    AggregationStats,
    VectorGranularityEngine,
)
from .client import AggregationClient
from .compression import (
    CODECS,
    WIRE_CODECS,
    Float16Codec,
    Float32Codec,
    GradientCodec,
    Int8Codec,
    Int32BlockScaledCodec,
    TopKCodec,
    codec_for_tag,
    get_codec,
)
from .control_plane import MemberEntry, MembershipTable, MemberType
from .hierarchy import aggregation_switches, configure_aggregation, iswitch_factory
from .jobs import DEFAULT_JOB, JobState, JobTable
from .protocol import (
    FLOAT_BYTES,
    FLOATS_PER_SEGMENT,
    ISWITCH_TOS_VALUES,
    ISWITCH_UDP_PORT,
    SEG_HEADER_BYTES,
    SEG_PAYLOAD_BYTES,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    TOS_NUMERICS_MASK,
    Action,
    ControlMessage,
    DataSegment,
    SegmentPlan,
    make_control_packet,
    make_data_packet,
)
from .switch import ISwitch

__all__ = [
    "ISwitch",
    "AggregationEngine",
    "AggregationStats",
    "VectorGranularityEngine",
    "AcceleratorTiming",
    "AggregationClient",
    "GradientCodec",
    "Float32Codec",
    "Float16Codec",
    "Int8Codec",
    "Int32BlockScaledCodec",
    "TopKCodec",
    "get_codec",
    "codec_for_tag",
    "CODECS",
    "WIRE_CODECS",
    "JobTable",
    "JobState",
    "DEFAULT_JOB",
    "MembershipTable",
    "MemberEntry",
    "MemberType",
    "SegmentPlan",
    "DataSegment",
    "ControlMessage",
    "Action",
    "configure_aggregation",
    "aggregation_switches",
    "iswitch_factory",
    "make_control_packet",
    "make_data_packet",
    "TOS_CONTROL",
    "TOS_DATA_UP",
    "TOS_DATA_DOWN",
    "TOS_NUMERICS_MASK",
    "ISWITCH_TOS_VALUES",
    "ISWITCH_UDP_PORT",
    "SEG_HEADER_BYTES",
    "SEG_PAYLOAD_BYTES",
    "FLOATS_PER_SEGMENT",
    "FLOAT_BYTES",
]

"""The in-switch gradient-aggregation accelerator (paper §3.3, Figure 7).

The hardware pipeline — Separator → Seg Decoder → Seg Counter / Addr
Generator → parallel fp32 adders → Buffers → Output Module — reduces to a
simple invariant we model exactly:

    For every ``Seg`` index the accelerator keeps an accumulation buffer
    and a counter.  Each arriving contribution is summed into the buffer
    and bumps the counter; when the counter reaches the aggregation
    threshold **H**, the summed segment is emitted, the buffer is zeroed,
    and the counter resets.

This is aggregation **on the fly at packet granularity** (Figure 8b):
a segment can complete and ship downstream while later segments of the
same gradient vectors are still in flight.

Timing model
------------
The NetFPGA implementation processes one 256-bit bus burst per cycle at
200 MHz, with eight fp32 adders consuming a burst per cycle (§3.5).  A
packet with ``B`` payload bytes therefore occupies the accelerator for
``ceil(B / 32)`` cycles of 5 ns, plus a small fixed pipeline depth.  At
1464-byte segments this is ~235 ns — far below a 10 GbE serialization
time of ~1.2 µs, which is why the accelerator is a "bump in the wire"
that never backs up the ingress (the model still accounts the latency).

Resource note: the real accelerator consumed an extra 18.6 % LUTs,
17.3 % FFs, 44.5 % BRAM and 17 DSP slices over the NetFPGA reference
switch; a software model has no analogue, so those figures live only in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from .protocol import DataSegment

__all__ = [
    "AcceleratorTiming",
    "AggregationEngine",
    "AggregationStats",
    "VectorGranularityEngine",
]

#: 256-bit internal AXI4-Stream bus → 32 bytes per burst (§3.5).
BUS_BYTES_PER_CYCLE = 32
#: 200 MHz accelerator clock (§3.5).
CLOCK_HZ = 200e6
#: Fixed pipeline depth (separator, decoder, output concat), in cycles.
PIPELINE_CYCLES = 8


@dataclass(frozen=True)
class AcceleratorTiming:
    """Deterministic latency model for the accelerator datapath."""

    bus_bytes_per_cycle: int = BUS_BYTES_PER_CYCLE
    clock_hz: float = CLOCK_HZ
    pipeline_cycles: int = PIPELINE_CYCLES

    def processing_latency(self, payload_bytes: int) -> float:
        """Seconds the accelerator needs to ingest+sum one packet payload."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
        bursts = -(-payload_bytes // self.bus_bytes_per_cycle)  # ceil
        return (bursts + self.pipeline_cycles) / self.clock_hz


@dataclass
class AggregationStats:
    """Counters exposed for tests and the benchmark reports."""

    contributions: int = 0
    completions: int = 0
    forced_broadcasts: int = 0
    duplicates_dropped: int = 0
    evictions: int = 0
    max_live_segments: int = 0
    busy_time: float = 0.0


class AggregationEngine:
    """Seg-indexed sum/count buffers with threshold-H completion.

    Parameters
    ----------
    threshold:
        H — how many contributions complete a segment.  Defaults to the
        number of child nodes, set later via :meth:`set_threshold` (the
        ``SetH`` control message).
    dedup:
        When true, contributions are deduplicated on ``(sender,
        commit_id)`` per segment, making retransmission after packet loss
        idempotent.  The real accelerator is a pure counter (the paper
        offloads loss handling to workers); dedup mode exists for the
        loss-recovery tests and is off by default.
    cache_size:
        How many completed segments to keep for ``Help`` retransmission.
    canonical_order:
        When true, contributions are *held* per segment and summed only at
        completion, in canonical sender order (rank order) rather than
        arrival order.  float32 addition is not associative, so the
        default on-the-fly engine's sums depend on which packet arrived
        first; canonical order makes the sum a pure function of the
        contributions.  The live UDP backend (nondeterministic arrival)
        always runs canonical, and the simulator can opt in
        (``ExperimentConfig(deterministic_aggregation=True)``) so sim and
        live produce bit-identical results.  Off by default: on-the-fly
        summation is the paper's datapath and the golden regressions pin
        its numerics.
    buffer_limit:
        Maximum number of live (partially aggregated) segments, modelling
        the bounded on-chip BRAM.  When exceeded, the *oldest* (lowest
        Seg) buffers are evicted — in asynchronous training these are
        contributions to rounds that already completed and can never
        reach H again, so dropping them is both necessary and harmless
        (the committing worker's gradient is simply lost, which bounded-
        staleness training tolerates by design).  ``None`` disables.
    codec:
        The :class:`~repro.core.compression.GradientCodec` whose numerics
        this engine aggregates (``None`` = the paper's fp32 datapath,
        bit-identical to the pre-codec engine).  A codec with
        ``integer_sum`` (``int32-bs``) switches the in-place path to
        **int32 mantissa accumulators** — the summation a switch dataplane
        actually performs (SwitchML) — and every completion passes through
        the codec's ``finalize_sum``/``engine_emit`` renormalization.
        Integer summation is order independent, so this mode needs no
        ``canonical_order`` to be reproducible; with ``canonical_order``
        the float path is used instead (exact on the codec grid, hence
        bit-identical to the integer path — see DESIGN.md §12).
    """

    def __init__(
        self,
        threshold: int = 1,
        dedup: bool = False,
        cache_size: int = 4096,
        timing: Optional[AcceleratorTiming] = None,
        buffer_limit: Optional[int] = None,
        canonical_order: bool = False,
        codec=None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold H must be >= 1, got {threshold}")
        if buffer_limit is not None and buffer_limit < 1:
            raise ValueError(f"buffer_limit must be >= 1, got {buffer_limit}")
        self.threshold = threshold
        self.dedup = dedup
        self.cache_size = cache_size
        self.buffer_limit = buffer_limit
        self.canonical_order = canonical_order
        self.codec = codec
        #: Integer-accumulate mode: in-place buffers hold int32 mantissas.
        self._int_sum = bool(
            codec is not None and codec.integer_sum and not canonical_order
        )
        self.timing = timing or AcceleratorTiming()
        self.stats = AggregationStats()
        #: When set to the plan's chunk count, incoming Seg numbers are
        #: renumbered by *arrival order*: the i-th group of H contributions
        #: to a chunk offset forms aggregation round i, regardless of which
        #: worker sent them.  This realizes asynchronous training's
        #: "sum-reduce the next H gradient vectors received" semantics
        #: (Algorithm 1): a fast worker's second commit can complete a
        #: round a slow worker never contributed to.  ``None`` (default)
        #: keeps the sender-assigned Seg numbers (synchronous training).
        self.arrival_renumber: Optional[int] = None
        self._arrivals: Dict[int, int] = {}
        self._shapes: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        self._buffers: Dict[int, np.ndarray] = {}
        #: canonical_order mode: contributions held until completion, as
        #: (sender, commit_id, private float32 copy) tuples.
        self._pending: Dict[int, List[Tuple[str, int, np.ndarray]]] = {}
        self._counters: Dict[int, int] = {}
        self._latency_cache: Dict[int, float] = {}
        self._contributors: Dict[int, Set[Tuple[str, int]]] = {}
        self._result_cache: Dict[int, DataSegment] = {}
        #: Telemetry hook: when the owning switch sets a clock, the engine
        #: stamps each segment's first arrival so completions can be
        #: reported as first-arrival -> complete spans.  ``None`` (the
        #: default) keeps the datapath entirely timestamp-free.
        self.clock: Optional[Callable[[], float]] = None
        self._first_arrival: Dict[int, float] = {}
        self._completed_starts: Dict[int, float] = {}
        #: Vectorized-ingest bookkeeping for the batched transport path:
        #: base Seg -> (n, round buffer, per-seg views into it).  Only
        #: populated by :meth:`_contribute_batch_fast`; every entry's
        #: validity is re-checked by identity against ``_buffers`` on each
        #: train, so interleaved per-packet traffic can never corrupt it.
        self._vec_rounds: Dict[int, Tuple[int, np.ndarray, List[np.ndarray]]] = {}

    # ------------------------------------------------------------------
    # Control-plane operations
    # ------------------------------------------------------------------
    def set_threshold(self, threshold: int) -> None:
        """Handle ``SetH``: change the aggregation threshold."""
        if threshold < 1:
            raise ValueError(f"threshold H must be >= 1, got {threshold}")
        self.threshold = threshold

    def reset(self) -> None:
        """Handle ``Reset``: clear all buffers, counters and caches.

        In arrival-renumber (asynchronous) mode the per-chunk arrival
        counters survive a reset: they define the renumbering *epoch*
        shared with the workers, and restarting them at zero would remap
        post-reset traffic onto round numbers the workers have already
        consumed.  Partial sums, dedup sets and the Help cache are state
        of in-flight rounds and are dropped either way — that is the
        recovery the Reset exists for.
        """
        self._buffers.clear()
        self._pending.clear()
        self._counters.clear()
        self._contributors.clear()
        self._result_cache.clear()
        if self.arrival_renumber is None:
            self._arrivals.clear()
        self._shapes.clear()
        self._first_arrival.clear()
        self._completed_starts.clear()
        self._vec_rounds.clear()

    def sweep_completed(self) -> List[DataSegment]:
        """Emit every live segment whose counter already meets the threshold.

        ``contribute`` only checks completion when a packet arrives, so a
        ``SetH`` that *lowers* H (e.g. after a worker ``Leave``) can leave
        segments stranded at ``count >= threshold`` with no future arrival
        to trigger them.  The switch calls this after every threshold
        change; the returned segments are emitted exactly as if their last
        contribution had just landed.
        """
        ready = [
            seg
            for seg, count in self._counters.items()
            if count >= self.threshold
        ]
        return [self._complete(seg) for seg in sorted(ready)]

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def contribute(self, segment: DataSegment) -> Optional[DataSegment]:
        """Sum one incoming contribution.

        Returns the completed (fully aggregated) segment when this
        contribution is the H-th, else ``None``.
        """
        seg = segment.seg
        if self.arrival_renumber is not None:
            n_chunks = self.arrival_renumber
            chunk = seg % n_chunks
            order = self._arrivals.get(chunk, 0)
            self._arrivals[chunk] = order + 1
            seg = (order // self.threshold) * n_chunks + chunk
            segment = DataSegment(
                seg=seg,
                data=segment.data,
                sender=segment.sender,
                commit_id=segment.commit_id,
                wire_payload=segment.wire_payload,
                wire_frames=segment.wire_frames,
            )
        if self.dedup:
            key = (segment.sender, segment.commit_id)
            contributors = self._contributors.setdefault(seg, set())
            if key in contributors:
                self.stats.duplicates_dropped += 1
                return None
            contributors.add(key)

        stats = self.stats
        stats.contributions += 1
        if self.clock is not None and seg not in self._first_arrival:
            self._first_arrival[seg] = self.clock()
        if segment.wire_payload is not None and seg not in self._shapes:
            self._shapes[seg] = (segment.wire_payload, segment.wire_frames)
        if self.canonical_order:
            entries = self._pending.setdefault(seg, [])
            if entries and entries[0][2].shape != segment.data.shape:
                raise ValueError(
                    f"segment {seg}: contribution shape {segment.data.shape} "
                    f"!= held shape {entries[0][2].shape}"
                )
            entries.append(
                (
                    segment.sender,
                    segment.commit_id,
                    np.array(segment.data, dtype=np.float32),
                )
            )
            self._counters[seg] = len(entries)
            n_live = len(self._pending)
            if n_live > stats.max_live_segments:
                stats.max_live_segments = n_live
            if len(entries) >= self.threshold:
                return self._complete(seg)
            if self.buffer_limit is not None and n_live > self.buffer_limit:
                self._evict_oldest()
            return None
        buffer = self._buffers.get(seg)
        if buffer is None:
            # First arrival provides the buffer (the hardware keeps it
            # zeroed; starting from the first contribution is equivalent
            # and bounds memory by the number of *live* segments,
            # mirroring the BRAM budget).  A writable float32 array is
            # adopted as-is — later contributions sum into it in place —
            # so the common case moves zero bytes.  Senders that must not
            # see their gradient mutated (retransmission caches, shared
            # broadcast results) pass a read-only view, which forces the
            # copy here.
            if self._int_sum:
                # Integer datapath: the buffer is the int32 mantissa
                # accumulator a switch ALU actually holds.  Inputs are
                # quantized on ingest; the float array is never adopted.
                self._buffers[seg] = self.codec.engine_ingest(segment.data)
            else:
                data = segment.data
                if data.dtype == np.float32 and data.flags.writeable:
                    self._buffers[seg] = data
                else:
                    self._buffers[seg] = np.array(data, dtype=np.float32)
            self._counters[seg] = 1
        else:
            if buffer.shape != segment.data.shape:
                raise ValueError(
                    f"segment {seg}: contribution shape {segment.data.shape} "
                    f"!= buffer shape {buffer.shape}"
                )
            if self._int_sum:
                buffer += self.codec.engine_ingest(segment.data)
            else:
                buffer += segment.data
            self._counters[seg] += 1

        n_live = len(self._buffers)
        if n_live > stats.max_live_segments:
            stats.max_live_segments = n_live
        if self._counters[seg] >= self.threshold:
            return self._complete(seg)
        if self.buffer_limit is not None and len(self._buffers) > self.buffer_limit:
            self._evict_oldest()
        return None

    def contribute_batch(
        self, segments, clocks=None
    ) -> List[Tuple[int, DataSegment]]:
        """Batch-ingest a train's worth of contributions in one call.

        Semantically exactly ``[contribute(s) for s in segments]`` — same
        per-segment state transitions, same float32 summation order — but
        one entry point for the batched transport path.  Returns
        ``(index, completed)`` pairs: which input triggered each completed
        segment (vector-granularity engines may emit several per input).

        ``clocks`` (optional, one float per segment) stamps each
        contribution with its own carried arrival time instead of the
        shared :attr:`clock` — a train is delivered in one simulator
        event, so ``clock()`` would report the *last* packet's arrival
        for every first-arrival record.
        """
        if clocks is None and self.clock is None:
            fast = self._contribute_batch_fast(segments)
            if fast is not None:
                return fast
        out: List[Tuple[int, DataSegment]] = []
        contribute = self.contribute
        if clocks is None:
            for i, segment in enumerate(segments):
                result = contribute(segment)
                if result is None:
                    continue
                if isinstance(result, list):
                    for completed in result:
                        out.append((i, completed))
                else:
                    out.append((i, result))
            return out
        saved_clock = self.clock
        try:
            for i, segment in enumerate(segments):
                self.clock = lambda t=clocks[i]: t
                result = contribute(segment)
                if result is None:
                    continue
                if isinstance(result, list):
                    for completed in result:
                        out.append((i, completed))
                else:
                    out.append((i, result))
        finally:
            self.clock = saved_clock
        return out

    def _contribute_batch_fast(self, segments) -> Optional[List[Tuple[int, DataSegment]]]:
        """Vectorized ingest for the dominant train shape, or ``None``.

        The hot case is one worker's (or one child switch's) whole round
        as a train: ``n`` consecutive Seg numbers, all float32, all at the
        same contribution count.  Summing then collapses to a single
        ``concatenate`` + one in-place add on a round-contiguous buffer —
        bit-identical to the per-segment adds, because every element still
        receives exactly one addition of the same two float32 operands.

        Per-seg ``_buffers`` / ``_counters`` entries are kept coherent
        (the buffers are views into the round buffer), so interleaved
        per-packet traffic — retransmits, FBcast, mixed transports — works
        unchanged; any train for which those mirrors no longer line up
        (checked by identity below) falls back by returning ``None``.
        """
        if (
            self.dedup
            or self.canonical_order
            or self.arrival_renumber is not None
            or self.buffer_limit is not None
            or self.clock is not None
            or self.codec is not None
        ):
            # (Codec engines need the slow path: int32-bs quantizes on
            # ingest, and every codec's finalize_sum must run per
            # completion — the inlined completion below skips it.)
            return None
        n = len(segments)
        if n < 2:
            return None
        base = segments[0].seg
        counters = self._counters
        buffers = self._buffers
        stats = self.stats
        c0 = counters.get(base, 0)
        if c0 == 0:
            # First train of the round: validate, then adopt one
            # contiguous copy with per-seg views as the buffer mirrors.
            for i, segment in enumerate(segments):
                seg = base + i
                if segment.seg != seg or seg in counters or seg in buffers:
                    return None
                data = segment.data
                if (
                    data.dtype != np.float32
                    or data.ndim != 1
                    or segment.wire_payload is None
                ):
                    return None
            datas = [segment.data for segment in segments]
            buf = np.concatenate(datas)
            shapes = self._shapes
            views: List[np.ndarray] = []
            pos = 0
            for i, segment in enumerate(segments):
                end = pos + datas[i].size
                view = buf[pos:end]
                seg = base + i
                buffers[seg] = view
                counters[seg] = 1
                shapes[seg] = (segment.wire_payload, segment.wire_frames)
                views.append(view)
                pos = end
            count = 1
            self._vec_rounds[base] = (n, buf, views)
            if len(self._vec_rounds) > 256:
                # Rounds that never completed (crashes, evicted jobs);
                # stale entries are harmless but needn't accumulate.
                for old in sorted(self._vec_rounds)[:128]:
                    del self._vec_rounds[old]
        else:
            rec = self._vec_rounds.get(base)
            if rec is None or rec[0] != n:
                return None
            _, buf, views = rec
            for i, segment in enumerate(segments):
                data = segment.data
                view = views[i]
                seg = base + i
                if (
                    segment.seg != seg
                    or counters.get(seg) != c0
                    or buffers.get(seg) is not view
                    or data.dtype != np.float32
                    or data.ndim != 1
                    or data.size != view.size
                ):
                    return None
            buf += np.concatenate([segment.data for segment in segments])
            count = c0 + 1
            for i in range(n):
                counters[base + i] = count
        stats.contributions += n
        n_live = len(buffers)
        if n_live > stats.max_live_segments:
            stats.max_live_segments = n_live
        if count >= self.threshold:
            self._vec_rounds.pop(base, None)
            # Inlined _complete for the whole round: same pops, same
            # per-insert Help-cache eviction check, same counter updates —
            # just without n method-call frames.
            shapes = self._shapes
            first_arrival = self._first_arrival
            contributors = self._contributors
            result_cache = self._result_cache
            cache_size = self.cache_size
            trusted = DataSegment.trusted
            out: List[Tuple[int, DataSegment]] = []
            for i in range(n):
                seg = base + i
                data = buffers.pop(seg)
                counters.pop(seg, None)
                contributors.pop(seg, None)
                started = first_arrival.pop(seg, None)
                if started is not None:
                    self._completed_starts[seg] = started
                    if len(self._completed_starts) > 1024:
                        for old in sorted(self._completed_starts)[:512]:
                            del self._completed_starts[old]
                shape = shapes.pop(seg, (None, None))
                result = trusted(
                    seg, data, wire_payload=shape[0], wire_frames=shape[1]
                )
                result_cache[seg] = result
                if len(result_cache) > cache_size:
                    for key in sorted(result_cache)[: len(result_cache) // 2]:
                        del result_cache[key]
                out.append((i, result))
            stats.completions += n
            return out
        return []

    def _evict_oldest(self) -> None:
        """Drop the stalest partial buffers to honour ``buffer_limit``."""
        store = self._pending if self.canonical_order else self._buffers
        excess = len(store) - self.buffer_limit
        for seg in sorted(store)[:excess]:
            del store[seg]
            self._counters.pop(seg, None)
            self._contributors.pop(seg, None)
            self._shapes.pop(seg, None)
            self._first_arrival.pop(seg, None)
            self.stats.evictions += 1

    def _complete(self, seg: int) -> DataSegment:
        """Emit the summed segment, zero the buffer, reset the counter."""
        if self.canonical_order:
            entries = self._pending.pop(seg)
            # Canonical order: shortest-then-lexicographic sender name, so
            # "worker2" < "worker10", then commit id.  This is rank order
            # for every naming scheme the repo uses.
            entries.sort(key=lambda e: (len(e[0]), e[0], e[1]))
            data = entries[0][2]
            for _, _, contribution in entries[1:]:
                data += contribution
            if self.codec is not None:
                data = self.codec.finalize_sum(data)
        else:
            data = self._buffers.pop(seg)
            if self._int_sum:
                # Renormalize the int32 accumulator back to float32 —
                # bit-identical to finalize_sum() of the exact float sum
                # (DESIGN.md §12), so canonical and integer paths agree.
                data = self.codec.engine_emit(data)
            elif self.codec is not None:
                data = self.codec.finalize_sum(data)
        self._counters.pop(seg, None)
        self._contributors.pop(seg, None)
        started = self._first_arrival.pop(seg, None)
        if started is not None:
            self._completed_starts[seg] = started
            if len(self._completed_starts) > 1024:
                for old in sorted(self._completed_starts)[:512]:
                    del self._completed_starts[old]
        shape = self._shapes.pop(seg, (None, None))
        # Trusted: ``data`` is an adopted contribution array or a float32
        # copy the engine made itself — both already validated.
        result = DataSegment.trusted(
            seg, data, wire_payload=shape[0], wire_frames=shape[1]
        )
        self._cache_result(result)
        self.stats.completions += 1
        return result

    def force_broadcast(self, seg: int) -> Optional[DataSegment]:
        """Handle ``FBcast``: emit a partially aggregated segment now.

        Returns ``None`` if nothing has arrived for ``seg`` (including the
        case where it already completed and was flushed).
        """
        if seg not in self._buffers and seg not in self._pending:
            return None
        self.stats.forced_broadcasts += 1
        return self._complete(seg)

    def cached_result(self, seg: int) -> Optional[DataSegment]:
        """Handle ``Help``: look up a recently completed segment."""
        return self._result_cache.get(seg)

    def consume_span_start(self, seg: int) -> Optional[float]:
        """Telemetry: pop the first-arrival time of a just-completed seg.

        Only populated while :attr:`clock` is set; returns ``None`` when
        telemetry was off (or the record aged out).
        """
        return self._completed_starts.pop(seg, None)

    def pending_count(self, seg: int) -> int:
        """How many contributions segment ``seg`` has so far."""
        return self._counters.get(seg, 0)

    @property
    def live_segments(self) -> int:
        """Number of partially aggregated segments currently buffered."""
        return len(self._buffers) + len(self._pending)

    def processing_latency(self, payload_bytes: int) -> float:
        """Datapath occupancy for a packet of ``payload_bytes`` (seconds)."""
        latency = self._latency_cache.get(payload_bytes)
        if latency is None:
            # Payload sizes come from a fixed SegmentPlan, so in practice
            # this memo holds one or two entries.
            latency = self.timing.processing_latency(payload_bytes)
            self._latency_cache[payload_bytes] = latency
        self.stats.busy_time += latency
        return latency

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cache_result(self, result: DataSegment) -> None:
        self._result_cache[result.seg] = result
        if len(self._result_cache) > self.cache_size:
            # Evict the oldest Seg numbers; they belong to finished rounds.
            for key in sorted(self._result_cache)[: len(self._result_cache) // 2]:
                del self._result_cache[key]


class VectorGranularityEngine(AggregationEngine):
    """The *conventional* aggregation of Figure 8a, for comparison only.

    Instead of emitting each segment the moment its counter reaches H, this
    variant holds completed segments back until **every** segment of the
    gradient vector (all ``n_chunks`` of the round) has fully aggregated —
    i.e. it waits for the arrival of the entire gradient vectors before
    producing output, like a parameter server does.  The difference
    against :class:`AggregationEngine` isolates exactly the benefit the
    paper attributes to on-the-fly aggregation (Figure 8b): overlap of
    summation with transmission.
    """

    def __init__(self, n_chunks: int, **kwargs) -> None:
        super().__init__(**kwargs)
        if n_chunks < 1:
            raise ValueError(f"n_chunks must be >= 1, got {n_chunks}")
        self.n_chunks = n_chunks
        self._held: Dict[int, List[DataSegment]] = {}

    def contribute(self, segment: DataSegment):
        completed = super().contribute(segment)
        if completed is None:
            return None
        round_index = completed.seg // self.n_chunks
        held = self._held.setdefault(round_index, [])
        held.append(completed)
        if len(held) < self.n_chunks:
            return None
        del self._held[round_index]
        return sorted(held, key=lambda s: s.seg)

    def reset(self) -> None:
        super().reset()
        self._held.clear()

"""Live AllReduce baselines: peer-to-peer UDP exchange, no aggregator.

The paper's AllReduce baselines (ring, recursive halving/doubling) are
host-to-host collectives — there is no central process at all.  Each
worker binds its own socket, the runner distributes the
:class:`~repro.live.transport.PeerTable` once everyone is bound, and the
exchange proceeds as a schedule of point-to-point messages.

Framing (host-level, like the live PS baseline — not the iSwitch wire
protocol):

=========  ==========================================================
Tag byte   Body (little-endian)
=========  ==========================================================
``E``      u8 sender_rank, u8 phase, u32 round, u32 step, u32 frag,
           float64[] payload — one fragment of an exchange message
``R``      u8 requester_rank, u8 phase, u32 round, u32 step —
           resend request for a whole exchange message
``F``      u8 rank — finished: all of this rank's rounds are applied
=========  ==========================================================

One exchange *message* is the chunk a peer owes us for ``(phase, round,
step)`` of the schedule; chunks exceed the UDP datagram limit, so they
travel as fragments of 183 float64 elements (1464 B — the same payload
budget as the iSwitch segment).  Loss recovery is receiver-driven: a
receive timeout sends ``R`` to the expected sender, which retransmits
every fragment of that message from its send cache (current and
previous round are retained).  Fragments are idempotent — duplicates
overwrite with identical bytes — so recovery needs no sequencing.

With no central process there is also no one to outlive the workers, so
teardown is a peer handshake: a finished worker broadcasts ``F`` and
keeps answering ``R`` requests until it holds an ``F`` from every peer —
only then can no peer still need this worker's send cache.  ``F`` and
``R`` frames are exempt from injected loss (like the simulator, which
drops only data-plane packets); ``F`` is rebroadcast periodically while
lingering as a belt-and-braces against real kernel drops.

Numerics: chunks are exchanged and summed in **float64**.  For gradients
of one workload's dynamic range those sums are exact (the repo's golden
hashes show ps, ring, and halving/doubling — three different summation
orders — already agree), so ring, halving/doubling, live PS, and the
simulator all land on bit-identical weight trajectories.
"""

from __future__ import annotations

import hashlib
import random
import struct
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..rl.base import Algorithm
from .transport import Address, UdpEndpoint

__all__ = ["LiveRingWorker", "LiveHdWorker", "COLLECTIVE_FRAG_ELEMS"]

#: float64 elements per ``E`` fragment; 183 × 8 B = 1464 B payload.
COLLECTIVE_FRAG_ELEMS = 183

_DATA_HEADER = struct.Struct("<BBIII")  # sender_rank, phase, round, step, frag
_REQ_HEADER = struct.Struct("<BBII")  # requester_rank, phase, round, step

#: Re-broadcast period for the ``F`` (finished) frame while lingering.
FINISH_RESEND_PERIOD = 0.25
#: Hard ceiling on the post-training linger; normally the peer ``F``
#: handshake ends it within milliseconds.
LINGER_DEADLINE = 30.0

_MsgKey = Tuple[int, int, int, int]  # sender, phase, round, step


class _PeerExchangeWorker:
    """Shared transport machinery for the peer-to-peer collectives."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        algorithm: Algorithm,
        endpoint: UdpEndpoint,
        peers: Dict[int, Address],
        recovery_timeout: float = 0.1,
        max_recovery_attempts: int = 12,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if n_workers < 2:
            raise ValueError(
                f"peer-to-peer allreduce needs >= 2 workers, got {n_workers}"
            )
        if sorted(peers) != list(range(n_workers)):
            raise ValueError(
                f"peer table must cover ranks 0..{n_workers - 1}, "
                f"got {sorted(peers)}"
            )
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.rank = rank
        self.n_workers = n_workers
        self.algorithm = algorithm
        self.endpoint = endpoint
        self.peers = dict(peers)
        self.recovery_timeout = recovery_timeout
        self.max_recovery_attempts = max_recovery_attempts
        self.loss_rate = loss_rate
        # Per-rank stream so every receiver drops an independent sample.
        self._drop_rng = random.Random(loss_seed * 7919 + rank)
        self.n_elements = algorithm.get_weights().size
        #: Send cache: (phase, round, step) → encoded fragments, for
        #: resend requests.  Current and previous round are retained.
        self._sent: Dict[Tuple[int, int, int], List[bytes]] = {}
        #: Receive buffer: (sender, phase, round, step) → frag → payload.
        self._pending: Dict[_MsgKey, Dict[int, np.ndarray]] = {}
        #: Peers whose ``F`` (finished) frame has arrived.
        self._peer_done: set = set()
        self._round = 0
        self.round_digests: List[str] = []
        self.counters: Dict[str, int] = {
            "frames_tx": 0,
            "frames_rx": 0,
            "resend_requests_sent": 0,
            "resends_served": 0,
            "stale_frames": 0,
            "decode_errors": 0,
            "watchdog_timeouts": 0,
            "drops_injected": 0,
        }

    # -- wire helpers ---------------------------------------------------
    def _send_message(
        self, dest: int, phase: int, step: int, vector: np.ndarray
    ) -> None:
        """Fragment ``vector`` (float64) and send it to peer ``dest``."""
        payload = np.ascontiguousarray(vector, dtype="<f8")
        frames: List[bytes] = []
        for frag in range(0, max(payload.size, 1), COLLECTIVE_FRAG_ELEMS):
            chunk = payload[frag : frag + COLLECTIVE_FRAG_ELEMS]
            frames.append(
                b"E"
                + _DATA_HEADER.pack(
                    self.rank,
                    phase,
                    self._round,
                    step,
                    frag // COLLECTIVE_FRAG_ELEMS,
                )
                + chunk.tobytes()
            )
        self._sent[(phase, self._round, step)] = frames
        addr = self.peers[dest]
        for frame in frames:
            self.endpoint.send(frame, addr)
            self.counters["frames_tx"] += 1

    def _prune_caches(self) -> None:
        floor = self._round - 1
        for key in [k for k in self._sent if k[1] < floor]:
            del self._sent[key]
        for key in [k for k in self._pending if k[2] < floor]:
            del self._pending[key]
            self.counters["stale_frames"] += 1

    def _recv_message(
        self, src: int, phase: int, step: int, n_elements: int
    ) -> np.ndarray:
        """Block until the message from peer ``src`` is fully assembled."""
        key: _MsgKey = (src, phase, self._round, step)
        n_frags = -(-n_elements // COLLECTIVE_FRAG_ELEMS)
        attempts = 0
        # Deadline-based watchdog: unrelated traffic (peers' resend
        # requests, finish frames) must not starve recovery, so the timer
        # runs on wall clock, not on the socket going quiet.  Progress on
        # the awaited message rewinds it — escalating while fragments
        # are streaming in would only add stalls.
        recover_at = time.monotonic() + self.recovery_timeout
        progress = -1
        while True:
            frags = self._pending.get(key)
            if frags is not None and len(frags) == n_frags:
                del self._pending[key]
                out = np.empty(n_elements, dtype=np.float64)
                for index, payload in frags.items():
                    start = index * COLLECTIVE_FRAG_ELEMS
                    out[start : start + payload.size] = payload
                return out
            if frags is not None and len(frags) > progress:
                progress = len(frags)
                attempts = 0
                recover_at = time.monotonic() + self.recovery_timeout
            remaining = recover_at - time.monotonic()
            if remaining <= 0:
                attempts += 1
                self.counters["watchdog_timeouts"] += 1
                if attempts > self.max_recovery_attempts:
                    have = len(frags or ())
                    raise RuntimeError(
                        f"worker {self.rank}: round {self._round} phase "
                        f"{phase} step {step} abandoned after "
                        f"{attempts - 1} recovery attempts "
                        f"({have}/{n_frags} fragments from rank {src})"
                    )
                self.endpoint.send(
                    b"R" + _REQ_HEADER.pack(self.rank, phase, self._round, step),
                    self.peers[src],
                )
                self.counters["frames_tx"] += 1
                self.counters["resend_requests_sent"] += 1
                recover_at = time.monotonic() + min(
                    self.recovery_timeout * 2**attempts, 2.0
                )
                continue
            got = self.endpoint.recv(timeout=remaining)
            if got is None:
                continue
            self._ingest(got[0])

    def _ingest(self, frame: bytes) -> None:
        self.counters["frames_rx"] += 1
        tag = frame[:1]
        try:
            if tag == b"E":
                if (
                    self.loss_rate > 0
                    and self._drop_rng.random() < self.loss_rate
                ):
                    self.counters["drops_injected"] += 1
                    return
                sender, phase, rnd, step, frag = _DATA_HEADER.unpack_from(
                    frame, 1
                )
                if rnd < self._round - 1:
                    self.counters["stale_frames"] += 1
                    return
                payload = np.frombuffer(
                    frame, dtype="<f8", offset=1 + _DATA_HEADER.size
                )
                self._pending.setdefault((sender, phase, rnd, step), {})[
                    frag
                ] = payload.astype(np.float64)
            elif tag == b"R":
                requester, phase, rnd, step = _REQ_HEADER.unpack_from(frame, 1)
                self._serve_resend(requester, phase, rnd, step)
            elif tag == b"F":
                self._peer_done.add(frame[1])
            else:
                self.counters["decode_errors"] += 1
        except (struct.error, KeyError, IndexError):
            self.counters["decode_errors"] += 1

    def _serve_resend(
        self, requester: int, phase: int, rnd: int, step: int
    ) -> None:
        frames = self._sent.get((phase, rnd, step))
        if frames is None:
            return  # not sent yet (peer is ahead) or pruned; peer retries
        addr = self.peers.get(requester)
        if addr is None:
            return
        for frame in frames:
            self.endpoint.send(frame, addr)
            self.counters["frames_tx"] += 1
        self.counters["resends_served"] += 1

    # -- training loop --------------------------------------------------
    def train(self, iterations: int) -> None:
        for iteration in range(iterations):
            self._round = iteration
            self._prune_caches()
            gradient = np.asarray(
                self.algorithm.compute_gradient(), dtype=np.float32
            )
            total = self._exchange(gradient.astype(np.float64))
            self.round_digests.append(
                hashlib.sha256(
                    np.ascontiguousarray(total, dtype=np.float64).tobytes()
                ).hexdigest()[:16]
            )
            self.algorithm.apply_update(total / self.n_workers)
        self._linger()

    def _exchange(self, accumulator: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _linger(self) -> None:
        """Serve resend requests until every peer has also finished.

        Drops happen at the *receiver*, so this worker's last
        transmissions may still be missing at a peer whose only recovery
        source is this worker's send cache.  A peer's ``F`` frame is the
        proof it needs nothing more; once all are in, exit immediately.
        """
        finish = b"F" + bytes([self.rank])
        others = [r for r in self.peers if r != self.rank]
        hard_stop = time.monotonic() + LINGER_DEADLINE
        next_finish = 0.0
        while (
            not all(r in self._peer_done for r in others)
            and time.monotonic() < hard_stop
        ):
            if time.monotonic() >= next_finish:
                for peer in others:
                    self.endpoint.send(finish, self.peers[peer])
                    self.counters["frames_tx"] += 1
                next_finish = time.monotonic() + FINISH_RESEND_PERIOD
            got = self.endpoint.recv(timeout=0.05)
            if got is None:
                continue
            if got[0][:1] in (b"R", b"F"):
                self._ingest(got[0])
            else:
                self.counters["frames_rx"] += 1
                self.counters["stale_frames"] += 1


def _chunk_bounds(n_elements: int, n_chunks: int) -> List[Tuple[int, int]]:
    """``n_chunks`` contiguous element ranges (first ranges get the rest)."""
    base, extra = divmod(n_elements, n_chunks)
    bounds = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class LiveRingWorker(_PeerExchangeWorker):
    """Ring allreduce: N−1 reduce-scatter steps + N−1 all-gather steps.

    Chunk ``c`` circulates rightward accumulating every rank's slice; the
    schedule is the textbook one (each rank starts the reduce-scatter
    with its own chunk index and ends owning chunk ``(rank+1) % N``).
    """

    name = "ring"

    def _exchange(self, accumulator: np.ndarray) -> np.ndarray:
        n = self.n_workers
        bounds = _chunk_bounds(self.n_elements, n)
        right = (self.rank + 1) % n
        left = (self.rank - 1) % n
        # Phase 0: reduce-scatter.
        for step in range(n - 1):
            send_chunk = (self.rank - step) % n
            recv_chunk = (self.rank - step - 1) % n
            lo, hi = bounds[send_chunk]
            self._send_message(right, 0, step, accumulator[lo:hi])
            lo, hi = bounds[recv_chunk]
            accumulator[lo:hi] += self._recv_message(left, 0, step, hi - lo)
        # Phase 1: all-gather.
        for step in range(n - 1):
            send_chunk = (self.rank + 1 - step) % n
            recv_chunk = (self.rank - step) % n
            lo, hi = bounds[send_chunk]
            self._send_message(right, 1, step, accumulator[lo:hi])
            lo, hi = bounds[recv_chunk]
            accumulator[lo:hi] = self._recv_message(left, 1, step, hi - lo)
        return accumulator


class LiveHdWorker(_PeerExchangeWorker):
    """Recursive halving/doubling: 2·log2(N) hypercube exchange steps.

    Requires a power-of-two worker count, like the simulator strategy.
    """

    name = "hd"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.n_workers & (self.n_workers - 1):
            raise ValueError(
                "halving/doubling needs a power-of-two worker count, "
                f"got {self.n_workers}"
            )

    def _exchange(self, accumulator: np.ndarray) -> np.ndarray:
        steps = self.n_workers.bit_length() - 1
        lo, hi = 0, self.n_elements
        stack: List[Tuple[int, int]] = []
        # Phase 0: recursive halving (reduce-scatter on bisected ranges).
        for step in range(steps):
            partner = self.rank ^ (1 << step)
            mid = lo + (hi - lo) // 2
            if self.rank & (1 << step):
                keep, send = (mid, hi), (lo, mid)
            else:
                keep, send = (lo, mid), (mid, hi)
            self._send_message(partner, 0, step, accumulator[send[0] : send[1]])
            received = self._recv_message(
                partner, 0, step, keep[1] - keep[0]
            )
            accumulator[keep[0] : keep[1]] += received
            stack.append((lo, hi))
            lo, hi = keep
        # Phase 1: recursive doubling (all-gather, ranges re-merge).
        for step in reversed(range(steps)):
            partner = self.rank ^ (1 << step)
            parent_lo, parent_hi = stack.pop()
            self._send_message(partner, 1, step, accumulator[lo:hi])
            if lo == parent_lo:
                other = (hi, parent_hi)
            else:
                other = (parent_lo, lo)
            received = self._recv_message(
                partner, 1, step, other[1] - other[0]
            )
            accumulator[other[0] : other[1]] = received
            lo, hi = parent_lo, parent_hi
        return accumulator

"""The software switch: the AggregationEngine behind a real UDP socket.

One process (or thread, in the in-process tests) runs a
:class:`SoftwareSwitch`: it admits workers via real ``Join`` control
packets, broadcasts ``SetH`` once the expected membership is complete
(doubling as the start-of-training signal), sums ``TOS_DATA_UP`` frames
with the *same* :class:`~repro.core.accelerator.AggregationEngine` the
simulator uses, and broadcasts each completed segment to every member as
a ``TOS_DATA_DOWN`` frame.

The engine runs ``canonical_order=True``: UDP arrival order is
nondeterministic, so on-the-fly summation would make the result depend on
scheduling noise.  Canonical (rank-order) summation makes the aggregate a
pure function of the contributions — and lets a simulator run with
``deterministic_aggregation=True`` reproduce it bit-for-bit.

Loss injection (``loss_rate``) drops incoming data frames at ingress with
a seeded RNG, exercising the watchdog/Help recovery path over real
sockets.  ``handle_frame`` is side-effect-free with respect to I/O — it
returns the frames to transmit — so the protocol logic is unit-testable
without processes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.accelerator import AggregationEngine
from ..core.protocol import (
    Action,
    ControlMessage,
    DataSegment,
    JoinInfo,
    ProtocolError,
    TOS_CONTROL,
    TOS_DATA_DOWN,
    TOS_DATA_UP,
    TOS_NUMERICS_MASK,
    decode_frame,
    encode_control,
    encode_data,
)
from .transport import Address, UdpEndpoint

__all__ = ["SoftwareSwitch"]


class SoftwareSwitch:
    """Aggregates live UDP gradient traffic for one training job."""

    def __init__(
        self,
        n_workers: int,
        endpoint: Optional[UdpEndpoint] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        cache_size: int = 4096,
        job: int = 0,
        codec=None,
        parent_addr: Optional[Address] = None,
        rank: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if codec is not None and codec.wire_tag is None:
            raise ValueError(
                f"codec {codec.name!r} has no wire format; the live switch "
                "can only aggregate fp32/fp16/int32-bs/topk frames"
            )
        self.n_workers = n_workers
        #: The single training-job id this switch serves; frames stamped
        #: with a different job are dropped (counted as ``wrong_job``).
        self.job = job
        #: ToR mode (hierarchical tree): completed local partials are
        #: forwarded upstream to the aggregation switch at ``parent_addr``
        #: instead of broadcast, and the parent's final results are
        #: relayed down to the members.  ``rank`` is this switch's member
        #: rank at the parent (the ToR index).
        self.parent_addr = parent_addr
        self.rank = rank
        #: Parent-membership barrier: upstream forwarding waits for the
        #: parent's SetH (all ToRs admitted); completions buffer until
        #: then.  Trivially ready with no parent.
        self._parent_ready = parent_addr is None
        self._left_sent = False
        #: Encoded upstream frames by Seg, for parent-relayed Help.
        self._up_cache: Dict[int, bytes] = {}
        #: Completed partials (encoded) awaiting the parent barrier.
        self._up_pending: List[bytes] = []
        #: Parent's final DOWN frames by Seg, for member Help.
        self._down_cache: Dict[int, bytes] = {}
        self.endpoint = endpoint
        #: Aggregation numerics (``None`` = fp32).  ``canonical_order`` is
        #: only needed where arrival order can change the sum: integer
        #: summation (int32-bs) is associative, so that engine aggregates
        #: in true arrival order, exactly like the switch ALU — and still
        #: matches the canonical-order simulator bit for bit (DESIGN §12).
        self.codec = codec
        self.engine = AggregationEngine(
            threshold=n_workers,
            dedup=True,  # Help retransmissions must be idempotent
            canonical_order=codec is None or not codec.order_independent,
            cache_size=cache_size,
            codec=codec,
        )
        self.loss_rate = loss_rate
        self._drop_rng = random.Random(loss_seed)
        self._members: Dict[int, Address] = {}
        self._left: set = set()
        self._go_sent = False
        self.counters: Dict[str, int] = {
            "frames_rx": 0,
            "frames_tx": 0,
            "data_rx": 0,
            "drops_injected": 0,
            "results_broadcast": 0,
            "help_cache_hits": 0,
            "help_relayed": 0,
            "joins": 0,
            "leaves": 0,
            "decode_errors": 0,
            "wrong_job": 0,
            "wrong_codec": 0,
            "upstream_forwards": 0,
            "parent_relays": 0,
        }

    # ------------------------------------------------------------------
    # Protocol logic (I/O-free: returns the frames to transmit)
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """All expected workers joined and all of them have left.

        A ToR additionally waits until it has drained its upstream queue
        and told the parent it is leaving — its send cache is no longer
        needed by then (members only leave once every final result
        reached them, which required the parent to have every partial).
        """
        members_done = len(self._members) == self.n_workers and len(
            self._left
        ) == len(self._members)
        if self.parent_addr is None:
            return members_done
        return members_done and self._left_sent and not self._up_pending

    def _active_members(self) -> List[Tuple[int, Address]]:
        return [
            (rank, addr)
            for rank, addr in sorted(self._members.items())
            if rank not in self._left
        ]

    def handle_frame(
        self, frame: bytes, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        """Process one received datagram; return the datagrams to send."""
        self.counters["frames_rx"] += 1
        try:
            tos, message = decode_frame(frame)
        except ProtocolError:
            self.counters["decode_errors"] += 1
            return []
        if getattr(message, "job", 0) != self.job:
            self.counters["wrong_job"] += 1
            return []
        if self.parent_addr is not None and addr == self.parent_addr:
            return self._handle_parent_frame(tos, message)
        if tos == TOS_CONTROL:
            return self._handle_control(message, addr)
        if (tos & ~TOS_NUMERICS_MASK) == TOS_DATA_UP:
            expected_tag = 0 if self.codec is None else self.codec.wire_tag
            if (tos & TOS_NUMERICS_MASK) != expected_tag:
                # A frame in the wrong numerics for this job's engine:
                # summing it would silently mix grids, so drop it.
                self.counters["wrong_codec"] += 1
                return []
            return self._handle_contribution(message, addr)
        # TOS_DATA_DOWN at the switch ingress: not ours to aggregate.
        return []

    def _handle_parent_frame(
        self, tos: int, message
    ) -> List[Tuple[bytes, Address]]:
        """A frame from the aggregation switch above this ToR."""
        if (tos & ~TOS_NUMERICS_MASK) == TOS_DATA_DOWN:
            # Final tree-wide result: cache for member Help, fan out.
            frame = encode_data(message, downstream=True, codec=self.codec)
            self._down_cache[message.seg] = frame
            self.counters["parent_relays"] += 1
            return [(frame, a) for _, a in self._active_members()]
        if isinstance(message, ControlMessage):
            if message.action == Action.SETH:
                out = []
                if not self._parent_ready:
                    self._parent_ready = True
                    out = [
                        (frame, self.parent_addr)
                        for frame in self._up_pending
                    ]
                    self._up_pending = []
                return out
            if message.action == Action.HELP:
                # The parent lost (or never got) our partial for a Seg.
                frame = self._up_cache.get(int(message.value))
                if frame is None:
                    return []
                self.counters["retransmissions_up"] = (
                    self.counters.get("retransmissions_up", 0) + 1
                )
                return [(frame, self.parent_addr)]
        # ACKs and anything else from the parent: no action needed.
        return []

    def _handle_control(
        self, message: ControlMessage, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        if message.action == Action.JOIN:
            return self._handle_join(message, addr)
        if message.action == Action.LEAVE:
            rank = self._rank_of(addr)
            if rank is not None and rank not in self._left:
                self._left.add(rank)
                self.counters["leaves"] += 1
            if (
                self.parent_addr is not None
                and not self._left_sent
                and len(self._members) == self.n_workers
                and len(self._left) == len(self._members)
            ):
                self._left_sent = True
                return [
                    (
                        encode_control(
                            ControlMessage(Action.LEAVE, job=self.job)
                        ),
                        self.parent_addr,
                    )
                ]
            return []
        if message.action == Action.HELP:
            return self._handle_help(message, addr)
        if message.action == Action.RESET:
            self.engine.reset()
            return []
        if message.action == Action.FBCAST:
            result = self.engine.force_broadcast(int(message.value))
            if result is None:
                return []
            return self._emit(result)
        # SETH/HALT/ACK arriving at the switch: acknowledge nothing.
        return []

    def _handle_join(
        self, message: ControlMessage, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        info = message.value
        if not isinstance(info, JoinInfo):
            self.counters["decode_errors"] += 1
            return []
        known = self._members.get(info.rank)
        if known is None:
            self._members[info.rank] = addr
            self.counters["joins"] += 1
        else:
            # A retry (our ACK or the SetH may have raced the worker's
            # watchdog).  Re-admit idempotently at the latest address.
            self._members[info.rank] = addr
        out = [
            (
                encode_control(
                    ControlMessage(Action.ACK, value=1, job=self.job)
                ),
                addr,
            )
        ]
        if len(self._members) == self.n_workers and not self._go_sent:
            self._go_sent = True
            go = encode_control(
                ControlMessage(Action.SETH, value=self.n_workers, job=self.job)
            )
            out.extend((go, a) for _, a in self._active_members())
        elif self._go_sent:
            # Late retry after the broadcast: resend the go signal 1:1.
            out.append(
                (
                    encode_control(
                        ControlMessage(
                            Action.SETH, value=self.n_workers, job=self.job
                        )
                    ),
                    addr,
                )
            )
        return out

    def _handle_help(
        self, message: ControlMessage, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        seg = int(message.value)
        if self.parent_addr is not None:
            # ToR: the member wants the *final* result, which only the
            # parent computes.  The engine cache holds local partials —
            # serving one of those would double-count this rack.
            down = self._down_cache.get(seg)
            if down is not None:
                self.counters["help_cache_hits"] += 1
                return [(down, addr)]
            up = self._up_cache.get(seg)
            if up is not None and self._parent_ready:
                # Our partial is complete but the final never came back:
                # re-offer it upstream and ask the parent for help.
                self.counters["help_relayed"] += 1
                return [
                    (up, self.parent_addr),
                    (
                        encode_control(
                            ControlMessage(
                                Action.HELP, value=seg, job=self.job
                            )
                        ),
                        self.parent_addr,
                    ),
                ]
            # Our own partial is incomplete: a member's contribution was
            # lost — fall through to the member relay below.
        else:
            cached = self.engine.cached_result(seg)
            if cached is not None:
                self.counters["help_cache_hits"] += 1
                cached.job = self.job
                return [
                    (
                        encode_data(cached, downstream=True, codec=self.codec),
                        addr,
                    )
                ]
        # Not completed yet: some contribution was lost.  Relay the Help
        # to every other member; each retransmits its cached frames.
        relay = encode_control(
            ControlMessage(Action.HELP, value=seg, job=self.job)
        )
        self.counters["help_relayed"] += 1
        return [
            (relay, member_addr)
            for _, member_addr in self._active_members()
            if member_addr != addr
        ]

    def _handle_contribution(
        self, segment: DataSegment, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        if self.loss_rate > 0 and self._drop_rng.random() < self.loss_rate:
            self.counters["drops_injected"] += 1
            return []
        rank = self._rank_of(addr)
        if rank is None:
            return []  # not a member (stale socket, fuzzed frame)
        self.counters["data_rx"] += 1
        # Re-key the contribution with the member's canonical identity;
        # the wire carries only (job, seg), exactly like the hardware.
        contribution = DataSegment(
            seg=segment.seg,
            data=segment.data,
            sender=f"worker{rank}",
            job=self.job,
        )
        result = self.engine.contribute(contribution)
        if result is None:
            return []
        return self._emit(result)

    def _emit(self, result: DataSegment) -> List[Tuple[bytes, Address]]:
        """Route a completed segment: broadcast, or forward up the tree."""
        if self.parent_addr is None:
            return self._broadcast(result)
        # ToR: the local sum is a *partial*; send it upstream as a fresh
        # contribution.  The parent re-keys it under this ToR's rank, so
        # the aggregate stays a pure function of (tor, seg).
        result.job = self.job
        frame = encode_data(result, downstream=False, codec=self.codec)
        self._up_cache[result.seg] = frame
        self.counters["upstream_forwards"] += 1
        if not self._parent_ready:
            self._up_pending.append(frame)
            return []
        return [(frame, self.parent_addr)]

    def _broadcast(self, result: DataSegment) -> List[Tuple[bytes, Address]]:
        result.job = self.job
        frame = encode_data(result, downstream=True, codec=self.codec)
        self.counters["results_broadcast"] += 1
        return [(frame, addr) for _, addr in self._active_members()]

    def _rank_of(self, addr: Address) -> Optional[int]:
        for rank, member_addr in self._members.items():
            if member_addr == addr:
                return rank
        return None

    # ------------------------------------------------------------------
    # Serve loop (process mode)
    # ------------------------------------------------------------------
    def serve(self, deadline: float, poll_interval: float = 0.2) -> None:
        """Receive/handle/send until every worker left or time runs out.

        ``deadline`` is an absolute :func:`time.monotonic` timestamp — a
        hard stop so an orphaned switch process can never outlive the
        experiment.
        """
        import time

        if self.endpoint is None:
            raise RuntimeError("serve() needs an endpoint")
        next_parent_join = 0.0
        parent_join = None
        if self.parent_addr is not None:
            # A ToR joins the aggregation switch above it as a member of
            # type "switch"; n_elements is 0 — the parent never needs the
            # gradient geometry, only the membership.
            parent_join = encode_control(
                ControlMessage(
                    Action.JOIN,
                    JoinInfo(
                        member_type="switch",
                        rank=self.rank,
                        n_elements=0,
                        n_chunks=0,
                    ),
                    job=self.job,
                )
            )
        while not self.done and time.monotonic() < deadline:
            if (
                parent_join is not None
                and not self._parent_ready
                and time.monotonic() >= next_parent_join
            ):
                self.endpoint.send(parent_join, self.parent_addr)
                self.counters["frames_tx"] += 1
                next_parent_join = time.monotonic() + 0.5
            remaining = deadline - time.monotonic()
            got = self.endpoint.recv(timeout=min(poll_interval, max(remaining, 0.01)))
            if got is None:
                continue
            frame, addr = got
            for out_frame, out_addr in self.handle_frame(frame, addr):
                self.endpoint.send(out_frame, out_addr)
                self.counters["frames_tx"] += 1

    def stats_snapshot(self) -> Dict[str, int]:
        """Counters plus engine statistics, for the parent's telemetry."""
        snapshot = dict(self.counters)
        stats = self.engine.stats
        snapshot.update(
            engine_contributions=stats.contributions,
            engine_completions=stats.completions,
            engine_duplicates_dropped=stats.duplicates_dropped,
            engine_max_live_segments=stats.max_live_segments,
        )
        return snapshot

"""Loopback UDP endpoints for the live backend.

One :class:`UdpEndpoint` per process: bound to an ephemeral port on
127.0.0.1, blocking receives with a timeout (the worker watchdog is
implemented directly on top of that timeout).  Datagram boundaries map
one-to-one onto protocol frames, so no additional framing is needed.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["UdpEndpoint", "PeerTable", "loopback_available", "Address"]

Address = Tuple[str, int]

LOOPBACK = "127.0.0.1"

#: Socket receive-buffer request.  A 4-worker synth round is ~64
#: frames/worker of ~1.5 kB; 1 MiB absorbs every worker bursting a full
#: round while the switch is descheduled.
RECV_BUFFER_BYTES = 1 << 20


@dataclass
class PeerTable:
    """Who is reachable where — the live run's membership directory.

    Built by the runner once every child process has bound its socket and
    reported its port, then shipped to each child over its pipe (it is a
    plain picklable dataclass).  Receiving the table doubles as the
    rendezvous barrier for peer-to-peer strategies: every address in it
    is already bound, so a worker may transmit to any peer immediately.

    ``workers`` maps rank → address for worker endpoints (peer-to-peer
    exchange); ``servers`` maps a role name (``"switch"``, ``"shard3"``,
    ``"tor1"``, ...) → address for aggregator endpoints.
    """

    workers: Dict[int, Address] = field(default_factory=dict)
    servers: Dict[str, Address] = field(default_factory=dict)

    def worker(self, rank: int) -> Address:
        return self.workers[rank]

    def server(self, name: str) -> Address:
        return self.servers[name]


class UdpEndpoint:
    """A bound loopback UDP socket with timeout-based receives."""

    def __init__(self, port: int = 0, recv_buffer: int = RECV_BUFFER_BYTES) -> None:
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            self.sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, recv_buffer
            )
        except OSError:
            pass  # caps vary by platform; the default still works
        self.sock.bind((LOOPBACK, port))
        self.address: Address = self.sock.getsockname()

    @property
    def port(self) -> int:
        return self.address[1]

    def send(self, frame: bytes, addr: Address) -> None:
        self.sock.sendto(frame, addr)

    def recv(self, timeout: Optional[float]) -> Optional[Tuple[bytes, Address]]:
        """One datagram, or ``None`` if ``timeout`` seconds pass first."""
        self.sock.settimeout(timeout)
        try:
            frame, addr = self.sock.recvfrom(65536)
        except socket.timeout:
            return None
        except OSError:
            return None  # closed from another thread during shutdown
        return frame, addr

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "UdpEndpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def loopback_available() -> bool:
    """Can this environment bind loopback UDP sockets and pass datagrams?

    The conformance tests skip (rather than fail) where sandboxes forbid
    socket creation or loopback delivery.
    """
    try:
        with UdpEndpoint() as a, UdpEndpoint() as b:
            a.send(b"ping", b.address)
            got = b.recv(timeout=1.0)
            return got is not None and got[0] == b"ping"
    except OSError:
        return False

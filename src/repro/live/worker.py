"""The live iSwitch worker: real gradients through real UDP frames.

Mirrors the numerics of the simulator's :class:`SyncStrategy` exactly —
per iteration: ``compute_gradient()`` (float32), stream the vector as
encoded ``TOS_DATA_UP`` frames, collect the switch's aggregated
``TOS_DATA_DOWN`` frames, then ``apply_update(sum.astype(float64) / N)``.
Chunk geometry differs from the simulator (one real frame per chunk here)
but elementwise sums are partition-independent, so the trajectories stay
bit-identical.

Loss recovery is the paper's worker-driven watchdog (§3.4): a receive
timeout retransmits this worker's own cached frames for the missing
segments and sends ``Help``; the switch answers from its result cache or
relays the Help so peers retransmit theirs.  Dedup in the engine makes
all of it idempotent.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional

import numpy as np

from ..core.protocol import (
    Action,
    ControlMessage,
    JoinInfo,
    ProtocolError,
    SegmentPlan,
    decode_frame,
    encode_control,
    encode_data,
)
from ..rl.base import Algorithm
from .transport import Address, UdpEndpoint

__all__ = ["LiveWorker", "DEFAULT_LIVE_RECOVERY_TIMEOUT"]

#: Base watchdog period for live receives.  The simulator's 0.5 ms models
#: a quiet 10 GbE round-trip; real processes contend with scheduling, so
#: the live default is far looser (backoff doubles it per attempt).
DEFAULT_LIVE_RECOVERY_TIMEOUT = 0.1

JOIN_RESEND_PERIOD = 0.5
JOIN_DEADLINE = 30.0


class LiveWorker:
    """One worker process's protocol state machine."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        algorithm: Algorithm,
        endpoint: UdpEndpoint,
        switch_addr: Address,
        recovery_timeout: float = DEFAULT_LIVE_RECOVERY_TIMEOUT,
        max_recovery_attempts: int = 12,
        job: int = 0,
        codec=None,
    ) -> None:
        if recovery_timeout <= 0:
            raise ValueError(
                f"recovery_timeout must be > 0, got {recovery_timeout}"
            )
        if codec is not None and codec.wire_tag is None:
            raise ValueError(
                f"codec {codec.name!r} has no wire format and cannot cross "
                "real UDP; choose fp16, int32-bs, or topk"
            )
        self.rank = rank
        self.job = job
        self.n_workers = n_workers
        self.algorithm = algorithm
        self.endpoint = endpoint
        self.switch_addr = switch_addr
        self.recovery_timeout = recovery_timeout
        self.max_recovery_attempts = max_recovery_attempts
        #: Aggregation numerics; ``None`` streams raw fp32 frames.
        self.codec = codec
        n_elements = algorithm.get_weights().size
        if codec is None:
            self.plan = SegmentPlan(n_elements)  # one real frame per chunk
        else:
            self.plan = SegmentPlan(
                n_elements,
                bytes_per_element=codec.bytes_per_element,
                frame_overhead=codec.frame_overhead,
            )
        self.sender = f"worker{rank}"
        self.threshold: Optional[int] = None
        #: Encoded upstream frames of the current and previous round, for
        #: Help-triggered retransmission, keyed by global Seg.
        self._send_cache: Dict[int, bytes] = {}
        self.round_digests: List[str] = []
        self.counters: Dict[str, int] = {
            "frames_tx": 0,
            "frames_rx": 0,
            "help_sent": 0,
            "retransmissions": 0,
            "stale_frames": 0,
            "decode_errors": 0,
            "watchdog_timeouts": 0,
        }

    # ------------------------------------------------------------------
    def _send(self, frame: bytes) -> None:
        self.endpoint.send(frame, self.switch_addr)
        self.counters["frames_tx"] += 1

    def join(self) -> None:
        """Join the job: send ``Join`` until the switch's ``SetH`` arrives.

        The SetH broadcast doubles as the start-of-training barrier — the
        switch only sends it once all expected members joined.  Join is
        idempotent at the switch, so resending on a quiet socket covers a
        lost Join, a lost ACK, and a lost SetH alike.
        """
        join_frame = encode_control(
            ControlMessage(
                Action.JOIN,
                JoinInfo(
                    member_type="worker",
                    rank=self.rank,
                    n_elements=self.plan.n_elements,
                    n_chunks=self.plan.n_chunks,
                ),
                job=self.job,
            )
        )
        deadline = time.monotonic() + JOIN_DEADLINE
        while time.monotonic() < deadline:
            self._send(join_frame)
            resend_at = time.monotonic() + JOIN_RESEND_PERIOD
            while time.monotonic() < resend_at:
                got = self.endpoint.recv(
                    timeout=max(resend_at - time.monotonic(), 0.01)
                )
                if got is None:
                    break
                message = self._decode(got[0])
                if (
                    isinstance(message, ControlMessage)
                    and message.action == Action.SETH
                    and message.job == self.job
                ):
                    self.threshold = int(message.value)
                    return
        raise RuntimeError(
            f"worker {self.rank}: not admitted within {JOIN_DEADLINE:.0f}s"
        )

    def leave(self) -> None:
        self._send(encode_control(ControlMessage(Action.LEAVE, job=self.job)))

    def _decode(self, frame: bytes):
        self.counters["frames_rx"] += 1
        try:
            _, message = decode_frame(frame)
        except ProtocolError:
            self.counters["decode_errors"] += 1
            return None
        return message

    # ------------------------------------------------------------------
    def train(self, iterations: int) -> None:
        """Run the full synchronous loop; ``join()`` must have succeeded."""
        if self.threshold is None:
            raise RuntimeError("join() the job before training")
        for iteration in range(iterations):
            gradient = np.asarray(
                self.algorithm.compute_gradient(), dtype=np.float32
            )
            total = self._aggregate(gradient, iteration)
            self.round_digests.append(
                hashlib.sha256(total.tobytes()).hexdigest()[:16]
            )
            self.algorithm.apply_update(
                total.astype(np.float64) / self.n_workers
            )
        self.leave()

    def _aggregate(self, gradient: np.ndarray, iteration: int) -> np.ndarray:
        """One round: stream the vector up, collect the aggregate down."""
        segments = self.plan.split(gradient, iteration, sender=self.sender)
        for s in segments:
            s.job = self.job
        frames = {
            s.seg: encode_data(s, codec=self.codec) for s in segments
        }
        # Retain this and the previous round for Help retransmission.
        floor = max(iteration - 1, 0) * self.plan.n_chunks
        self._send_cache = {
            seg: frame
            for seg, frame in self._send_cache.items()
            if seg >= floor
        }
        self._send_cache.update(frames)
        for frame in frames.values():
            self._send(frame)
        received = self._collect(set(frames), iteration)
        ordered = [
            received[iteration * self.plan.n_chunks + chunk]
            for chunk in range(self.plan.n_chunks)
        ]
        return self.plan.assemble(ordered)

    def _collect(self, expected: set, iteration: int) -> Dict[int, object]:
        received: Dict[int, object] = {}
        attempts = 0
        timeout = self.recovery_timeout
        while len(received) < len(expected):
            got = self.endpoint.recv(timeout=timeout)
            if got is None:
                attempts += 1
                self.counters["watchdog_timeouts"] += 1
                if attempts > self.max_recovery_attempts:
                    missing = sorted(expected - set(received))
                    raise RuntimeError(
                        f"worker {self.rank}: round {iteration} abandoned "
                        f"after {attempts - 1} recovery attempts; "
                        f"missing segs {missing[:8]}"
                    )
                self._recover(expected - set(received))
                timeout = min(self.recovery_timeout * 2 ** attempts, 2.0)
                continue
            message = self._decode(got[0])
            if message is None:
                continue
            if isinstance(message, ControlMessage):
                if message.action == Action.HELP and message.job == self.job:
                    self._retransmit(int(message.value))
                continue
            # A data segment.  Frames for another tenant's job would be a
            # switch mis-delivery; drop them like any stale duplicate.
            # Downstream results for this round are consumed; earlier
            # rounds' rebroadcasts are stale duplicates.
            if (
                message.job == self.job
                and message.seg in expected
                and message.seg not in received
            ):
                received[message.seg] = message
            else:
                self.counters["stale_frames"] += 1
        return received

    def _recover(self, missing: set) -> None:
        """Watchdog fired: retransmit our own frames and ask for Help."""
        for seg in sorted(missing):
            frame = self._send_cache.get(seg)
            if frame is not None:
                self._send(frame)
                self.counters["retransmissions"] += 1
            self._send(
                encode_control(
                    ControlMessage(Action.HELP, value=seg, job=self.job)
                )
            )
            self.counters["help_sent"] += 1

    def _retransmit(self, seg: int) -> None:
        """A relayed Help: some peer is missing a segment we fed."""
        frame = self._send_cache.get(seg)
        if frame is not None:
            self._send(frame)
            self.counters["retransmissions"] += 1

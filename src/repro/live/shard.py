"""Live sharded PS: K parameter-server processes, each owning a slice.

Mirrors the simulator's ``sync-ps-shard`` strategy: the parameter space
is split into K contiguous element ranges and each range is served by an
independent :class:`~repro.live.ps.PsServer` process.  The servers are
completely stock — each one sums its own (round, chunk) keys over all N
workers — so sharding lives entirely in this worker: it routes each
shard's slice of the gradient to that shard's address and reassembles
the K float64 slices into the full summed vector.

Responses are demultiplexed by source address (each shard has its own
socket), so the per-shard chunk index spaces never collide.  Joins run
shard-by-shard in shard order on every worker, which keeps the K join
barriers deadlock-free.  Float64 sums are exact for these gradients, so
the digest/weight trajectory is bit-identical to live ``ps`` and to the
simulator (see :mod:`repro.live.ps`).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Tuple

import numpy as np

from ..rl.base import Algorithm
from .ps import (
    JOIN_DEADLINE,
    JOIN_RESEND_PERIOD,
    _DOWN_HEADER,
    _UP_HEADER,
    _chunk_bounds,
    _n_chunks,
)
from .transport import Address, UdpEndpoint

__all__ = ["LiveShardWorker", "shard_ranges"]


def shard_ranges(n_elements: int, n_shards: int) -> List[Tuple[int, int]]:
    """K contiguous element ranges; the first shards absorb the remainder.

    Matches the simulator's sharding (``np.array_split`` semantics).
    """
    base, extra = divmod(n_elements, n_shards)
    ranges = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


class LiveShardWorker:
    """Worker-side loop of the live sharded-PS strategy."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        algorithm: Algorithm,
        endpoint: UdpEndpoint,
        shard_addrs: List[Address],
        recovery_timeout: float = 0.1,
        max_recovery_attempts: int = 12,
    ) -> None:
        if not shard_addrs:
            raise ValueError("need at least one shard server")
        self.rank = rank
        self.n_workers = n_workers
        self.algorithm = algorithm
        self.endpoint = endpoint
        self.shard_addrs = list(shard_addrs)
        self.recovery_timeout = recovery_timeout
        self.max_recovery_attempts = max_recovery_attempts
        self.n_elements = algorithm.get_weights().size
        self.ranges = shard_ranges(self.n_elements, len(shard_addrs))
        #: Per shard: chunk count over that shard's local element range.
        self.shard_chunks = [_n_chunks(hi - lo) for lo, hi in self.ranges]
        self._addr_to_shard = {
            addr: index for index, addr in enumerate(self.shard_addrs)
        }
        #: (shard, chunk) → encoded ``U`` frame of the current round.
        self._round_frames: Dict[Tuple[int, int], bytes] = {}
        self.round_digests: List[str] = []
        self.counters: Dict[str, int] = {
            "frames_tx": 0,
            "frames_rx": 0,
            "help_sent": 0,
            "retransmissions": 0,
            "watchdog_timeouts": 0,
            "stale_frames": 0,
        }
        self._joined = False

    def _send(self, frame: bytes, shard: int) -> None:
        self.endpoint.send(frame, self.shard_addrs[shard])
        self.counters["frames_tx"] += 1

    def join(self) -> None:
        """Join every shard, in shard order (the same order on all ranks)."""
        join = b"J" + bytes([self.rank])
        for shard in range(len(self.shard_addrs)):
            deadline = time.monotonic() + JOIN_DEADLINE
            admitted = False
            while not admitted and time.monotonic() < deadline:
                self._send(join, shard)
                resend_at = time.monotonic() + JOIN_RESEND_PERIOD
                while time.monotonic() < resend_at:
                    got = self.endpoint.recv(
                        timeout=max(resend_at - time.monotonic(), 0.01)
                    )
                    if got is None:
                        break
                    self.counters["frames_rx"] += 1
                    if (
                        got[0][:1] == b"G"
                        and self._addr_to_shard.get(got[1]) == shard
                    ):
                        admitted = True
                        break
            if not admitted:
                raise RuntimeError(
                    f"shard worker {self.rank}: shard {shard} did not admit "
                    f"within {JOIN_DEADLINE:.0f}s"
                )
        self._joined = True

    def train(self, iterations: int) -> None:
        if not self._joined:
            raise RuntimeError("join() the job before training")
        for iteration in range(iterations):
            gradient = np.asarray(
                self.algorithm.compute_gradient(), dtype=np.float32
            )
            total = self._aggregate(gradient, iteration)
            self.round_digests.append(
                hashlib.sha256(total.tobytes()).hexdigest()[:16]
            )
            self.algorithm.apply_update(total / self.n_workers)
        leave = b"L" + bytes([self.rank])
        for shard in range(len(self.shard_addrs)):
            self._send(leave, shard)

    def _aggregate(self, gradient: np.ndarray, iteration: int) -> np.ndarray:
        self._round_frames = {}
        for shard, (lo, _hi) in enumerate(self.ranges):
            slice_ = gradient[lo : _hi]
            for chunk in range(self.shard_chunks[shard]):
                start, stop = _chunk_bounds(chunk, slice_.size)
                frame = (
                    b"U"
                    + _UP_HEADER.pack(self.rank, iteration, chunk)
                    + slice_[start:stop].astype("<f4", copy=False).tobytes()
                )
                self._round_frames[(shard, chunk)] = frame
                self._send(frame, shard)
        chunks = self._collect(iteration)
        total = np.empty(self.n_elements, dtype=np.float64)
        for (shard, chunk), data in chunks.items():
            lo, _hi = self.ranges[shard]
            start, stop = _chunk_bounds(chunk, _hi - lo)
            total[lo + start : lo + stop] = data
        return total

    def _collect(self, iteration: int) -> Dict[Tuple[int, int], np.ndarray]:
        expected = len(self._round_frames)
        received: Dict[Tuple[int, int], np.ndarray] = {}
        attempts = 0
        timeout = self.recovery_timeout
        while len(received) < expected:
            got = self.endpoint.recv(timeout=timeout)
            if got is None:
                attempts += 1
                self.counters["watchdog_timeouts"] += 1
                if attempts > self.max_recovery_attempts:
                    raise RuntimeError(
                        f"shard worker {self.rank}: round {iteration} "
                        f"abandoned after {attempts - 1} recovery attempts"
                    )
                for key, frame in self._round_frames.items():
                    if key in received:
                        continue
                    shard, chunk = key
                    self._send(frame, shard)
                    self.counters["retransmissions"] += 1
                    self._send(
                        b"H" + _UP_HEADER.pack(self.rank, iteration, chunk),
                        shard,
                    )
                    self.counters["help_sent"] += 1
                timeout = min(self.recovery_timeout * 2**attempts, 2.0)
                continue
            frame, addr = got
            self.counters["frames_rx"] += 1
            shard = self._addr_to_shard.get(addr)
            if (
                shard is None
                or frame[:1] != b"D"
                or len(frame) < 1 + _DOWN_HEADER.size
            ):
                continue
            round_index, chunk = _DOWN_HEADER.unpack_from(frame, 1)
            key = (shard, chunk)
            if round_index != iteration or key in received:
                self.counters["stale_frames"] += 1
                continue
            data = np.frombuffer(
                frame, dtype="<f8", offset=1 + _DOWN_HEADER.size
            )
            received[key] = data.astype(np.float64)
        return received

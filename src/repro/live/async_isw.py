"""Live async-isw: the paper's Algorithm 1 over real UDP, bounded stale.

The switch side is the unmodified :class:`~repro.live.switch.SoftwareSwitch`
(threshold = N, dedup, canonical order): asynchrony lives entirely in the
worker schedule, exactly as in the simulator's paced mode.  A worker may
run up to ``staleness_bound`` rounds ahead of its own applied weights —
it computes and submits round ``k`` as soon as ``k ≤ applied + S``, then
collects and applies the oldest outstanding round.  Under that greedy
schedule the gradient for round ``k`` is computed against weight version
``max(0, k − S)``, so every applied gradient's version gap is
``min(k, S) ≤ S`` — the bound Algorithm 1 enforces — and the weight
trajectory is the simulator's paced trajectory bit for bit.

The gap is **measured**, not assumed: at compute time the worker records
its live applied-version, and at apply time it counts the real gap into
``version_gap_max`` / ``version_gap_total`` / ``version_gap_count``.
The conformance suite asserts the bound from those counters, so genuine
process-arrival jitter (rounds completing out of order, recovery
retransmissions) is covered by the assertion rather than averaged away.

Pipelining means DOWN frames for round ``k+1`` can arrive while round
``k`` is still being collected; those are buffered, not dropped, and the
send cache retains ``S + 2`` rounds so Help retransmissions can serve
the slowest peer's recovery window.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .worker import LiveWorker

__all__ = ["LiveAsyncWorker"]


class LiveAsyncWorker(LiveWorker):
    """Bounded-staleness worker pipeline over the live switch protocol."""

    def __init__(self, *args, staleness_bound: int = 3, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if staleness_bound < 0:
            raise ValueError(
                f"staleness_bound must be >= 0, got {staleness_bound}"
            )
        self.staleness_bound = staleness_bound
        #: Downstream segments that arrived ahead of the round being
        #: collected, keyed by global Seg.
        self._future: Dict[int, object] = {}
        #: Applied-version at each round's compute time.
        self._versions: List[int] = []
        self.counters.update(
            version_gap_max=0,
            version_gap_total=0,
            version_gap_count=0,
        )

    def train(self, iterations: int) -> None:
        """Greedy bounded-staleness loop: submit ahead, apply in order."""
        if self.threshold is None:
            raise RuntimeError("join() the job before training")
        bound = self.staleness_bound
        next_round = 0
        applied = 0
        while applied < iterations:
            while next_round < iterations and next_round <= applied + bound:
                gradient = np.asarray(
                    self.algorithm.compute_gradient(), dtype=np.float32
                )
                self._versions.append(applied)
                self._submit(gradient, next_round)
                next_round += 1
            total = self._collect_round(applied)
            self._apply_round(total, applied)
            applied += 1
        self.leave()

    # ------------------------------------------------------------------
    def _submit(self, gradient: np.ndarray, round_index: int) -> None:
        """Stream one round's frames up without waiting for its result."""
        from ..core.protocol import encode_data

        segments = self.plan.split(gradient, round_index, sender=self.sender)
        for s in segments:
            s.job = self.job
        frames = {
            s.seg: encode_data(s, codec=self.codec) for s in segments
        }
        # Retain S + 2 rounds: a peer's collect window can trail this
        # worker's submit window by the full staleness bound.
        floor = max(round_index - (self.staleness_bound + 1), 0)
        floor *= self.plan.n_chunks
        self._send_cache = {
            seg: frame
            for seg, frame in self._send_cache.items()
            if seg >= floor
        }
        self._send_cache.update(frames)
        for frame in frames.values():
            self._send(frame)

    def _collect_round(self, round_index: int) -> np.ndarray:
        expected = {
            round_index * self.plan.n_chunks + chunk
            for chunk in range(self.plan.n_chunks)
        }
        # Drain segments that arrived while collecting earlier rounds.
        received = {
            seg: self._future.pop(seg)
            for seg in list(self._future)
            if seg in expected
        }
        if len(received) < len(expected):
            received.update(
                self._collect_pipelined(expected, received, round_index)
            )
        ordered = [
            received[round_index * self.plan.n_chunks + chunk]
            for chunk in range(self.plan.n_chunks)
        ]
        return self.plan.assemble(ordered)

    def _collect_pipelined(
        self, expected: set, received: Dict[int, object], round_index: int
    ) -> Dict[int, object]:
        """Like :meth:`LiveWorker._collect`, but future rounds buffer."""
        from ..core.protocol import Action, ControlMessage

        horizon = (round_index + 1) * self.plan.n_chunks
        attempts = 0
        timeout = self.recovery_timeout
        while len(received) < len(expected):
            got = self.endpoint.recv(timeout=timeout)
            if got is None:
                attempts += 1
                self.counters["watchdog_timeouts"] += 1
                if attempts > self.max_recovery_attempts:
                    missing = sorted(expected - set(received))
                    raise RuntimeError(
                        f"worker {self.rank}: round {round_index} abandoned "
                        f"after {attempts - 1} recovery attempts; "
                        f"missing segs {missing[:8]}"
                    )
                self._recover(expected - set(received))
                timeout = min(self.recovery_timeout * 2**attempts, 2.0)
                continue
            message = self._decode(got[0])
            if message is None:
                continue
            if isinstance(message, ControlMessage):
                if message.action == Action.HELP and message.job == self.job:
                    self._retransmit(int(message.value))
                continue
            if message.job != self.job:
                self.counters["stale_frames"] += 1
            elif message.seg in expected and message.seg not in received:
                received[message.seg] = message
            elif message.seg >= horizon and message.seg not in self._future:
                # A later round completed ahead of this one: pipeline
                # jitter, not staleness — hold it for its own collect.
                self._future[message.seg] = message
            else:
                self.counters["stale_frames"] += 1
        return received

    def _apply_round(self, total: np.ndarray, round_index: int) -> None:
        import hashlib

        self.round_digests.append(
            hashlib.sha256(total.tobytes()).hexdigest()[:16]
        )
        self.algorithm.apply_update(
            total.astype(np.float64) / self.n_workers
        )
        gap = round_index - self._versions[round_index]
        self.counters["version_gap_max"] = max(
            self.counters["version_gap_max"], gap
        )
        self.counters["version_gap_total"] += gap
        self.counters["version_gap_count"] += 1

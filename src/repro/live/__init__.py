"""Live execution backend: the iSwitch protocol over real loopback UDP.

Where :mod:`repro.netsim` *models* packets, this package moves real
datagrams: worker processes encode gradients with the byte codec in
:mod:`repro.core.protocol` and exchange them with a software-switch
process (wrapping the same :class:`~repro.core.accelerator.AggregationEngine`
the simulator uses) over loopback UDP sockets.  Membership uses real
Join/SetH control packets; lost datagrams are recovered through the
watchdog/Help retransmission path of the paper's §3.4.

Entry points:

* ``ExperimentConfig(backend="live")`` + :func:`repro.distributed.run`
* ``repro train --backend live --strategy sync-isw -n 4``
* :func:`repro.live.runner.run_live` directly

The backend exists to *validate* the protocol and the simulator against
each other: the sim↔live conformance suite
(``tests/test_live_conformance.py``) asserts bit-identical aggregated
sums and final weights for the same seeds.
"""

from .runner import LiveRunError, run_live

__all__ = ["LiveRunError", "run_live"]

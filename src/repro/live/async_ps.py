"""Live async-PS: a parameter-server process applying pushes one by one.

The asynchronous PS baseline holds the authoritative weights in a server
replica: each worker pushes its gradient, the server applies it to the
replica immediately (no barrier with other workers), and the pushing
worker pulls the fresh post-apply weights before computing again.

To stay bit-comparable with the simulator's paced mode, the server
applies pushes in **rank-cyclic order** — apply number ``k·N + w`` is
worker ``w``'s cycle-``k`` push — buffering pushes that arrive early.
Arrival jitter moves *when* an apply happens, never *which weights* it
reads, so the replica trajectory and every worker's pulled-weights
digest stream are pure functions of the gradients.  Staleness is still
measured from the wire: each push carries the weight version it was
computed against, and the server records the real gap at apply time.

Framing (host-level, like the sync PS baseline):

=========  ==========================================================
Tag byte   Body (little-endian)
=========  ==========================================================
``J``      u8 rank, u32 n_elements — join
``A``      — ack (server → worker)
``G``      — go: all workers joined (server → worker)
``U``      u8 rank, u32 cycle, u32 chunk, u32 version,
           float32[] gradient chunk (version = weights the gradient
           was computed against)
``W``      u8 rank, u32 cycle, u32 chunk, u32 version,
           float64[] weights chunk (server → worker; post-apply pull)
``H``      u8 rank, u32 cycle — resend request for that cycle's pull
``L``      u8 rank — leave
=========  ==========================================================

Chunks carry 183 elements, the shared MTU-friendly payload budget.
"""

from __future__ import annotations

import hashlib
import random
import struct
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..rl.base import Algorithm
from .ps import JOIN_DEADLINE, JOIN_RESEND_PERIOD, PS_CHUNK_ELEMS
from .transport import Address, UdpEndpoint

__all__ = ["LiveAsyncPsServer", "LiveAsyncPsWorker"]

_ASYNC_HEADER = struct.Struct("<BIII")  # rank, cycle, chunk, version
_JOIN_BODY = struct.Struct("<BI")  # rank, n_elements
_PULL_REQ = struct.Struct("<BI")  # rank, cycle


def _n_chunks(n_elements: int) -> int:
    return -(-n_elements // PS_CHUNK_ELEMS)


def _chunk_bounds(chunk: int, n_elements: int) -> Tuple[int, int]:
    start = chunk * PS_CHUNK_ELEMS
    return start, min(start + PS_CHUNK_ELEMS, n_elements)


class LiveAsyncPsServer:
    """Applies pushes cyclically to a replica; answers with fresh pulls."""

    def __init__(
        self,
        n_workers: int,
        replica: Algorithm,
        endpoint: Optional[UdpEndpoint] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.n_workers = n_workers
        self.replica = replica
        self.endpoint = endpoint
        self.loss_rate = loss_rate
        self._drop_rng = random.Random(loss_seed)
        self.n_elements = replica.get_weights().size
        self.n_chunks = _n_chunks(self.n_elements)
        self._members: Dict[int, Address] = {}
        self._left: set = set()
        self._go_sent = False
        #: Applied-push counter: apply number ``k·N + w`` is next.
        self.server_updates = 0
        #: (cycle, rank) → (chunk → f32 payload, version) partial pushes.
        self._partial: Dict[
            Tuple[int, int], Tuple[Dict[int, np.ndarray], int]
        ] = {}
        #: (cycle, rank) → (full f32 gradient, version) awaiting its turn.
        self._ready: Dict[Tuple[int, int], Tuple[np.ndarray, int]] = {}
        #: rank → (cycle, encoded ``W`` frames) — latest pull, for resends.
        self._pull_cache: Dict[int, Tuple[int, List[bytes]]] = {}
        self.counters: Dict[str, int] = {
            "frames_rx": 0,
            "frames_tx": 0,
            "updates": 0,
            "staleness_total": 0,
            "staleness_max": 0,
            "duplicates_dropped": 0,
            "drops_injected": 0,
            "resends_served": 0,
            "decode_errors": 0,
        }

    @property
    def done(self) -> bool:
        return len(self._members) == self.n_workers and len(self._left) == len(
            self._members
        )

    def handle_frame(
        self, frame: bytes, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        self.counters["frames_rx"] += 1
        if not frame:
            self.counters["decode_errors"] += 1
            return []
        tag = frame[:1]
        try:
            if tag == b"J":
                rank, n_elements = _JOIN_BODY.unpack_from(frame, 1)
                if n_elements != self.n_elements:
                    self.counters["decode_errors"] += 1
                    return []
                return self._handle_join(rank, addr)
            if tag == b"U":
                return self._handle_push(frame)
            if tag == b"H":
                return self._handle_pull_resend(frame, addr)
            if tag == b"L":
                self._left.add(frame[1])
                return []
        except (IndexError, struct.error, ValueError):
            self.counters["decode_errors"] += 1
        return []

    def _handle_join(
        self, rank: int, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        self._members[rank] = addr
        out = [(b"A", addr)]
        if len(self._members) == self.n_workers and not self._go_sent:
            self._go_sent = True
            out.extend(
                (b"G", a)
                for _, a in sorted(self._members.items())
            )
        elif self._go_sent:
            out.append((b"G", addr))
        return out

    def _handle_push(self, frame: bytes) -> List[Tuple[bytes, Address]]:
        if self.loss_rate > 0 and self._drop_rng.random() < self.loss_rate:
            self.counters["drops_injected"] += 1
            return []
        rank, cycle, chunk, version = _ASYNC_HEADER.unpack_from(frame, 1)
        if cycle * self.n_workers + rank < self.server_updates:
            self.counters["duplicates_dropped"] += 1
            return []  # already applied: a retransmission raced the apply
        key = (cycle, rank)
        if key in self._ready:
            self.counters["duplicates_dropped"] += 1
            return []
        chunks, _ = self._partial.setdefault(key, ({}, version))
        if chunk in chunks:
            self.counters["duplicates_dropped"] += 1
            return []
        chunks[chunk] = np.frombuffer(
            frame, dtype="<f4", offset=1 + _ASYNC_HEADER.size
        ).astype(np.float32)
        if len(chunks) < self.n_chunks:
            return []
        del self._partial[key]
        gradient = np.empty(self.n_elements, dtype=np.float32)
        for index, data in chunks.items():
            start, stop = _chunk_bounds(index, self.n_elements)
            gradient[start:stop] = data
        self._ready[key] = (gradient, version)
        return self._apply_ready()

    def _apply_ready(self) -> List[Tuple[bytes, Address]]:
        """Apply every push whose cyclic turn has come, oldest first."""
        out: List[Tuple[bytes, Address]] = []
        while True:
            cycle, rank = divmod(self.server_updates, self.n_workers)
            entry = self._ready.pop((cycle, rank), None)
            if entry is None:
                return out
            gradient, version = entry
            staleness = self.server_updates - version
            self.counters["updates"] += 1
            self.counters["staleness_total"] += staleness
            self.counters["staleness_max"] = max(
                self.counters["staleness_max"], staleness
            )
            self.replica.apply_update(np.asarray(gradient, dtype=np.float64))
            self.server_updates += 1
            out.extend(self._send_pull(rank, cycle + 1))

    def _send_pull(
        self, rank: int, cycle: int
    ) -> List[Tuple[bytes, Address]]:
        """Scatter the post-apply weights back to the pushing worker."""
        weights = np.ascontiguousarray(
            self.replica.get_weights(), dtype="<f8"
        )
        version = self.server_updates
        frames = []
        for chunk in range(self.n_chunks):
            start, stop = _chunk_bounds(chunk, self.n_elements)
            frames.append(
                b"W"
                + _ASYNC_HEADER.pack(rank, cycle, chunk, version)
                + weights[start:stop].tobytes()
            )
        self._pull_cache[rank] = (cycle, frames)
        addr = self._members.get(rank)
        if addr is None:
            return []
        return [(frame, addr) for frame in frames]

    def _handle_pull_resend(
        self, frame: bytes, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        rank, cycle = _PULL_REQ.unpack_from(frame, 1)
        cached = self._pull_cache.get(rank)
        if cached is None or cached[0] != cycle:
            return []  # push not applied yet; the worker retries its U
        self.counters["resends_served"] += 1
        return [(f, addr) for f in cached[1]]

    def serve(self, deadline: float, poll_interval: float = 0.2) -> None:
        if self.endpoint is None:
            raise RuntimeError("serve() needs an endpoint")
        while not self.done and time.monotonic() < deadline:
            remaining = deadline - time.monotonic()
            got = self.endpoint.recv(
                timeout=min(poll_interval, max(remaining, 0.01))
            )
            if got is None:
                continue
            for out_frame, out_addr in self.handle_frame(*got):
                self.endpoint.send(out_frame, out_addr)
                self.counters["frames_tx"] += 1

    def stats_snapshot(self) -> Dict[str, int]:
        return dict(self.counters)


class LiveAsyncPsWorker:
    """Push-pull worker loop of the live async PS baseline."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        algorithm: Algorithm,
        endpoint: UdpEndpoint,
        server_addr: Address,
        recovery_timeout: float = 0.1,
        max_recovery_attempts: int = 12,
    ) -> None:
        self.rank = rank
        self.n_workers = n_workers
        self.algorithm = algorithm
        self.endpoint = endpoint
        self.server_addr = server_addr
        self.recovery_timeout = recovery_timeout
        self.max_recovery_attempts = max_recovery_attempts
        self.n_elements = algorithm.get_weights().size
        self.n_chunks = _n_chunks(self.n_elements)
        #: The weight version the next gradient is computed against.
        self.version = 0
        self._cycle_frames: List[bytes] = []
        #: Per-cycle digests of the pulled weights (each rank pulls its
        #: own versions, so streams differ across ranks by design).
        self.round_digests: List[str] = []
        self.counters: Dict[str, int] = {
            "frames_tx": 0,
            "frames_rx": 0,
            "help_sent": 0,
            "retransmissions": 0,
            "watchdog_timeouts": 0,
            "stale_frames": 0,
            "version_gap_max": 0,
        }
        self._joined = False

    def _send(self, frame: bytes) -> None:
        self.endpoint.send(frame, self.server_addr)
        self.counters["frames_tx"] += 1

    def join(self) -> None:
        join = b"J" + _JOIN_BODY.pack(self.rank, self.n_elements)
        deadline = time.monotonic() + JOIN_DEADLINE
        while time.monotonic() < deadline:
            self._send(join)
            resend_at = time.monotonic() + JOIN_RESEND_PERIOD
            while time.monotonic() < resend_at:
                got = self.endpoint.recv(
                    timeout=max(resend_at - time.monotonic(), 0.01)
                )
                if got is None:
                    break
                self.counters["frames_rx"] += 1
                if got[0][:1] == b"G":
                    self._joined = True
                    return
        raise RuntimeError(
            f"async ps worker {self.rank}: not admitted within "
            f"{JOIN_DEADLINE:.0f}s"
        )

    def train(self, iterations: int) -> None:
        """``iterations`` push/pull cycles against the server replica."""
        if not self._joined:
            raise RuntimeError("join() the job before training")
        for cycle in range(iterations):
            gradient = np.asarray(
                self.algorithm.compute_gradient(), dtype=np.float32
            )
            self._push(gradient, cycle)
            weights, version = self._pull(cycle + 1)
            self.round_digests.append(
                hashlib.sha256(
                    np.ascontiguousarray(
                        weights, dtype=np.float64
                    ).tobytes()
                ).hexdigest()[:16]
            )
            self.algorithm.set_weights(weights)
            self.counters["version_gap_max"] = max(
                self.counters["version_gap_max"], version - self.version - 1
            )
            self.version = version
        self._send(b"L" + bytes([self.rank]))

    def _push(self, gradient: np.ndarray, cycle: int) -> None:
        self._cycle_frames = []
        for chunk in range(self.n_chunks):
            start, stop = _chunk_bounds(chunk, self.n_elements)
            frame = (
                b"U"
                + _ASYNC_HEADER.pack(self.rank, cycle, chunk, self.version)
                + gradient[start:stop].astype("<f4", copy=False).tobytes()
            )
            self._cycle_frames.append(frame)
            self._send(frame)

    def _pull(self, cycle: int) -> Tuple[np.ndarray, int]:
        received: Dict[int, np.ndarray] = {}
        version = 0
        attempts = 0
        timeout = self.recovery_timeout
        while len(received) < self.n_chunks:
            got = self.endpoint.recv(timeout=timeout)
            if got is None:
                attempts += 1
                self.counters["watchdog_timeouts"] += 1
                if attempts > self.max_recovery_attempts:
                    raise RuntimeError(
                        f"async ps worker {self.rank}: cycle {cycle} "
                        f"abandoned after {attempts - 1} recovery attempts"
                    )
                for frame in self._cycle_frames:
                    self._send(frame)
                    self.counters["retransmissions"] += 1
                self._send(b"H" + _PULL_REQ.pack(self.rank, cycle))
                self.counters["help_sent"] += 1
                timeout = min(self.recovery_timeout * 2**attempts, 2.0)
                continue
            frame = got[0]
            self.counters["frames_rx"] += 1
            if frame[:1] != b"W" or len(frame) < 1 + _ASYNC_HEADER.size:
                continue
            rank, frame_cycle, chunk, frame_version = (
                _ASYNC_HEADER.unpack_from(frame, 1)
            )
            if rank != self.rank or frame_cycle != cycle or chunk in received:
                self.counters["stale_frames"] += 1
                continue
            version = frame_version
            received[chunk] = np.frombuffer(
                frame, dtype="<f8", offset=1 + _ASYNC_HEADER.size
            ).astype(np.float64)
        weights = np.empty(self.n_elements, dtype=np.float64)
        for chunk, data in received.items():
            start, stop = _chunk_bounds(chunk, self.n_elements)
            weights[start:stop] = data
        return weights, version

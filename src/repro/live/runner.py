"""Orchestrate a live run: spawn aggregator + worker processes.

:func:`run_live` is the backend entry point dispatched to by
:func:`repro.distributed.run` when ``ExperimentConfig(backend="live")``.
It forks the strategy's server processes (a
:class:`~repro.live.switch.SoftwareSwitch` for ``isw`` — several of
them, ToR→AGG, when the worker count overflows one rack — a
:class:`~repro.live.ps.PsServer` for ``ps``, K of them for ``ps-shard``,
a :class:`~repro.live.async_ps.LiveAsyncPsServer` for async ``ps``, and
none at all for the peer-to-peer ``ar``/``ar-hd`` collectives) plus
``n_workers`` worker processes, all talking loopback UDP, and folds
their reports into the same :class:`~repro.distributed.results.TrainingResult`
shape the simulator returns (``result.backend == "live"``, with the live
artifacts in the typed fields ``final_weights``/``round_digests``/...).

Membership rendezvous runs over the child pipes: every child binds its
socket and reports ``("port", port)``; once all ports are known the
runner ships a :class:`~repro.live.transport.PeerTable` down the pipes
that need one (the peer-to-peer collectives).  Receiving the table is
the barrier — every address in it is already bound.

Every child ends with ``("ok", payload)`` or ``("error", traceback)``
over its pipe; any child failure terminates the fleet and raises
:class:`LiveRunError` carrying the child's traceback.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["LiveRunError", "run_live", "LIVE_STRATEGIES"]

#: Live-capable (mode, strategy) pairs; kept in sync with the registry's
#: ``supports_live`` flags (asserted by the conformance tests).
LIVE_STRATEGIES = (
    ("sync", "isw"),
    ("sync", "ps"),
    ("sync", "ar"),
    ("sync", "ar-hd"),
    ("sync", "ps-shard"),
    ("async", "isw"),
    ("async", "ps"),
)

#: Hard wall-clock ceiling for one live run.  Conformance runs finish in
#: seconds; this only bounds pathological hangs.
RUN_DEADLINE = 120.0

#: Per-pipe wait while collecting child reports.
REPORT_TIMEOUT = 90.0

#: Racks are 3 wide in the hierarchical tree, mirroring the simulator's
#: ``build_rack_tree`` default used by ``build_cluster``.
TREE_RACK_WIDTH = 3


class LiveRunError(RuntimeError):
    """A live run could not start or did not complete."""


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _rack_sizes(n_workers: int) -> List[int]:
    """Per-rack worker counts for the tree (rank ``r`` sits in rack
    ``r // TREE_RACK_WIDTH``, exactly like the simulator's contiguous
    assignment)."""
    sizes = []
    remaining = n_workers
    while remaining > 0:
        sizes.append(min(TREE_RACK_WIDTH, remaining))
        remaining -= TREE_RACK_WIDTH
    return sizes


# ---------------------------------------------------------------------------
# Child process entry points (top-level so the spawn method can pickle them)
# ---------------------------------------------------------------------------
def _resolve_live_codec(params: Dict[str, Any]):
    """Codec instance for a child process (``None`` = fp32 datapath).

    Children receive the codec *name* so the params dict stays trivially
    picklable under the spawn start method.
    """
    name = params.get("codec", "fp32")
    if name == "fp32":
        return None
    from ..core.compression import get_codec

    return get_codec(name)


def _switch_main(conn, params: Dict[str, Any]) -> None:
    """Flat star switch, tree aggregation switch, or tree ToR switch."""
    try:
        from .switch import SoftwareSwitch
        from .transport import LOOPBACK, UdpEndpoint

        endpoint = UdpEndpoint()
        parent_port = params.get("parent_port")
        switch = SoftwareSwitch(
            n_workers=params["n_members"],
            endpoint=endpoint,
            loss_rate=params["loss_rate"],
            loss_seed=params["loss_seed"],
            job=params.get("job", 0),
            codec=_resolve_live_codec(params),
            parent_addr=(
                None if parent_port is None else (LOOPBACK, parent_port)
            ),
            rank=params.get("switch_rank", 0),
        )
        conn.send(("port", endpoint.port))
        switch.serve(deadline=time.monotonic() + params["deadline"])
        conn.send(("ok", switch.stats_snapshot()))
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _ps_main(conn, params: Dict[str, Any]) -> None:
    try:
        from .ps import PsServer
        from .transport import UdpEndpoint

        endpoint = UdpEndpoint()
        server = PsServer(
            n_workers=params["n_workers"],
            endpoint=endpoint,
            loss_rate=params["loss_rate"],
            loss_seed=params["loss_seed"],
        )
        conn.send(("port", endpoint.port))
        server.serve(deadline=time.monotonic() + params["deadline"])
        conn.send(("ok", server.stats_snapshot()))
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _async_ps_main(conn, params: Dict[str, Any]) -> None:
    try:
        from ..distributed.runner import make_algorithm
        from .async_ps import LiveAsyncPsServer
        from .transport import UdpEndpoint

        # Same replica construction as the simulator's async PS server.
        replica = make_algorithm(
            params["workload"],
            seed=params["seed"] + 10_000,
            **(params["algorithm_overrides"] or {}),
        )
        endpoint = UdpEndpoint()
        server = LiveAsyncPsServer(
            n_workers=params["n_workers"],
            replica=replica,
            endpoint=endpoint,
            loss_rate=params["loss_rate"],
            loss_seed=params["loss_seed"],
        )
        conn.send(("port", endpoint.port))
        server.serve(deadline=time.monotonic() + params["deadline"])
        conn.send(("ok", server.stats_snapshot()))
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _build_worker(rank: int, algorithm, endpoint, conn, params: Dict[str, Any]):
    """Construct the strategy-appropriate worker state machine."""
    from .transport import LOOPBACK, PeerTable

    mode = params.get("mode", "sync")
    strategy = params["strategy"]
    common = dict(
        rank=rank,
        n_workers=params["n_workers"],
        algorithm=algorithm,
        endpoint=endpoint,
        recovery_timeout=params["recovery_timeout"],
    )
    if strategy == "isw":
        switch_ports = params["switch_ports"]
        switch_addr = (
            LOOPBACK,
            switch_ports[rank // TREE_RACK_WIDTH]
            if len(switch_ports) > 1
            else switch_ports[0],
        )
        kwargs = dict(
            common,
            switch_addr=switch_addr,
            job=params.get("job", 0),
            codec=_resolve_live_codec(params),
        )
        if mode == "async":
            from .async_isw import LiveAsyncWorker

            return LiveAsyncWorker(
                **kwargs, staleness_bound=params["staleness_bound"]
            )
        from .worker import LiveWorker

        return LiveWorker(**kwargs)
    if strategy == "ps":
        server_addr = (LOOPBACK, params["server_port"])
        if mode == "async":
            from .async_ps import LiveAsyncPsWorker

            return LiveAsyncPsWorker(**common, server_addr=server_addr)
        from .ps import LivePsWorker

        return LivePsWorker(**common, server_addr=server_addr)
    if strategy == "ps-shard":
        from .shard import LiveShardWorker

        return LiveShardWorker(
            **common,
            shard_addrs=[
                (LOOPBACK, port) for port in params["shard_ports"]
            ],
        )
    if strategy in ("ar", "ar-hd"):
        # Peer-to-peer: report our port, then block on the peer table —
        # the rendezvous barrier for the whole fleet.
        conn.send(("port", endpoint.port))
        kind, table = conn.recv()
        if kind != "peers" or not isinstance(table, PeerTable):
            raise RuntimeError(f"expected peer table, got {kind!r}")
        kwargs = dict(
            common,
            peers=table.workers,
            loss_rate=params["loss_rate"],
            loss_seed=params["loss_seed"],
        )
        if strategy == "ar":
            from .collective import LiveRingWorker

            return LiveRingWorker(**kwargs)
        from .collective import LiveHdWorker

        return LiveHdWorker(**kwargs)
    raise RuntimeError(f"no live worker for strategy {strategy!r}")


def _worker_main(conn, rank: int, params: Dict[str, Any]) -> None:
    try:
        from ..distributed.runner import make_algorithm
        from .transport import UdpEndpoint

        algorithm = make_algorithm(
            params["workload"],
            seed=params["seed"] + rank,
            **(params["algorithm_overrides"] or {}),
        )
        endpoint = UdpEndpoint()
        worker = _build_worker(rank, algorithm, endpoint, conn, params)
        if hasattr(worker, "join"):
            worker.join()
        started = time.monotonic()
        worker.train(params["iterations"])
        train_seconds = time.monotonic() - started
        reward = algorithm.final_average_reward()
        conn.send(
            (
                "ok",
                {
                    "rank": rank,
                    "final_weights": np.asarray(
                        algorithm.get_weights(), dtype=np.float64
                    ),
                    "round_digests": worker.round_digests,
                    "reward": reward,
                    "train_seconds": train_seconds,
                    "counters": worker.counters,
                },
            )
        )
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------
def _recv(conn, what: str, timeout: float = REPORT_TIMEOUT) -> Tuple[str, Any]:
    if not conn.poll(timeout):
        raise LiveRunError(f"timed out waiting for {what}")
    try:
        return conn.recv()
    except (EOFError, OSError) as exc:
        raise LiveRunError(f"{what} died without reporting: {exc}") from exc


def _recv_port(conn, what: str, timeout: float = 30.0) -> int:
    kind, value = _recv(conn, f"{what} startup", timeout=timeout)
    if kind == "error":
        raise LiveRunError(f"{what} failed to start:\n{value}")
    if kind != "port":
        raise LiveRunError(f"unexpected {what} report: {kind!r}")
    return value


def _terminate(processes: List) -> None:
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=5)


def _merge_server_stats(
    snapshots: List[Tuple[str, Dict[str, int]]]
) -> Dict[str, int]:
    """Fold several servers' counters into one dict (sums; maxima for
    high-watermark counters)."""
    if len(snapshots) == 1:
        return dict(snapshots[0][1])
    merged: Dict[str, int] = {}
    for _node, snap in snapshots:
        for key, value in snap.items():
            if "max" in key:
                merged[key] = max(merged.get(key, 0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def _validate(config, spec, tree: bool) -> str:
    """Reject configurations the live backend cannot execute; returns
    the codec name."""
    if not spec.supports_live:
        live_names = ", ".join(f"{m}-{s}" for m, s in LIVE_STRATEGIES)
        raise LiveRunError(
            f"strategy {spec.name!r} has no live backend; choose {live_names}"
        )
    if config.fault_plan is not None:
        raise LiveRunError("fault injection is simulator-only")
    if getattr(config, "job_id", 0) and not spec.requires_iswitch:
        raise ValueError(
            f"strategy {config.strategy!r} has no per-job switch state; "
            "job_id > 0 requires an iSwitch strategy ('isw')"
        )
    if config.strategy in ("ar", "ar-hd") and config.n_workers < 2:
        raise ValueError(
            f"strategy {config.strategy!r} is peer-to-peer and needs "
            f">= 2 workers, got {config.n_workers}"
        )
    if config.strategy == "ar-hd" and (
        config.n_workers & (config.n_workers - 1)
    ):
        raise ValueError(
            "strategy 'ar-hd' needs a power-of-two worker count, "
            f"got {config.n_workers}"
        )
    if config.mode == "async" and tree:
        raise LiveRunError(
            "the live hierarchical tree only runs synchronous rounds; "
            f"async-isw supports up to {config.workers_per_rack} workers "
            "(one rack)"
        )
    codec_name = getattr(config, "codec", "fp32")
    if codec_name != "fp32":
        if not spec.requires_iswitch or config.mode != "sync" or tree:
            raise ValueError(
                f"codec {codec_name!r} models the switch dataplane; live "
                "codec runs require the flat single-switch 'sync-isw' "
                "strategy"
            )
        from ..core.compression import get_codec

        if get_codec(codec_name).wire_tag is None:
            raise ValueError(
                f"codec {codec_name!r} is a simulator-only loss model with "
                "no wire format; live runs accept fp32, fp16, int32-bs, topk"
            )
    return codec_name


def _spawn_servers(
    ctx, params: Dict[str, Any], config, spec, tree: bool
) -> Tuple[List, List[Tuple[str, Any]], Dict[str, Any]]:
    """Start the strategy's server processes; returns (processes,
    [(node_name, parent_conn)], params updated with the ports workers
    dial)."""
    processes: List = []
    server_conns: List[Tuple[str, Any]] = []

    def _spawn(name: str, target, child_params: Dict[str, Any]) -> int:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=target, args=(child_conn, child_params), daemon=True
        )
        processes.append(proc)
        proc.start()
        child_conn.close()
        server_conns.append((name, parent_conn))
        return _recv_port(parent_conn, name)

    if spec.requires_iswitch:
        if tree:
            sizes = _rack_sizes(config.n_workers)
            agg_port = _spawn(
                "aggregator",
                _switch_main,
                dict(params, n_members=len(sizes)),
            )
            tor_ports = [
                _spawn(
                    f"tor{index}",
                    _switch_main,
                    dict(
                        params,
                        n_members=size,
                        parent_port=agg_port,
                        switch_rank=index,
                        loss_seed=params["loss_seed"] + 101 * (index + 1),
                    ),
                )
                for index, size in enumerate(sizes)
            ]
            params = dict(params, switch_ports=tor_ports)
        else:
            port = _spawn(
                "aggregator",
                _switch_main,
                dict(params, n_members=config.n_workers),
            )
            params = dict(params, switch_ports=[port])
    elif config.strategy == "ps":
        main = _async_ps_main if config.mode == "async" else _ps_main
        port = _spawn("aggregator", main, params)
        params = dict(params, server_port=port)
    elif config.strategy == "ps-shard":
        n_shards = min(config.ps_shards or 4, config.n_workers)
        shard_ports = [
            _spawn(
                f"shard{index}",
                _ps_main,
                dict(
                    params,
                    loss_seed=params["loss_seed"] + 101 * (index + 1),
                ),
            )
            for index in range(n_shards)
        ]
        params = dict(params, shard_ports=shard_ports)
    # ar / ar-hd: no server processes at all.
    return processes, server_conns, params


def run_live(config) -> "TrainingResult":
    """Execute ``config`` for real over loopback UDP processes."""
    from ..distributed.registry import get_strategy
    from ..distributed.results import TrainingResult
    from ..telemetry.hub import TelemetryHub
    from .transport import LOOPBACK, PeerTable, loopback_available

    spec = get_strategy(config.mode, config.strategy)
    tree = spec.requires_iswitch and config.n_workers > config.workers_per_rack
    codec_name = _validate(config, spec, tree)
    if not loopback_available():
        raise LiveRunError(
            "loopback UDP is unavailable in this environment"
        )

    ctx = _mp_context()
    recovery_timeout = config.recovery_timeout
    if recovery_timeout is None:
        from .worker import DEFAULT_LIVE_RECOVERY_TIMEOUT

        recovery_timeout = DEFAULT_LIVE_RECOVERY_TIMEOUT
    params: Dict[str, Any] = {
        "mode": config.mode,
        "strategy": config.strategy,
        "workload": config.workload,
        "n_workers": config.n_workers,
        "iterations": config.iterations,
        "seed": config.seed,
        "loss_rate": config.loss_rate,
        "loss_seed": config.seed,
        "recovery_timeout": recovery_timeout,
        "algorithm_overrides": config.algorithm_overrides,
        "job": getattr(config, "job_id", 0),
        "codec": codec_name,
        "staleness_bound": config.staleness_bound,
        "deadline": RUN_DEADLINE,
    }

    peer_to_peer = config.strategy in ("ar", "ar-hd")
    wall_start = time.monotonic()
    processes: List = []
    try:
        processes, server_conns, params = _spawn_servers(
            ctx, params, config, spec, tree
        )

        worker_conns = []
        for rank in range(config.n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, rank, params),
                daemon=True,
            )
            processes.append(proc)
            proc.start()
            child_conn.close()
            worker_conns.append(parent_conn)

        if peer_to_peer:
            table = PeerTable(
                workers={
                    rank: (LOOPBACK, _recv_port(conn, f"worker {rank}"))
                    for rank, conn in enumerate(worker_conns)
                }
            )
            for conn in worker_conns:
                conn.send(("peers", table))

        worker_reports = []
        for rank, conn in enumerate(worker_conns):
            kind, value = _recv(conn, f"worker {rank}")
            if kind == "error":
                raise LiveRunError(f"worker {rank} failed:\n{value}")
            worker_reports.append(value)

        server_snapshots: List[Tuple[str, Dict[str, int]]] = []
        for name, conn in server_conns:
            kind, value = _recv(conn, f"{name} shutdown", timeout=30.0)
            if kind == "error":
                raise LiveRunError(f"{name} failed:\n{value}")
            server_snapshots.append((name, value))
    finally:
        _terminate(processes)
    wall_elapsed = time.monotonic() - wall_start

    # async-ps workers pull their *own* post-apply weight versions, so
    # each rank's digest stream is distinct by design; every other
    # strategy broadcasts one aggregate per round to all ranks.
    per_worker_digests = config.mode == "async" and config.strategy == "ps"
    round_digests: Optional[List[str]] = None
    worker_digests: Optional[Dict[int, List[str]]] = None
    if per_worker_digests:
        worker_digests = {
            r["rank"]: list(r["round_digests"]) for r in worker_reports
        }
    else:
        digests = [tuple(r["round_digests"]) for r in worker_reports]
        if len(set(digests)) != 1:
            raise LiveRunError(
                "workers disagree on the per-round aggregated sums — "
                "the broadcast diverged"
            )
        round_digests = list(digests[0])

    server_stats: Optional[Dict[str, int]] = (
        _merge_server_stats(server_snapshots) if server_snapshots else None
    )

    # Staleness, measured from the live run itself.
    mean_staleness = max_staleness = None
    if config.mode == "async" and config.strategy == "isw":
        gap_total = sum(
            r["counters"].get("version_gap_total", 0) for r in worker_reports
        )
        gap_count = sum(
            r["counters"].get("version_gap_count", 0) for r in worker_reports
        )
        max_staleness = max(
            r["counters"].get("version_gap_max", 0) for r in worker_reports
        )
        mean_staleness = gap_total / gap_count if gap_count else 0.0
    elif config.mode == "async" and server_stats is not None:
        updates = server_stats.get("updates", 0)
        if updates:
            mean_staleness = server_stats["staleness_total"] / updates
            max_staleness = server_stats["staleness_max"]

    hub = TelemetryHub() if config.telemetry else None
    if hub is not None:
        for report in worker_reports:
            node = f"worker{report['rank']}"
            for name, amount in report["counters"].items():
                if amount:
                    hub.inc(f"live.{name}", amount, node=node)
        for node, snapshot in server_snapshots:
            for name, amount in snapshot.items():
                if amount:
                    hub.inc(f"live.{name}", amount, node=node)

    result = TrainingResult(
        strategy=spec.cls.name,
        workload=config.workload,
        n_workers=config.n_workers,
        iterations=config.iterations,
        # Elapsed is the slowest worker's training wall time; the
        # simulator reports modelled time, so live timings are only
        # comparable with other live timings.
        elapsed=max(r["train_seconds"] for r in worker_reports),
        workers=[],
        backend="live",
        wall_elapsed=wall_elapsed,
        final_weights={
            r["rank"]: r["final_weights"] for r in worker_reports
        },
        round_digests=round_digests,
        worker_digests=worker_digests,
        rewards={r["rank"]: r["reward"] for r in worker_reports},
        worker_counters={
            r["rank"]: r["counters"] for r in worker_reports
        },
        server_stats=server_stats,
        mean_staleness=mean_staleness,
        max_staleness=max_staleness,
    )
    if hub is not None:
        result.telemetry = hub.snapshot(
            meta={
                "strategy": result.strategy,
                "workload": config.workload,
                "mode": config.mode,
                "backend": "live",
                "n_workers": config.n_workers,
                "iterations": config.iterations,
                "seed": config.seed,
                "loss_rate": config.loss_rate,
                "codec": codec_name,
            }
        )
    return result

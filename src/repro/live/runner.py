"""Orchestrate a live run: spawn switch/server + worker processes.

:func:`run_live` is the backend entry point dispatched to by
:func:`repro.distributed.run` when ``ExperimentConfig(backend="live")``.
It forks one aggregator process (a :class:`~repro.live.switch.SoftwareSwitch`
for ``isw``, a :class:`~repro.live.ps.PsServer` for ``ps``) plus
``n_workers`` worker processes, all talking loopback UDP, and folds their
reports into the same :class:`~repro.distributed.results.TrainingResult`
shape the simulator returns (``result.backend == "live"``, with the live
artifacts in the typed fields ``final_weights``/``round_digests``/...).

Every child reports ``("ok", payload)`` or ``("error", traceback)`` over
its pipe; any child failure terminates the fleet and raises
:class:`LiveRunError` carrying the child's traceback.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Dict, List, Tuple

import numpy as np

__all__ = ["LiveRunError", "run_live", "LIVE_STRATEGIES"]

#: Live-capable (mode, strategy) pairs; kept in sync with the registry's
#: ``supports_live`` flags (asserted by the conformance tests).
LIVE_STRATEGIES = (("sync", "isw"), ("sync", "ps"))

#: Hard wall-clock ceiling for one live run.  Conformance runs finish in
#: seconds; this only bounds pathological hangs.
RUN_DEADLINE = 120.0

#: Per-pipe wait while collecting child reports.
REPORT_TIMEOUT = 90.0


class LiveRunError(RuntimeError):
    """A live run could not start or did not complete."""


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


# ---------------------------------------------------------------------------
# Child process entry points (top-level so the spawn method can pickle them)
# ---------------------------------------------------------------------------
def _resolve_live_codec(params: Dict[str, Any]):
    """Codec instance for a child process (``None`` = fp32 datapath).

    Children receive the codec *name* so the params dict stays trivially
    picklable under the spawn start method.
    """
    name = params.get("codec", "fp32")
    if name == "fp32":
        return None
    from ..core.compression import get_codec

    return get_codec(name)


def _switch_main(conn, params: Dict[str, Any]) -> None:
    try:
        from .switch import SoftwareSwitch
        from .transport import UdpEndpoint

        endpoint = UdpEndpoint()
        switch = SoftwareSwitch(
            n_workers=params["n_workers"],
            endpoint=endpoint,
            loss_rate=params["loss_rate"],
            loss_seed=params["seed"],
            job=params.get("job", 0),
            codec=_resolve_live_codec(params),
        )
        conn.send(("port", endpoint.port))
        switch.serve(deadline=time.monotonic() + params["deadline"])
        conn.send(("ok", switch.stats_snapshot()))
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _ps_main(conn, params: Dict[str, Any]) -> None:
    try:
        from .ps import PsServer
        from .transport import UdpEndpoint

        endpoint = UdpEndpoint()
        server = PsServer(n_workers=params["n_workers"], endpoint=endpoint)
        conn.send(("port", endpoint.port))
        server.serve(deadline=time.monotonic() + params["deadline"])
        conn.send(("ok", server.stats_snapshot()))
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _worker_main(conn, rank: int, params: Dict[str, Any]) -> None:
    try:
        from ..distributed.runner import make_algorithm
        from .transport import LOOPBACK, UdpEndpoint

        algorithm = make_algorithm(
            params["workload"],
            seed=params["seed"] + rank,
            **(params["algorithm_overrides"] or {}),
        )
        endpoint = UdpEndpoint()
        server_addr = (LOOPBACK, params["server_port"])
        if params["strategy"] == "isw":
            from .worker import LiveWorker

            worker = LiveWorker(
                rank=rank,
                n_workers=params["n_workers"],
                algorithm=algorithm,
                endpoint=endpoint,
                switch_addr=server_addr,
                recovery_timeout=params["recovery_timeout"],
                job=params.get("job", 0),
                codec=_resolve_live_codec(params),
            )
        else:
            from .ps import LivePsWorker

            worker = LivePsWorker(
                rank=rank,
                n_workers=params["n_workers"],
                algorithm=algorithm,
                endpoint=endpoint,
                server_addr=server_addr,
                recovery_timeout=params["recovery_timeout"],
            )
        worker.join()
        started = time.monotonic()
        worker.train(params["iterations"])
        train_seconds = time.monotonic() - started
        reward = algorithm.final_average_reward()
        conn.send(
            (
                "ok",
                {
                    "rank": rank,
                    "final_weights": np.asarray(
                        algorithm.get_weights(), dtype=np.float64
                    ),
                    "round_digests": worker.round_digests,
                    "reward": reward,
                    "train_seconds": train_seconds,
                    "counters": worker.counters,
                },
            )
        )
    except Exception:
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Parent-side orchestration
# ---------------------------------------------------------------------------
def _recv(conn, what: str, timeout: float = REPORT_TIMEOUT) -> Tuple[str, Any]:
    if not conn.poll(timeout):
        raise LiveRunError(f"timed out waiting for {what}")
    try:
        return conn.recv()
    except (EOFError, OSError) as exc:
        raise LiveRunError(f"{what} died without reporting: {exc}") from exc


def _terminate(processes: List) -> None:
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    for proc in processes:
        proc.join(timeout=5)


def run_live(config) -> "TrainingResult":
    """Execute ``config`` for real over loopback UDP processes."""
    from ..distributed.registry import get_strategy
    from ..distributed.results import TrainingResult
    from ..telemetry.hub import TelemetryHub
    from .transport import loopback_available

    spec = get_strategy(config.mode, config.strategy)
    if not spec.supports_live:
        live_names = ", ".join(
            f"{m}-{s}" for m, s in LIVE_STRATEGIES
        )
        raise LiveRunError(
            f"strategy {spec.name!r} has no live backend; choose {live_names}"
        )
    if config.fault_plan is not None:
        raise LiveRunError("fault injection is simulator-only")
    if config.loss_rate > 0 and not spec.requires_iswitch:
        raise ValueError(
            f"strategy {config.strategy!r} has no loss recovery; "
            "loss_rate > 0 requires an iSwitch strategy ('isw')"
        )
    if getattr(config, "job_id", 0) and not spec.requires_iswitch:
        raise ValueError(
            f"strategy {config.strategy!r} has no per-job switch state; "
            "job_id > 0 requires an iSwitch strategy ('isw')"
        )
    codec_name = getattr(config, "codec", "fp32")
    if codec_name != "fp32":
        if not spec.requires_iswitch:
            raise ValueError(
                f"strategy {config.strategy!r} aggregates on hosts in fp32; "
                "codec != 'fp32' models the switch dataplane and requires "
                "an iSwitch strategy ('isw')"
            )
        from ..core.compression import get_codec

        if get_codec(codec_name).wire_tag is None:
            raise ValueError(
                f"codec {codec_name!r} is a simulator-only loss model with "
                "no wire format; live runs accept fp32, fp16, int32-bs, topk"
            )
    if not loopback_available():
        raise LiveRunError(
            "loopback UDP is unavailable in this environment"
        )

    ctx = _mp_context()
    recovery_timeout = config.recovery_timeout
    if recovery_timeout is None:
        from .worker import DEFAULT_LIVE_RECOVERY_TIMEOUT

        recovery_timeout = DEFAULT_LIVE_RECOVERY_TIMEOUT
    params: Dict[str, Any] = {
        "strategy": config.strategy,
        "workload": config.workload,
        "n_workers": config.n_workers,
        "iterations": config.iterations,
        "seed": config.seed,
        "loss_rate": config.loss_rate,
        "recovery_timeout": recovery_timeout,
        "algorithm_overrides": config.algorithm_overrides,
        "job": getattr(config, "job_id", 0),
        "codec": codec_name,
        "deadline": RUN_DEADLINE,
    }

    server_main = _switch_main if spec.requires_iswitch else _ps_main
    server_parent, server_child = ctx.Pipe()
    server = ctx.Process(
        target=server_main, args=(server_child, params), daemon=True
    )
    processes = [server]
    wall_start = time.monotonic()
    try:
        server.start()
        server_child.close()
        kind, value = _recv(server_parent, "aggregator startup", timeout=30.0)
        if kind == "error":
            raise LiveRunError(f"aggregator failed to start:\n{value}")
        if kind != "port":
            raise LiveRunError(f"unexpected aggregator report: {kind!r}")
        params = dict(params, server_port=value)

        worker_conns = []
        for rank in range(config.n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, rank, params),
                daemon=True,
            )
            processes.append(proc)
            proc.start()
            child_conn.close()
            worker_conns.append(parent_conn)

        worker_reports = []
        for rank, conn in enumerate(worker_conns):
            kind, value = _recv(conn, f"worker {rank}")
            if kind == "error":
                raise LiveRunError(f"worker {rank} failed:\n{value}")
            worker_reports.append(value)

        kind, value = _recv(server_parent, "aggregator shutdown", timeout=30.0)
        if kind == "error":
            raise LiveRunError(f"aggregator failed:\n{value}")
        server_stats: Dict[str, int] = value
    finally:
        _terminate(processes)
    wall_elapsed = time.monotonic() - wall_start

    digests = [tuple(report["round_digests"]) for report in worker_reports]
    if len(set(digests)) != 1:
        raise LiveRunError(
            "workers disagree on the per-round aggregated sums — "
            "the broadcast diverged"
        )

    hub = TelemetryHub() if config.telemetry else None
    if hub is not None:
        for report in worker_reports:
            node = f"worker{report['rank']}"
            for name, amount in report["counters"].items():
                if amount:
                    hub.inc(f"live.{name}", amount, node=node)
        for name, amount in server_stats.items():
            if amount:
                hub.inc(f"live.{name}", amount, node="aggregator")

    result = TrainingResult(
        strategy=spec.cls.name,
        workload=config.workload,
        n_workers=config.n_workers,
        iterations=config.iterations,
        # Elapsed is the slowest worker's training wall time; the
        # simulator reports modelled time, so live timings are only
        # comparable with other live timings.
        elapsed=max(r["train_seconds"] for r in worker_reports),
        workers=[],
        backend="live",
        wall_elapsed=wall_elapsed,
        final_weights={
            r["rank"]: r["final_weights"] for r in worker_reports
        },
        round_digests=list(digests[0]),
        rewards={r["rank"]: r["reward"] for r in worker_reports},
        worker_counters={
            r["rank"]: r["counters"] for r in worker_reports
        },
        server_stats=server_stats,
    )
    if hub is not None:
        result.telemetry = hub.snapshot(
            meta={
                "strategy": result.strategy,
                "workload": config.workload,
                "mode": config.mode,
                "backend": "live",
                "n_workers": config.n_workers,
                "iterations": config.iterations,
                "seed": config.seed,
                "loss_rate": config.loss_rate,
                "codec": codec_name,
            }
        )
    return result

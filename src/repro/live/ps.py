"""Live sync-PS baseline: a parameter-server process over loopback UDP.

The paper's PS baseline is ordinary host-level networking, not the
iSwitch protocol, so this module uses its own minimal framing rather
than :mod:`repro.core.protocol`:

=========  =====================================================
Tag byte   Body (little-endian)
=========  =====================================================
``J``      u8 rank — join
``A``      — ack (server → worker)
``G``      — go: all workers joined (server → worker)
``U``      u8 rank, u32 round, u32 chunk, float32[] gradient chunk
``D``      u32 round, u32 chunk, float64[] summed chunk
``H``      u8 rank, u32 round, u32 chunk — resend request
``L``      u8 rank — leave
=========  =====================================================

The server sums each chunk in float64 **rank order** once all ``N``
contributions arrived.  The simulator's ``SyncParameterServer`` sums in
float64 arrival order; for gradients of one workload's dynamic range the
float64 sums are exact either way (the repo's golden hashes show ps,
ring, and halving/doubling — three different orders — already agree), so
sim and live stay bit-identical without a canonical mode here.

Chunks carry 183 elements in both directions, so one float64 result
chunk (1464 B) and one float32 gradient chunk (732 B) both fit a single
MTU-sized datagram and share chunk indexing.
"""

from __future__ import annotations

import hashlib
import random
import struct
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..rl.base import Algorithm
from .transport import Address, UdpEndpoint

__all__ = ["PsServer", "LivePsWorker", "PS_CHUNK_ELEMS"]

#: Elements per chunk; 183 float64 = 1464 B, matching the iSwitch
#: segment payload budget.
PS_CHUNK_ELEMS = 183

_UP_HEADER = struct.Struct("<BII")
_DOWN_HEADER = struct.Struct("<II")

JOIN_RESEND_PERIOD = 0.5
JOIN_DEADLINE = 30.0


def _n_chunks(n_elements: int) -> int:
    return -(-n_elements // PS_CHUNK_ELEMS)


def _chunk_bounds(chunk: int, n_elements: int) -> Tuple[int, int]:
    start = chunk * PS_CHUNK_ELEMS
    return start, min(start + PS_CHUNK_ELEMS, n_elements)


class PsServer:
    """Sums each (round, chunk) across all workers, in rank order."""

    def __init__(
        self,
        n_workers: int,
        endpoint: Optional[UdpEndpoint] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.n_workers = n_workers
        self.endpoint = endpoint
        #: Injected ingress loss on gradient (``U``) frames, exercising
        #: the worker watchdog/resend path — the host-networking analogue
        #: of the switch's ingress drop.
        self.loss_rate = loss_rate
        self._drop_rng = random.Random(loss_seed)
        self._members: Dict[int, Address] = {}
        self._left: set = set()
        self._go_sent = False
        self._contribs: Dict[Tuple[int, int], Dict[int, np.ndarray]] = {}
        self._results: Dict[Tuple[int, int], bytes] = {}
        self.counters: Dict[str, int] = {
            "frames_rx": 0,
            "frames_tx": 0,
            "chunks_summed": 0,
            "duplicates_dropped": 0,
            "drops_injected": 0,
            "resends_served": 0,
            "decode_errors": 0,
        }

    @property
    def done(self) -> bool:
        return len(self._members) == self.n_workers and len(self._left) == len(
            self._members
        )

    def _active(self) -> List[Address]:
        return [
            addr
            for rank, addr in sorted(self._members.items())
            if rank not in self._left
        ]

    def handle_frame(
        self, frame: bytes, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        self.counters["frames_rx"] += 1
        if not frame:
            self.counters["decode_errors"] += 1
            return []
        tag = frame[:1]
        try:
            if tag == b"J":
                return self._handle_join(frame[1], addr)
            if tag == b"U":
                return self._handle_gradient(frame)
            if tag == b"H":
                return self._handle_resend(frame, addr)
            if tag == b"L":
                self._left.add(frame[1])
                return []
        except (IndexError, struct.error, ValueError):
            self.counters["decode_errors"] += 1
        return []

    def _handle_join(
        self, rank: int, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        self._members[rank] = addr
        out = [(b"A", addr)]
        if len(self._members) == self.n_workers and not self._go_sent:
            self._go_sent = True
            out.extend((b"G", a) for a in self._active())
        elif self._go_sent:
            out.append((b"G", addr))
        return out

    def _handle_gradient(self, frame: bytes) -> List[Tuple[bytes, Address]]:
        if self.loss_rate > 0 and self._drop_rng.random() < self.loss_rate:
            self.counters["drops_injected"] += 1
            return []
        rank, round_index, chunk = _UP_HEADER.unpack_from(frame, 1)
        key = (round_index, chunk)
        if key in self._results:
            self.counters["duplicates_dropped"] += 1
            return []  # already summed: a retransmission raced completion
        data = np.frombuffer(frame, dtype="<f4", offset=1 + _UP_HEADER.size)
        contribs = self._contribs.setdefault(key, {})
        if rank in contribs:
            self.counters["duplicates_dropped"] += 1
            return []
        contribs[rank] = data.astype(np.float32)
        if len(contribs) < self.n_workers:
            return []
        total = np.zeros(contribs[rank].shape, dtype=np.float64)
        for member_rank in sorted(contribs):
            total += contribs[member_rank]
        del self._contribs[key]
        down = (
            b"D"
            + _DOWN_HEADER.pack(round_index, chunk)
            + total.astype("<f8", copy=False).tobytes()
        )
        self._results[key] = down
        self.counters["chunks_summed"] += 1
        self._prune_results(round_index)
        return [(down, addr) for addr in self._active()]

    def _prune_results(self, round_index: int) -> None:
        floor = round_index - 2
        if floor <= 0:
            return
        for key in [k for k in self._results if k[0] < floor]:
            del self._results[key]

    def _handle_resend(
        self, frame: bytes, addr: Address
    ) -> List[Tuple[bytes, Address]]:
        _, round_index, chunk = _UP_HEADER.unpack_from(frame, 1)
        down = self._results.get((round_index, chunk))
        if down is None:
            return []  # still waiting on some worker; the sender retries
        self.counters["resends_served"] += 1
        return [(down, addr)]

    def serve(self, deadline: float, poll_interval: float = 0.2) -> None:
        if self.endpoint is None:
            raise RuntimeError("serve() needs an endpoint")
        while not self.done and time.monotonic() < deadline:
            remaining = deadline - time.monotonic()
            got = self.endpoint.recv(
                timeout=min(poll_interval, max(remaining, 0.01))
            )
            if got is None:
                continue
            for out_frame, out_addr in self.handle_frame(*got):
                self.endpoint.send(out_frame, out_addr)
                self.counters["frames_tx"] += 1

    def stats_snapshot(self) -> Dict[str, int]:
        return dict(self.counters)


class LivePsWorker:
    """Worker-side loop of the live PS baseline."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        algorithm: Algorithm,
        endpoint: UdpEndpoint,
        server_addr: Address,
        recovery_timeout: float = 0.1,
        max_recovery_attempts: int = 12,
    ) -> None:
        self.rank = rank
        self.n_workers = n_workers
        self.algorithm = algorithm
        self.endpoint = endpoint
        self.server_addr = server_addr
        self.recovery_timeout = recovery_timeout
        self.max_recovery_attempts = max_recovery_attempts
        self.n_elements = algorithm.get_weights().size
        self.n_chunks = _n_chunks(self.n_elements)
        self._round_frames: Dict[int, bytes] = {}
        self.round_digests: List[str] = []
        self.counters: Dict[str, int] = {
            "frames_tx": 0,
            "frames_rx": 0,
            "help_sent": 0,
            "retransmissions": 0,
            "watchdog_timeouts": 0,
            "stale_frames": 0,
        }
        self._joined = False

    def _send(self, frame: bytes) -> None:
        self.endpoint.send(frame, self.server_addr)
        self.counters["frames_tx"] += 1

    def join(self) -> None:
        join = b"J" + bytes([self.rank])
        deadline = time.monotonic() + JOIN_DEADLINE
        while time.monotonic() < deadline:
            self._send(join)
            resend_at = time.monotonic() + JOIN_RESEND_PERIOD
            while time.monotonic() < resend_at:
                got = self.endpoint.recv(
                    timeout=max(resend_at - time.monotonic(), 0.01)
                )
                if got is None:
                    break
                self.counters["frames_rx"] += 1
                if got[0][:1] == b"G":
                    self._joined = True
                    return
        raise RuntimeError(
            f"ps worker {self.rank}: not admitted within {JOIN_DEADLINE:.0f}s"
        )

    def train(self, iterations: int) -> None:
        if not self._joined:
            raise RuntimeError("join() the job before training")
        for iteration in range(iterations):
            gradient = np.asarray(
                self.algorithm.compute_gradient(), dtype=np.float32
            )
            total = self._aggregate(gradient, iteration)
            self.round_digests.append(
                hashlib.sha256(total.tobytes()).hexdigest()[:16]
            )
            self.algorithm.apply_update(total / self.n_workers)
        self._send(b"L" + bytes([self.rank]))

    def _aggregate(self, gradient: np.ndarray, iteration: int) -> np.ndarray:
        self._round_frames = {}
        for chunk in range(self.n_chunks):
            start, stop = _chunk_bounds(chunk, self.n_elements)
            frame = (
                b"U"
                + _UP_HEADER.pack(self.rank, iteration, chunk)
                + gradient[start:stop].astype("<f4", copy=False).tobytes()
            )
            self._round_frames[chunk] = frame
            self._send(frame)
        chunks = self._collect(iteration)
        total = np.empty(self.n_elements, dtype=np.float64)
        for chunk, data in chunks.items():
            start, stop = _chunk_bounds(chunk, self.n_elements)
            total[start:stop] = data
        return total

    def _collect(self, iteration: int) -> Dict[int, np.ndarray]:
        received: Dict[int, np.ndarray] = {}
        attempts = 0
        timeout = self.recovery_timeout
        while len(received) < self.n_chunks:
            got = self.endpoint.recv(timeout=timeout)
            if got is None:
                attempts += 1
                self.counters["watchdog_timeouts"] += 1
                if attempts > self.max_recovery_attempts:
                    raise RuntimeError(
                        f"ps worker {self.rank}: round {iteration} abandoned "
                        f"after {attempts - 1} recovery attempts"
                    )
                for chunk in range(self.n_chunks):
                    if chunk in received:
                        continue
                    frame = self._round_frames.get(chunk)
                    if frame is not None:
                        self._send(frame)
                        self.counters["retransmissions"] += 1
                    self._send(
                        b"H" + _UP_HEADER.pack(self.rank, iteration, chunk)
                    )
                    self.counters["help_sent"] += 1
                timeout = min(self.recovery_timeout * 2 ** attempts, 2.0)
                continue
            frame = got[0]
            self.counters["frames_rx"] += 1
            if frame[:1] != b"D" or len(frame) < 1 + _DOWN_HEADER.size:
                continue
            round_index, chunk = _DOWN_HEADER.unpack_from(frame, 1)
            if round_index != iteration or chunk in received:
                self.counters["stale_frames"] += 1
                continue
            data = np.frombuffer(
                frame, dtype="<f8", offset=1 + _DOWN_HEADER.size
            )
            received[chunk] = data.astype(np.float64)
        return received
